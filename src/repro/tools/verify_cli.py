"""The ``repro-verify`` command-line front end.

One entry point over the whole engine zoo: point it at one or more suite
designs (by name) or Verilog/AIGER files, pick a single engine
(``--engine``), the process-parallel portfolio (``--portfolio``), the
budget-ladder scheduler (``--ladder``) or the batch sweep (``--batch``),
and read the verdicts off a result table::

    repro-verify daio --portfolio --timeout 60
    repro-verify daio --ladder --timeout 60
    repro-verify designs/fifo.v --engine pdr --bound 32
    repro-verify counter.aag --engine k-induction
    repro-verify daio --certify --save-certificate daio.cert.json
    repro-verify --batch --cache-dir .repro-cache --timeout 60
    repro-verify daio tlc rcu --batch --cache-dir .repro-cache
    repro-verify --list-engines
    repro-verify --list-designs

``--ladder`` replaces the all-at-once fan-out with the budget ladder: cheap
refuters (BMC, abstract interpretation) race first at a small budget and the
scheduler escalates to the provers only when a rung stays inconclusive, with
per-rung cancellation; engine order within a rung follows priors learned
from local ``BENCH_*.json`` reports.  ``--batch`` verifies many designs ×
properties through one warm process pool (one worker per *property*),
serving and filling the certificate-keyed result cache when ``--cache-dir``
is given.  ``--cache-dir`` also works for single queries: a cached verdict
is served after independent re-validation of its certificate, and new
definitive verdicts are validated, minimized and stored.

With ``--certify`` the final verdict's certificate (UNSAFE witness or SAFE
invariant, see :mod:`repro.certs`) is validated by the independent checker
and the per-obligation outcomes are printed; a definitive verdict whose
certificate fails validation is demoted to WRONG.  ``--save-certificate``
writes the certificate JSON (witnesses additionally get an AIGER ``.cex``
stimulus next to it).

Exit codes (CI-gateable): 0 for a (validated, under ``--certify``) definitive
answer consistent with the known ground truth, 2 for a WRONG result, 3 for
ERROR/UNKNOWN/TIMEOUT, 1 for usage or configuration errors.  ``--batch``
applies the same contract per item: any WRONG — and, with ``--cache-dir``,
any definitive item whose certificate was not independently validated —
exits 2, any inconclusive item exits 3.

``--server`` turns the CLI into a thin client of a running ``repro-serve``
instance (same exit codes; admission rejections exit 1).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.benchmarks import BENCHMARKS, get_benchmark
from repro.certs import Witness, dumps as certificate_dumps, validate_result
from repro.engines import (
    EngineOptionError,
    PortfolioResult,
    PortfolioRunner,
    Status,
    VerificationResult,
    VerificationTask,
    default_portfolio_configs,
    get_registration,
    list_engines,
    make_engine,
)
from repro.engines.portfolio import bound_options
from repro.jsonio import write_text_atomic
from repro.obs import log as _log
from repro.obs import telemetry as _telemetry

#: exit codes by final status (0 = validated expected verdict, 2 = WRONG,
#: 3 = inconclusive/error), so CI scripts can gate on the result category
_EXIT_CODES = {
    Status.SAFE: 0,
    Status.UNSAFE: 0,
    Status.UNKNOWN: 3,
    Status.TIMEOUT: 3,
    Status.MEMOUT: 3,
    Status.ERROR: 3,
    Status.WRONG: 2,
}


def _resolve_task(target: str) -> VerificationTask:
    """Map the positional target onto a loader: suite name or HDL file."""
    lowered = target.lower()
    if lowered.endswith((".v", ".sv")):
        return VerificationTask.verilog(target)
    if lowered.endswith(".aag"):
        return VerificationTask.aiger(target)
    if lowered.endswith(".aig"):
        raise SystemExit(
            "error: binary AIGER (.aig) is not supported; convert to ASCII "
            "AIGER (.aag) first (aigtoaig design.aig design.aag)"
        )
    if target in BENCHMARKS:
        return VerificationTask.benchmark(target)
    raise SystemExit(
        f"error: {target!r} is neither a suite design nor a .v/.sv/.aag file; "
        f"suite designs: {', '.join(BENCHMARKS)}"
    )


def _print_engine_table() -> None:
    print(f"{'engine':16s} {'aliases':28s} {'capabilities':22s} summary")
    print("-" * 100)
    for registration in list_engines():
        aliases = ", ".join(registration.aliases) or "-"
        capabilities = registration.capabilities.describe()
        portfolio = " [portfolio]" if registration.portfolio else ""
        print(
            f"{registration.name:16s} {aliases:28s} {capabilities:22s} "
            f"{registration.summary}{portfolio}"
        )


def _print_design_table() -> None:
    print(f"{'design':14s} {'expected':9s} {'bug@':5s} {'category':9s} description")
    print("-" * 90)
    for benchmark in BENCHMARKS.values():
        bug = str(benchmark.bug_cycle) if benchmark.bug_cycle is not None else "-"
        print(
            f"{benchmark.name:14s} {benchmark.expected:9s} {bug:5s} "
            f"{benchmark.category:9s} {benchmark.description}"
        )


def _row(label: str, status: str, runtime: float, note: str = "") -> str:
    return f"{label:24s} {status:10s} {runtime:9.3f}s  {note}"


def _print_header(label: str) -> None:
    print(f"{label:24s} {'status':10s} {'time':>10s}")
    print("-" * 64)


def _format_detail(detail: Dict[str, object]) -> str:
    interesting = {
        key: value
        for key, value in detail.items()
        if key in ("bound", "k", "depth", "frames", "iterations", "bound_reached", "k_reached")
    }
    return ", ".join(f"{key}={value}" for key, value in interesting.items())


def _print_solver_stats(stats: Optional[Dict[str, object]], label: str = "solver") -> None:
    """One line of SAT-solver counters (the ``-v`` view)."""
    if not stats:
        return
    print(
        f"{label}: conflicts={stats.get('conflicts', 0)} "
        f"propagations={stats.get('propagations', 0)} "
        f"decisions={stats.get('decisions', 0)} "
        f"restarts={stats.get('restarts', 0)} "
        f"learned={stats.get('learned_clauses', 0)} "
        f"reduce_db={stats.get('reduce_db', 0)} "
        f"deleted={stats.get('deleted_clauses', 0)} "
        f"minimized={stats.get('minimized_literals', 0)} "
        f"retired_activations={stats.get('retired_activations', 0)} "
        f"retired_clauses={stats.get('retired_clauses', 0)}"
    )


def _print_single(result: VerificationResult, verbose: bool = False) -> None:
    _print_header("engine")
    note = _format_detail(result.detail) or result.reason
    print(_row(result.engine, result.status, result.runtime, note))
    if verbose:
        _print_solver_stats(result.detail.get("solver_stats"))
    if result.counterexample is not None:
        print(
            f"\ncounterexample: {result.counterexample.length} cycles "
            f"(property {result.property_name!r} violated in the last step)"
        )


def _print_portfolio(result: PortfolioResult, verbose: bool = False) -> None:
    _print_header("configuration")
    for outcome in result.workers:
        if outcome.result is not None:
            note = _format_detail(outcome.result.detail) or outcome.result.reason
            status = outcome.result.status
        else:
            note = ""
            status = outcome.state
        marker = " <- winner" if outcome.label == result.winner else ""
        print(_row(outcome.label, status, outcome.runtime, f"{note}{marker}"))
    print("-" * 64)
    print(_row("portfolio", result.status, result.runtime, result.reason))
    if verbose:
        for outcome in result.workers:
            if outcome.result is not None:
                _print_solver_stats(
                    outcome.result.detail.get("solver_stats"),
                    label=f"solver[{outcome.label}]",
                )
    if result.counterexample is not None:
        print(
            f"\ncounterexample: {result.counterexample.length} cycles "
            f"(property {result.property_name!r} violated in the last step)"
        )


def _classify(status: str, expected: Optional[str]) -> str:
    """Apply the harness-side WRONG classification against known ground truth."""
    if expected is not None and status in Status.DEFINITIVE and status != expected:
        return Status.WRONG
    return status


def _certify(
    task: VerificationTask,
    result,
    status: str,
    timeout: float,
    fast_replay: bool = False,
) -> str:
    """Validate the final certificate; demote an unvalidated definitive verdict.

    ``result`` is the engine or portfolio result carrying ``certificate``;
    returns the (possibly demoted) final status.  With ``fast_replay``
    witnesses are replayed through the bit-parallel simulator, gated by the
    validator's ``replay-crosscheck`` obligation against the scalar
    interpreter.
    """
    if status not in Status.DEFINITIVE:
        print("\ncertification: skipped (no definitive verdict)")
        return status
    try:
        system = task.load()
    except Exception as error:  # noqa: BLE001 - loader failures
        print(f"\ncertification: cannot reload {task.name!r}: {error}")
        return Status.WRONG
    validation = validate_result(
        system,
        result,
        timeout=timeout,
        replay_backend="packed" if fast_replay else "scalar",
    )
    print("\ncertification:")
    for obligation in validation.obligations:
        note = f"  ({obligation.note})" if obligation.note else ""
        print(f"  {obligation.name:20s} {obligation.outcome}{note}")
    verdict = "VALIDATED" if validation.ok else "NOT VALIDATED"
    print(f"  -> {verdict} [{validation.kind}] in {validation.runtime:.3f}s: {validation.reason}")
    return status if validation.ok else Status.WRONG


def _save_certificate(path: str, task: VerificationTask, result) -> None:
    """Write the certificate JSON (and a .cex stimulus for witnesses)."""
    certificate = getattr(result, "certificate", None)
    if certificate is None:
        print(f"no certificate to save for {task.name!r}")
        return
    write_text_atomic(path, certificate_dumps(certificate))
    print(f"wrote certificate {path}")
    if isinstance(certificate, Witness):
        from repro.aig import aig_from_transition_system

        cex_path = f"{path.removesuffix('.json')}.cex"
        try:
            aig = aig_from_transition_system(task.load())
        except Exception as error:  # noqa: BLE001 - AIG lowering failures
            print(f"cannot export AIGER stimulus: {error}")
            return
        write_text_atomic(cex_path, certificate.to_aiger_stimulus(aig))
        print(f"wrote AIGER stimulus {cex_path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="verify a hardware design with one engine or the parallel portfolio",
    )
    parser.add_argument(
        "target", nargs="*",
        help="suite design name(s), or path(s) to Verilog (.v/.sv) or ASCII "
             "AIGER (.aag) files; --batch accepts several (default: the "
             "whole suite)",
    )
    parser.add_argument("--engine", help="run a single engine (see --list-engines)")
    parser.add_argument(
        "--portfolio", action="store_true",
        help="race the portfolio engines in parallel worker processes",
    )
    parser.add_argument(
        "--ladder", action="store_true",
        help="budget-ladder scheduling: cheap refuters first at a small "
             "budget, escalating to provers rung by rung (instead of the "
             "all-at-once fan-out)",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="verify several designs x properties through one warm process "
             "pool (one worker per property), reusing shared template "
             "libraries and the result cache across the whole batch",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="certificate-keyed result cache: serve repeated queries from "
             "validated certificates (re-validated on every hit) and store "
             "new definitive verdicts, minimized",
    )
    parser.add_argument("--property", dest="property_name", default=None,
                        help="property to check (default: the design's first)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="wall-clock budget in seconds (default 300)")
    parser.add_argument("--bound", type=int, default=None,
                        help="search-depth cap routed to each engine "
                             "(max_bound/max_k/max_depth/max_frames)")
    parser.add_argument("--representation", default=None, choices=["word", "bit"],
                        help="frame encoding (default word; in portfolio mode "
                             "narrows the fan-out to this representation)")
    parser.add_argument("--representations", nargs="*", default=["word"],
                        choices=["word", "bit"], metavar="REP",
                        help="representations fanned out in portfolio mode")
    parser.add_argument("--jobs", type=int, default=None,
                        help="portfolio worker-process cap (default: one per configuration)")
    parser.add_argument("--cross-check", action="store_true",
                        help="portfolio mode: let all workers finish and flag "
                             "disagreeing definitive answers as WRONG")
    parser.add_argument("--expected", choices=["safe", "unsafe"], default=None,
                        help="override the known verdict used for the WRONG classification")
    parser.add_argument("--certify", action="store_true",
                        help="validate the verdict's certificate with the independent "
                             "checker; unvalidated definitive verdicts become WRONG")
    parser.add_argument("--fast-replay", action="store_true",
                        help="replay witnesses through the bit-parallel packed "
                             "simulator instead of the scalar interpreter; the "
                             "validator cross-checks the first cycles scalar "
                             "and fails on any divergence")
    parser.add_argument("--save-certificate", metavar="PATH", default=None,
                        help="write the certificate JSON to PATH (witnesses also "
                             "get an AIGER .cex stimulus next to it)")
    parser.add_argument(
        "--server", metavar="SOCK|HOST:PORT", default=None,
        help="client mode: send the query to a running repro-serve server "
             "(unix socket path, or host:port) instead of verifying locally; "
             "multiple targets are pipelined over one connection",
    )
    parser.add_argument(
        "--priority", choices=["interactive", "batch", "bulk"], default=None,
        help="server-mode admission priority (default: the server's)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record structured telemetry (spans + counters) for the whole "
             "run and write a repro-trace-v1 JSONL file; inspect it with "
             "repro-trace summarize/lint/flame",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="print per-engine SAT solver statistics (conflicts, "
                             "propagations, decisions, restarts, clause-DB "
                             "reductions, minimized literals, retired activations); "
                             "implies -v")
    parser.add_argument("--quiet", action="store_true",
                        help="legacy spelling of -q: suppress progress events")
    _log.add_verbosity_flags(parser)
    parser.add_argument("--list-engines", action="store_true",
                        help="list registered engines with aliases and capabilities")
    parser.add_argument("--list-designs", action="store_true",
                        help="list the built-in benchmark designs")
    args = parser.parse_args(argv)
    _log.configure_from_args(args)
    # --verbose historically also meant the solver-stats view; keep both
    # spellings pointing at the same dial
    args.verbose = args.verbose or _log.is_verbose()

    if args.list_engines:
        _print_engine_table()
        return 0
    if args.list_designs:
        _print_design_table()
        return 0
    modes = [
        name
        for name, chosen in (
            ("--engine", bool(args.engine)),
            ("--portfolio", args.portfolio),
            ("--ladder", args.ladder),
            ("--batch", args.batch),
        )
        if chosen
    ]
    if len(modes) > 1:
        parser.error(f"{' and '.join(modes)} are mutually exclusive")
    if args.cross_check and (args.ladder or args.batch):
        # the ladder/batch schedulers stop at the first definitive answer;
        # cross-check adjudication needs the all-at-once fan-out
        parser.error("--cross-check requires the all-at-once --portfolio")
    if args.batch and (args.certify or args.save_certificate):
        parser.error(
            "--certify/--save-certificate are per-query; --batch validates "
            "through the result cache (--cache-dir) instead"
        )
    if args.server and (modes or args.certify or args.save_certificate):
        parser.error(
            "--server is a thin client: the server picks the driver and "
            "handles certificates (run it with --cache-dir/--certify)"
        )

    if args.trace:
        from repro.obs.export import write_trace

        with _telemetry.recording() as recorder:
            try:
                with _telemetry.span(
                    "cli.verify", mode=(modes[0] if modes else "--portfolio")
                ):
                    return _dispatch(parser, args, modes)
            finally:
                write_trace(recorder, args.trace, meta={"tool": "repro-verify"})
                _log.info(f"wrote trace {args.trace}")
    return _dispatch(parser, args, modes)


def _dispatch(parser: argparse.ArgumentParser, args, modes: List[str]) -> int:
    """Run the selected driver; factored out so --trace can wrap it."""
    if args.server:
        if not args.target:
            parser.error("--server needs at least one target design")
        return _run_server_client(args)

    cache = None
    if args.cache_dir:
        from repro.cache import ResultCache

        cache = ResultCache(args.cache_dir, validation_timeout=args.timeout)

    if args.batch:
        return _run_batch(args, cache)

    if not args.target:
        parser.error("a target design is required (or --list-engines/--list-designs)")
    if len(args.target) > 1:
        parser.error("multiple targets need --batch")
    if not modes:
        args.portfolio = True  # the portfolio is the default driver

    task = _resolve_task(args.target[0])
    expected = args.expected
    if expected is None and task.kind == "benchmark":
        expected = get_benchmark(task.spec).expected

    # one representation is the cache identity of the query: --representation
    # wins, else the first portfolio representation — lookup and store must
    # agree or repeated queries would never hit
    representation = args.representation or args.representations[0]
    if cache is not None:
        try:
            system = task.load()
        except Exception as error:  # noqa: BLE001 - loader/parse failures
            _log.error(f"error: cannot load {task.name!r}: {error}")
            return 1
        property_name = args.property_name or (
            system.properties[0].name if system.properties else None
        )
        if property_name is not None:
            lookup = cache.lookup(system, property_name, representation)
            if lookup.hit:
                result = lookup.result
                result.status = _classify(result.status, expected)
                _log.info(
                    f"cache hit for {task.name!r} (key {lookup.key[:12]}..., "
                    f"certificate re-validated in {lookup.runtime_s:.3f}s)"
                )
                _print_single(result, verbose=args.verbose)
                if args.certify:
                    # --certify promises the per-obligation report and its
                    # demotion semantics on every run, hit or miss
                    result.status = _certify(
                        task, result, result.status, args.timeout,
                        fast_replay=args.fast_replay,
                    )
                if args.save_certificate:
                    _save_certificate(args.save_certificate, task, result)
                return _EXIT_CODES.get(result.status, 1)
            note = " (stale entry dropped)" if lookup.demoted else ""
            _log.info(f"cache miss for {task.name!r}{note}; verifying")

    if args.engine:
        try:
            registration = get_registration(args.engine)
        except KeyError as error:
            _log.error(f"error: {error}")
            return 1
        # the shared depth cap is *routed* (each engine keeps the key it
        # understands); explicitly passed options are validated strictly
        options: Dict[str, object] = {}
        if args.bound is not None:
            options.update(
                registration.engine_class.validate_options(
                    bound_options(args.bound), ignore_unknown=True
                )
            )
        if args.representation:
            options["representation"] = args.representation
        try:
            system = task.load()
            engine = make_engine(args.engine, system, **options)
        except EngineOptionError as error:
            _log.error(f"error: {error}")
            return 1
        except Exception as error:  # noqa: BLE001 - loader/parse failures
            _log.error(f"error: cannot load {task.name!r}: {error}")
            return 1
        _log.info(
            f"verifying {task.name!r} with engine {args.engine} "
            f"(timeout {args.timeout:g}s)"
        )
        result = engine.verify(args.property_name, timeout=args.timeout)
        result.status = _classify(result.status, expected)
        _print_single(result, verbose=args.verbose)
        if args.certify:
            result.status = _certify(
                task, result, result.status, args.timeout,
                fast_replay=args.fast_replay,
            )
        if args.save_certificate:
            _save_certificate(args.save_certificate, task, result)
        _store_in_cache(cache, task, result, representation)
        return _EXIT_CODES.get(result.status, 1)

    # --representation (the single-engine spelling) narrows the portfolio too
    representations = (
        [args.representation] if args.representation else args.representations
    )

    def on_event(event: Dict[str, object]) -> None:
        kind = event.pop("event")
        label = event.pop("label", "")
        rung = event.pop("rung", None)
        prefix = f"rung {rung} " if rung is not None else ""
        extras = ", ".join(f"{key}={value}" for key, value in event.items() if value)
        _log.verbose(
            f"  [{time.strftime('%H:%M:%S')}] {prefix}{kind:9s} {label:24s} {extras}"
        )

    if args.ladder:
        from repro.engines import default_budget_ladder, learn_priors

        ladder = default_budget_ladder(
            representations=representations,
            bound=args.bound,
            timeout=args.timeout,
            priors=learn_priors(),
        )
        runner = PortfolioRunner(
            ladder=ladder,
            timeout=args.timeout,
            max_workers=args.jobs,
            expected=expected,
            on_event=on_event,
        )
        schedule = " -> ".join(
            f"[{', '.join(rung.labels)}]" for rung in ladder
        )
        _log.info(
            f"budget ladder on {task.name!r} (timeout {args.timeout:g}s): {schedule}"
        )
    else:
        configs = default_portfolio_configs(
            representations=representations, bound=args.bound
        )
        runner = PortfolioRunner(
            configs=configs,
            timeout=args.timeout,
            max_workers=args.jobs,
            cross_check=args.cross_check,
            expected=expected,
            on_event=on_event,
        )
        _log.info(
            f"racing {len(configs)} configurations on {task.name!r} "
            f"(timeout {args.timeout:g}s{', cross-check' if args.cross_check else ''})"
        )
    result = runner.run(task, args.property_name)
    _print_portfolio(result, verbose=args.verbose)
    if args.ladder:
        ladder_detail = result.detail.get("ladder", {})
        decided = ladder_detail.get("decided_rung")
        cpu = result.detail.get("cpu_s")
        print(
            f"ladder: decided at rung {decided}, total worker CPU {cpu}s"
            if decided is not None
            else f"ladder: no rung decided, total worker CPU {cpu}s"
        )
    final_status = result.status
    if args.certify:
        final_status = _certify(
            task, result, final_status, args.timeout,
            fast_replay=args.fast_replay,
        )
    if args.save_certificate:
        _save_certificate(args.save_certificate, task, result)
    _store_in_cache(cache, task, result, representation)
    return _EXIT_CODES.get(final_status, 1)


def _store_in_cache(cache, task, result, representation: str) -> None:
    """Offer a fresh definitive verdict to the result cache (if one is on)."""
    if cache is None or result.status not in Status.DEFINITIVE:
        return
    try:
        system = task.load()
    except Exception:  # noqa: BLE001 - loader failures already reported
        return
    outcome = cache.store(
        system, result.property_name, representation, result, design=task.name
    )
    if outcome.stored:
        note = ""
        if outcome.minimization is not None and outcome.minimization.dropped:
            note = (
                f" (invariant minimized {outcome.minimization.original_size}"
                f" -> {outcome.minimization.size} conjuncts)"
            )
        print(f"cached under key {outcome.key[:12]}...{note}")
    else:
        print(f"not cached: {outcome.reason}")


def _run_server_client(args) -> int:
    """The ``--server`` driver: pipeline queries over one repro-serve conn.

    All targets are submitted before any result is read, so the server's
    queue (and its coalescing) sees the whole set at once.  Exit codes
    mirror the local drivers: 2 for any WRONG (definitive verdict against
    known ground truth), 3 for any inconclusive item, 1 for rejections.
    """
    from repro.serve.client import ServeClient, ServeError

    def request_for(target: str) -> Dict[str, object]:
        task = _resolve_task(target)
        request: Dict[str, object] = {"deadline_s": args.timeout}
        if task.kind == "benchmark":
            request["design"] = task.spec
        elif task.kind == "verilog":
            path, top = task.spec
            request["verilog"] = path
            if top:
                request["top"] = top
        else:
            request["aiger"] = task.spec
        if args.property_name:
            request["property"] = args.property_name
        if args.representation:
            request["representation"] = args.representation
        if args.bound is not None:
            request["bound"] = args.bound
        if args.priority:
            request["priority"] = args.priority
        return request

    if ":" in args.server and not os.path.exists(args.server):
        host, _, port = args.server.rpartition(":")
        client = ServeClient(host=host, port=int(port))
    else:
        client = ServeClient(socket_path=args.server)
    # streamed liveness: the server sends progress frames (ladder rung
    # landed, bound reached, keepalives) while a proof runs
    client.on_progress = lambda frame: _log.info(
        "progress "
        + " ".join(
            f"{name}={frame[name]}"
            for name in ("id", "kind", "phase", "rung", "config", "bound",
                         "k", "elapsed_s")
            if name in frame
        )
    )
    _log.info(
        f"connected to {args.server} ({client.hello.get('protocol')}, "
        f"server pid {client.hello.get('pid')}, "
        f"role {client.hello.get('role', 'primary')})"
    )
    wrong = False
    inconclusive = False
    rejected = False
    with client:
        pending: List[Tuple[str, Optional[str]]] = []
        for target in args.target:
            try:
                accepted = client.submit(request_for(target))
            except ServeError as error:
                print(f"{target}: rejected ({error})")
                rejected = True
                continue
            pending.append((target, accepted["id"]))
        _print_header("design")
        for target, request_id in pending:
            reply = client.result(request_id)
            status = reply.get("status", Status.ERROR)
            expected = args.expected
            if expected is None and target in BENCHMARKS:
                expected = get_benchmark(target).expected
            status = _classify(status, expected)
            if status == Status.WRONG:
                wrong = True
            elif status not in Status.DEFINITIVE:
                inconclusive = True
            note = str(reply.get("source", ""))
            if reply.get("coalesced_with", 0) > 1:
                note += f" x{reply['coalesced_with']}"
            if reply.get("validated"):
                note += " validated"
            print(
                _row(target, status, float(reply.get("runtime_s", 0.0)), note)
            )
    if wrong:
        return 2
    if rejected:
        return 1
    return 3 if inconclusive else 0


def _run_batch(args, cache) -> int:
    """The ``--batch`` driver: a warm-pool sweep over many designs."""
    from repro.engines import BatchItem, BatchRunner

    targets = args.target or list(BENCHMARKS)
    items = [
        BatchItem(
            _resolve_task(target),
            property_name=args.property_name,
            expected=args.expected,
        )
        for target in targets
    ]
    representation = args.representation or args.representations[0]

    def on_event(event: Dict[str, object]) -> None:
        if args.quiet:
            return
        kind = event.pop("event")
        design = event.pop("design", "")
        prop = event.pop("property", "")
        extras = ", ".join(f"{key}={value}" for key, value in event.items() if value)
        print(
            f"  [{time.strftime('%H:%M:%S')}] {kind:9s} "
            f"{design + ':' + prop:28s} {extras}"
        )

    runner = BatchRunner(
        cache=cache,
        jobs=args.jobs,
        timeout=args.timeout,
        bound=args.bound,
        representation=representation,
        on_event=on_event,
    )
    print(
        f"batch sweep over {len(items)} design(s) "
        f"({'cache ' + args.cache_dir if cache else 'no cache'}, "
        f"timeout {args.timeout:g}s per item)"
    )
    report = runner.run(items)
    _print_header("design:property")
    wrong = False
    inconclusive = False
    unvalidated = False
    for item in report.items:
        status = item.status
        if item.correct is False:
            status = Status.WRONG
            wrong = True
        if status not in Status.DEFINITIVE and status != Status.WRONG:
            inconclusive = True
        note = item.source
        if (
            cache is not None
            and status in Status.DEFINITIVE
            and not item.validated
        ):
            # with a cache attached every definitive verdict must be backed
            # by an independently validated certificate; one that is not is
            # indistinguishable from a lying engine and must gate CI
            unvalidated = True
            note += " NOT VALIDATED"
        if item.rung is not None:
            note += f" rung {item.rung}"
        if item.minimization and item.minimization.get("minimized"):
            note += (
                f" minimized {item.minimization['original_size']}"
                f"->{item.minimization['size']}"
            )
        print(_row(f"{item.design}:{item.property_name}", status, item.runtime_s, note))
    print("-" * 64)
    print(
        f"{len(report.items)} items in {report.wall_s:.3f}s: "
        f"{report.cache_hits} cache hit(s), {report.cache_misses} miss(es), "
        f"{report.demotions} demotion(s), {report.workers} worker(s)"
    )
    if wrong or unvalidated:
        return 2
    return 0 if not inconclusive else 3


if __name__ == "__main__":
    raise SystemExit(main())
