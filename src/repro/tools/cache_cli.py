"""``repro-cache``: inspect, fsck, and shrink the certificate result cache.

Subcommands
-----------

``fsck``
    Re-validate every entry with the independent certificate validator
    (:func:`repro.certs.validate_certificate`), prune entries that fail,
    quarantine entries that no longer decode, and report.  With
    ``--expect-clean`` the exit code gates on a healthy store — the CI
    chaos-smoke job tampers a store on purpose and asserts that one fsck
    finds everything and a second one comes back clean.

``stats``
    Print the store's entry count, byte size, caps, quarantine backlog, and
    the lifetime serving counters (hits, misses, stores, demotions,
    revalidation outcomes) persisted in ``counters.json`` at the cache root.

``evict``
    Apply ``--max-entries``/``--max-bytes`` LRU caps once, printing the
    evicted keys.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Optional

from repro.cache import ResultCache
from repro.cache.store import QUARANTINE_DIR
from repro.obs import log as _log


def _print_json(document: object) -> None:
    print(json.dumps(document, indent=2, default=str))


def _cmd_fsck(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir, validation_timeout=args.timeout)
    report = cache.fsck(prune=not args.no_prune)
    if args.json:
        _print_json(report)
    else:
        print(
            f"checked {report['checked']} entries: {report['ok']} ok, "
            f"{len(report['pruned'])} pruned, "
            f"{len(report['quarantined'])} quarantined, "
            f"{len(report['unresolved'])} unresolved"
        )
        for row in report["pruned"]:
            print(f"  pruned {row['key'][:16]}…: {row['reason']}")
        for key in report["quarantined"]:
            print(f"  quarantined {key[:16]}…")
        print(
            f"store: {report['entries']} entries, {report['bytes']} bytes, "
            f"quarantine backlog {report['quarantine_backlog']}"
        )
    if args.expect_clean and not report["clean"]:
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    backend = cache.store_backend
    lifetime = cache.persistent.as_dict()
    document = {
        "root": backend.root,
        "entries": len(backend),
        "bytes": backend.total_bytes(),
        "max_entries": backend.max_entries,
        "max_bytes": backend.max_bytes,
        "quarantine_backlog": len(backend.quarantine_keys()),
        "lifetime": lifetime,
    }
    if args.json:
        _print_json(document)
    else:
        for name, value in document.items():
            if name == "lifetime":
                continue
            print(f"{name}: {value}")
        served = lifetime.get("hits", 0) + lifetime.get("misses", 0)
        print(
            f"lifetime: {lifetime.get('hits', 0)} hit(s) / "
            f"{lifetime.get('misses', 0)} miss(es) over {served} lookup(s), "
            f"{lifetime.get('stores', 0)} store(s), "
            f"{lifetime.get('demotions', 0)} demotion(s), "
            f"revalidations {lifetime.get('revalidations_ok', 0)} ok / "
            f"{lifetime.get('revalidations_failed', 0)} failed"
        )
    return 0


def _cmd_evict(args: argparse.Namespace) -> int:
    if args.max_entries is None and args.max_bytes is None:
        print("evict needs --max-entries and/or --max-bytes")
        return 2
    cache = ResultCache(args.cache_dir)
    evicted = cache.store_backend.evict(
        max_entries=args.max_entries, max_bytes=args.max_bytes
    )
    backend = cache.store_backend
    document = {
        "evicted": evicted,
        "entries": len(backend),
        "bytes": backend.total_bytes(),
    }
    if args.json:
        _print_json(document)
    else:
        print(
            f"evicted {len(evicted)} entries; "
            f"{document['entries']} entries / {document['bytes']} bytes remain"
        )
    return 0


def _cmd_purge_quarantine(args: argparse.Namespace) -> int:
    shard = os.path.join(args.cache_dir, QUARANTINE_DIR)
    removed = 0
    try:
        names = os.listdir(shard)
    except OSError:
        names = []
    for name in names:
        try:
            os.unlink(os.path.join(shard, name))
            removed += 1
        except OSError:
            pass
    print(f"purged {removed} quarantined files")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="inspect, fsck, and shrink the certificate result cache",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", required=True,
        help="root directory of the certificate store",
    )
    _log.add_verbosity_flags(parser)
    commands = parser.add_subparsers(dest="command", required=True)

    def add_json_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )

    fsck = commands.add_parser(
        "fsck", help="re-validate every entry, prune failures, report"
    )
    add_json_flag(fsck)
    fsck.add_argument("--timeout", type=float, default=None,
                      help="per-entry validation budget in seconds")
    fsck.add_argument("--no-prune", action="store_true",
                      help="report failing entries without deleting them")
    fsck.add_argument("--expect-clean", action="store_true",
                      help="exit 1 if anything had to be pruned or quarantined")
    fsck.set_defaults(run=_cmd_fsck)

    stats = commands.add_parser("stats", help="print store size and backlog")
    add_json_flag(stats)
    stats.set_defaults(run=_cmd_stats)

    evict = commands.add_parser("evict", help="apply LRU caps once")
    add_json_flag(evict)
    evict.add_argument("--max-entries", type=int, default=None)
    evict.add_argument("--max-bytes", type=int, default=None)
    evict.set_defaults(run=_cmd_evict)

    purge = commands.add_parser(
        "purge-quarantine", help="delete quarantined files"
    )
    purge.set_defaults(run=_cmd_purge_quarantine)

    args = parser.parse_args(argv)
    _log.configure_from_args(args)
    return args.run(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
