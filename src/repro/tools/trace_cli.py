"""``repro-trace`` — inspect, validate and convert ``repro-trace-v1`` files.

Subcommands:

* ``summarize FILE`` — per-phase rollup (count, wall, self-wall, CPU,
  outcome mix) plus counters; ``--json`` for machine-readable output.
* ``lint FILE [FILE ...]`` — schema / orphan-span / cycle validation;
  ``--expect-clean`` exits non-zero on any problem (the CI gate).
* ``flame FILE -o OUT.json`` — Chrome ``trace_event`` export for
  ``chrome://tracing`` / Perfetto flamegraph viewing.
* ``tree FILE`` — indented span tree on stdout (quick terminal look).
* ``stitch FILE [FILE ...] -o OUT`` — merge per-box fleet traces into one
  document, grouping cross-box spans under synthetic ``fleet.request``
  roots keyed by their shared request-id attribute.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.obs import log
from repro.obs.export import (
    Trace,
    lint_trace,
    load_trace,
    stitch_traces,
    summarize_trace,
    write_chrome_trace,
    write_trace_document,
)


def _load(path: str) -> Trace:
    try:
        return load_trace(path)
    except (OSError, ValueError) as error:
        log.error(f"repro-trace: cannot load {path}: {error}")
        raise SystemExit(2)


# ---------------------------------------------------------------------------
# summarize
# ---------------------------------------------------------------------------


def _cmd_summarize(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    summary = summarize_trace(trace, top=args.top)
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(
        f"trace: {args.trace}  spans={summary['spans']} roots={summary['roots']} "
        f"processes={summary['processes']} wall={summary['total_wall_s']:.3f}s "
        f"cpu={summary['total_cpu_s']:.3f}s"
    )
    print(f"{'phase':<40} {'count':>6} {'wall_s':>10} {'self_s':>10} {'cpu_s':>10}  outcomes")
    for name, row in summary["phases"].items():
        outcomes = ",".join(
            f"{tag}:{count}" for tag, count in sorted(row["outcomes"].items())
        )
        print(
            f"{name:<40} {row['count']:>6} {row['wall_s']:>10.4f} "
            f"{row['self_wall_s']:>10.4f} {row['cpu_s']:>10.4f}  {outcomes}"
        )
    if summary["counters"]:
        print("counters:")
        for name in sorted(summary["counters"]):
            print(f"  {name} = {summary['counters'][name]}")
    return 0


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------


def _cmd_lint(args: argparse.Namespace) -> int:
    total_problems = 0
    for path in args.traces:
        trace = _load(path)
        problems = lint_trace(trace, allow_unfinished=not args.strict)
        if problems:
            total_problems += len(problems)
            print(f"{path}: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            log.info(f"{path}: clean ({len(trace.spans)} spans)")
    if total_problems and args.expect_clean:
        log.error(f"repro-trace lint: {total_problems} problem(s) across "
                  f"{len(args.traces)} trace(s)")
        return 1
    return 0


# ---------------------------------------------------------------------------
# flame
# ---------------------------------------------------------------------------


def _cmd_flame(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    out = args.out or (args.trace + ".chrome.json")
    write_chrome_trace(trace, out)
    log.info(f"wrote {len(trace.spans)} events to {out} "
             f"(open in chrome://tracing or Perfetto)")
    print(out)
    return 0


# ---------------------------------------------------------------------------
# tree
# ---------------------------------------------------------------------------


def _cmd_tree(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    children: Dict[object, List[dict]] = {}
    for span in trace.spans:
        children.setdefault(span.get("parent"), []).append(span)
    for rows in children.values():
        rows.sort(key=lambda row: row.get("start", 0.0))

    def walk(parent, depth: int) -> None:
        for span in children.get(parent, []):
            attrs = span.get("attrs") or {}
            attr_text = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
                if attrs
                else ""
            )
            print(
                f"{'  ' * depth}{span.get('name')} "
                f"[{span.get('outcome')}] wall={span.get('wall_s', 0.0):.4f}s "
                f"pid={span.get('pid')}{attr_text}"
            )
            walk(span.get("id"), depth + 1)

    walk(None, 0)
    return 0


# ---------------------------------------------------------------------------
# stitch
# ---------------------------------------------------------------------------


def _cmd_stitch(args: argparse.Namespace) -> int:
    traces = [_load(path) for path in args.traces]
    stitched = stitch_traces(traces, request_attr=args.request_attr)
    fleet_roots = sum(
        1 for span in stitched.spans if span.get("name") == "fleet.request"
    )
    write_trace_document(stitched, args.out)
    log.info(
        f"stitched {len(traces)} trace(s): {len(stitched.spans)} spans, "
        f"{fleet_roots} cross-box request(s) -> {args.out}"
    )
    print(args.out)
    return 0


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="inspect, validate and convert repro-trace-v1 files",
    )
    log.add_verbosity_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-phase time breakdown")
    p_sum.add_argument("trace", help="trace file (JSONL)")
    p_sum.add_argument("--json", action="store_true", help="JSON output")
    p_sum.add_argument("--top", type=int, default=0,
                       help="only the N hottest phases by self time")
    p_sum.set_defaults(func=_cmd_summarize)

    p_lint = sub.add_parser("lint", help="schema / orphan-span validation")
    p_lint.add_argument("traces", nargs="+", help="trace file(s) to validate")
    p_lint.add_argument("--expect-clean", action="store_true",
                        help="exit 1 if any trace has problems (CI gate)")
    p_lint.add_argument("--strict", action="store_true",
                        help="also flag spans force-closed at export")
    p_lint.set_defaults(func=_cmd_lint)

    p_flame = sub.add_parser("flame", help="Chrome trace_event export")
    p_flame.add_argument("trace", help="trace file (JSONL)")
    p_flame.add_argument("-o", "--out", default=None,
                        help="output path (default: TRACE.chrome.json)")
    p_flame.set_defaults(func=_cmd_flame)

    p_tree = sub.add_parser("tree", help="indented span tree")
    p_tree.add_argument("trace", help="trace file (JSONL)")
    p_tree.set_defaults(func=_cmd_tree)

    p_stitch = sub.add_parser(
        "stitch", help="merge per-box fleet traces by request id"
    )
    p_stitch.add_argument("traces", nargs="+", help="trace files to merge")
    p_stitch.add_argument("-o", "--out", required=True,
                          help="output path for the stitched document")
    p_stitch.add_argument("--request-attr", default="request",
                          help="span attribute carrying the cross-box "
                               "request id (default 'request')")
    p_stitch.set_defaults(func=_cmd_stitch)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    log.configure_from_args(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
