"""The ``repro-serve-router`` front end: route a fleet of verify servers.

Start a router in front of one or more ``repro-serve`` members::

    repro-serve-router --socket /tmp/repro-router.sock \\
        --member box-a=unix:/tmp/a.sock,standby=unix:/tmp/a-standby.sock \\
        --member box-b=127.0.0.1:7412

Clients connect to the router exactly as to a single server
(``repro-verify --server /tmp/repro-router.sock``); the router shards
requests by certificate-store key prefix, health-checks members with a
heartbeat, coalesces identical queries across client boxes and fails over
to a member's hot standby (started with ``repro-serve --standby-of``)
transparently.  See :mod:`repro.serve.router`.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.obs import log as _log
from repro.obs import telemetry as _telemetry
from repro.serve.router import MemberSpec, RouterConfig, VerifyRouter


def _parse_member(spec: str) -> MemberSpec:
    """``name=ADDR[,standby=ADDR]`` → :class:`MemberSpec`."""
    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise argparse.ArgumentTypeError(
            f"bad --member {spec!r} (want NAME=ADDR[,standby=ADDR])"
        )
    addr, _, standby_part = rest.partition(",")
    standby = None
    if standby_part:
        key, sep2, value = standby_part.partition("=")
        if key.strip() != "standby" or not sep2 or not value:
            raise argparse.ArgumentTypeError(
                f"bad --member {spec!r} (want NAME=ADDR[,standby=ADDR])"
            )
        standby = value.strip()
    return MemberSpec(name=name.strip(), addr=addr.strip(), standby_addr=standby)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-router",
        description="route verify requests across a fleet of repro-serve "
                    "members (repro-serve-v1 on both sides)",
    )
    where = parser.add_mutually_exclusive_group(required=True)
    where.add_argument(
        "--socket", metavar="PATH", help="listen on a unix socket at PATH"
    )
    where.add_argument(
        "--tcp", metavar="HOST:PORT", help="listen on a TCP host:port"
    )
    parser.add_argument(
        "--member", action="append", type=_parse_member, required=True,
        metavar="NAME=ADDR[,standby=ADDR]",
        help="a fleet member: primary address plus an optional hot-standby "
             "address tried on failover (repeatable; order fixes shards)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.5, metavar="S",
        help="health-check cadence per member (default 0.5)",
    )
    parser.add_argument(
        "--heartbeat-misses", type=int, default=3, metavar="N",
        help="consecutive silent intervals before a member is marked down "
             "(default 3)",
    )
    parser.add_argument(
        "--route-wait", type=float, default=5.0, metavar="S",
        help="how long an admission waits for any healthy member before "
             "rejecting (default 5)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a repro-trace-v1 JSONL of the router's life on drain",
    )
    parser.add_argument(
        "--chaos", type=int, default=None, metavar="SEED",
        help="install a seeded fault plan (router-partition site; "
             "soak/test harness only)",
    )
    parser.add_argument(
        "--chaos-rates", default=None, metavar="KIND=RATE,...",
        help="per-kind fault rates for --chaos, e.g. 'router-partition=0.1'",
    )
    _log.add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    _log.configure_from_args(args)

    host, port = None, 0
    if args.tcp:
        host, _, port_text = args.tcp.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            parser.error(f"bad --tcp spec {args.tcp!r} (want HOST:PORT)")

    config = RouterConfig(
        socket_path=args.socket,
        host=host or None,
        port=port,
        members=list(args.member),
        heartbeat_interval_s=args.heartbeat_interval,
        heartbeat_misses=args.heartbeat_misses,
        route_wait_s=args.route_wait,
    )

    if args.chaos is not None:
        from repro.faults import injection
        from repro.faults.plan import FaultPlan

        rates = {}
        if args.chaos_rates:
            for item in args.chaos_rates.split(","):
                kind, _, rate = item.partition("=")
                rates[kind.strip()] = float(rate)
        injection.install(FaultPlan(seed=args.chaos, rates=rates))
        _log.info(f"chaos plan installed (seed {args.chaos})")

    if args.trace:
        _telemetry.enable()
    router = VerifyRouter(config)
    try:
        asyncio.run(router.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 0
    finally:
        if args.trace:
            _write_trace(args.trace)
    return 0


def _write_trace(path: str) -> None:
    from repro.obs.export import write_trace

    recorder = _telemetry.get_recorder()
    if recorder is not None:
        write_trace(recorder, path, meta={"tool": "repro-serve-router"})


if __name__ == "__main__":
    sys.exit(main())
