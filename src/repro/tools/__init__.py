"""Tool façades: the verification tools compared in the paper.

Each "tool" is a named configuration of one of the engines in
:mod:`repro.engines`, matching the representation level and algorithm of the
corresponding tool in the paper's evaluation (Figures 3–5):

=====================  =====================  ============  =======================
tool name              engine                 level         notes
=====================  =====================  ============  =======================
``abc-kind``           k-induction            bit (AIG)     ABC 1.01, HWMCC winner
``abc-interpolation``  interpolation          bit (AIG)     ABC ``int`` command
``abc-pdr``            IC3/PDR                bit (AIG)     ABC ``pdr`` command
``ebmc-kind``          k-induction            word          EBMC 4.2 word-level
``cbmc-kind``          k-induction            software      CBMC 5.2 on the netlist
``2ls-kind``           k-induction            software      2LS 0.3.4 ``--k-induction``
``2ls-kiki``           kIkI                   software      2LS k-induction+invariants
``cpa-interpolation``  interpolation          software      CPAChecker 1.4 (IMPACT-like)
``cpa-predabs``        predicate abstraction  software      CPAChecker predicate analysis
``impara``             IMPACT                 software      IMPARA
``seahorn-pdr``        IC3/PDR                software      SeaHorn (integer/Horn level)
``astree``             abstract interp.       software      Astrée-style intervals
=====================  =====================  ============  =======================

The SeaHorn and CPAChecker-predabs configurations run on an over-approximated
software-netlist in which bit-level operations are havocked
(:func:`repro.tools.approximations.havoc_bitlevel_ops`).  This models their
limited bit-vector support and reproduces the *wrong results* the paper
reports for them on bit-manipulating designs, without making the underlying
engines unsound.
"""

from repro.tools.catalog import TOOLS, ToolConfig, available_tools, run_tool
from repro.tools.approximations import havoc_bitlevel_ops

__all__ = ["TOOLS", "ToolConfig", "available_tools", "run_tool", "havoc_bitlevel_ops"]
