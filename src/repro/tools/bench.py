"""Benchmarking harness for the template-unrolling subsystem.

Run with ``python -m repro.tools.bench`` (or the ``repro-bench`` console
script).  For each selected benchmark the harness unrolls BMC to a fixed
depth twice — once through the :class:`repro.engines.encoding.FrameTemplate`
fast path and once through the legacy per-frame re-blast
(``incremental_template=False``) — timing the *encode* phase (transition /
property instantiation) separately from the *solve* phase (the SAT checks),
and asserting that the two paths return identical verdicts.  A second section
runs the unbounded engines (k-induction, interpolation, kIkI, PDR) end to end
on both paths.

Results are written to ``BENCH_unroll.json`` so that successive performance
PRs have a trajectory to compare against: the ``summary`` section records the
per-benchmark encode+solve speedups, the count of benchmarks at or above the
3x target, and whether every verdict pair matched.

``--portfolio`` switches the harness into portfolio mode: every default
portfolio configuration is first timed *individually* on each design, then
the process-parallel :class:`repro.engines.portfolio.PortfolioRunner` races
them, and ``BENCH_portfolio.json`` records the portfolio wall-clock against
the fastest and slowest *winning* single engine per design.

``--certify`` switches into certification mode: every engine of the zoo runs
on every suite design, each definitive verdict's certificate (UNSAFE witness
/ SAFE invariant, see :mod:`repro.certs`) is validated by the independent
checker, and a cross-check portfolio with an injected wrong-verdict engine
demonstrates certificate-based adjudication.  ``BENCH_certify.json`` records
the per-design validation statistics; the run fails unless every definitive
verdict is correct *and* independently validated.

``--incremental`` measures the persistent solver sessions: k-induction is
profiled bound by bound (per-bound wall clock and ``SolverStats`` deltas) in
three modes — **session** (one persistent solver, templates), **template**
(template stamping but a fresh solver per bound) and **legacy** (fresh
solver, per-frame re-blast) — kIkI is timed end to end in the same modes, and
a verdict sweep runs the converted engines on all suite designs with
``persistent_session`` on and off.  ``BENCH_incremental.json`` records the
speedups; the run fails on any session-vs-legacy verdict mismatch.  By
default the per-bound rows are aggregated into compact per-design summaries;
``--full`` keeps the raw per-bound data (``--summary`` spells the default
explicitly).

``--serve`` measures the query-serving hot path: the whole suite is swept
twice through the :class:`repro.engines.batch.BatchRunner` against one
certificate cache — the cold pass runs the sequential budget ladder per item
and fills the cache, the warm pass must be answered entirely by re-validated
cache hits — then the budget-ladder scheduler is raced against the
all-at-once fan-out (wall and total worker CPU), and SAFE certificates are
minimized with before/after validation timings.  ``BENCH_serve.json`` gates
on: 100 % cold/warm verdict agreement, an all-hit warm sweep at >= 3x the
cold wall clock, ladder CPU <= fan-out CPU wherever a cheap rung decides,
and minimized certificates validating no slower than their originals.

``--faults`` runs the chaos harness: seeded :class:`repro.faults.FaultPlan`
sweeps inject worker kills, exception crashes, SAT-search wedges, spawn
failures, forged certificates and cache tampering into certified batch runs
(``--seeds`` controls how many).  ``BENCH_faults.json`` gates on: every
sweep ends with a definitive, independently validated verdict per item
(zero WRONGs), no leaked worker processes, ``fsck`` heals every tampered
cache, and a hang wedged into an in-process SAT solve is broken by the
cooperative deadline without killing the process.

``--serve-soak`` soaks a *live* ``repro-serve`` server (a subprocess in its
own process group) with the chaos plan installed server-side: K identical
concurrent queries must coalesce to exactly one computation, warm hits are
latency-sampled (p50 recorded), an over-capacity flood must draw explicit
``overloaded`` rejections, seeded client disconnects and a too-tight
deadline must resolve cleanly, and a graceful drain must leave the journal
empty, the trace lint-clean and the process group extinct.  The server is
then SIGKILLed mid-flight and restarted on the same journal, which must
NACK every accepted-but-unanswered request.  ``BENCH_server.json`` gates on
all of it: every accept answered-or-cleanly-rejected, zero WRONG verdicts,
zero leaked processes, zero orphan spans, full journal recovery.

``--kernels`` measures the raw-speed replay tiers: per design, one random
workload (``--lanes`` sequences x ``--cycles`` cycles) is replayed through
the scalar reference interpreter, the bit-parallel packed simulator
(:mod:`repro.netlist.bitsim`) and the compiled C kernel
(:mod:`repro.kernels`), with input marshalling excluded from the timed
region so the numbers compare steady-state stepping throughput.
``BENCH_kernels.json`` gates on: packed >= ``--packed-gate`` x scalar on at
least 3 designs, compiled >= ``--kernel-gate`` x packed on at least 3
designs (waived when no C compiler is available), 100 % verdict agreement
between :func:`repro.kernels.checked_replay` and the scalar reference, and
the rsim falsifier finding and packed-validating a witness on every unsafe
suite design.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Dict, List, Optional, Tuple

from repro.benchmarks import benchmark_names, get_benchmark
from repro.certs import validate_result
from repro.engines.bmc import BMCEngine
from repro.engines.encoding import FrameEncoder
from repro.engines.interpolation import InterpolationEngine
from repro.engines.kiki import KikiEngine
from repro.engines.kinduction import KInductionEngine
from repro.engines.pdr import PDREngine
from repro.engines.portfolio import (
    PortfolioConfig,
    PortfolioRunner,
    VerificationTask,
    bound_options,
    default_portfolio_configs,
)
from repro.engines.registry import list_engines, make_engine
from repro.engines.result import Status
from repro.jsonio import write_json_atomic
from repro.obs import log as _log
from repro.obs import telemetry as _telemetry
from repro.smt import BVResult

#: default designs for the deep-unroll comparison (encode-dominated datapaths)
DEFAULT_BMC_BENCHMARKS = ["mac16", "barrel16", "huffman_enc", "daio"]
#: default designs for the end-to-end engine comparison (small control logic)
DEFAULT_ENGINE_BENCHMARKS = ["huffman_dec", "proc3", "buffalloc", "arbiter"]
#: default designs for the portfolio-vs-single comparison: a mix where the
#: fastest winner differs (BMC refutes daio/tlc, the provers win the rest)
DEFAULT_PORTFOLIO_BENCHMARKS = ["daio", "tlc", "buffalloc", "huffman_dec"]

ENGINE_FACTORIES = {
    "k-induction": lambda system, template: KInductionEngine(
        system, max_k=16, incremental_template=template
    ),
    "interpolation": lambda system, template: InterpolationEngine(
        system, incremental_template=template
    ),
    "kiki": lambda system, template: KikiEngine(
        system, max_k=16, incremental_template=template
    ),
    "pdr": lambda system, template: PDREngine(system, incremental_template=template),
}


def profile_bmc_unroll(
    system,
    property_name: Optional[str],
    depth: int,
    representation: str,
    incremental_template: bool,
) -> Dict[str, object]:
    """Unroll BMC to ``depth``, timing encode and solve separately.

    Mirrors :class:`repro.engines.bmc.BMCEngine` exactly (same queries in the
    same order) so the verdict comparison is meaningful, but keeps its own
    stopwatch around the encode calls (``assert_trans`` / ``property_literal``)
    versus the solve calls (``check``).
    """
    start = time.monotonic()
    encoder = FrameEncoder(
        system,
        representation=representation,
        incremental_template=incremental_template,
    )
    encoder.assert_init(0)
    setup_s = time.monotonic() - start
    if property_name is None:
        property_name = system.properties[0].name

    encode_s = 0.0
    solve_s = 0.0
    verdict = "unknown"
    bound_reached = depth
    for bound in range(depth + 1):
        t0 = time.monotonic()
        literal = encoder.property_literal(property_name, bound)
        encode_s += time.monotonic() - t0
        t0 = time.monotonic()
        outcome = encoder.solver.check(assumptions=[-literal])
        solve_s += time.monotonic() - t0
        if outcome == BVResult.SAT:
            verdict = "unsafe"
            bound_reached = bound
            break
        t0 = time.monotonic()
        encoder.assert_trans(bound)
        encode_s += time.monotonic() - t0
    sat_solver = encoder.solver.solver
    return {
        "verdict": verdict,
        "bound": bound_reached,
        "setup_s": round(setup_s, 6),
        "encode_s": round(encode_s, 6),
        "solve_s": round(solve_s, 6),
        "total_s": round(setup_s + encode_s + solve_s, 6),
        "clauses": sat_solver.num_clauses,
        "vars": sat_solver.num_vars,
        "solver_stats": sat_solver.stats.as_dict(),
    }


def _best_of(runs: List[Dict[str, object]]) -> Dict[str, object]:
    """Keep the fastest run (by encode+solve) — standard noise reduction."""
    return min(runs, key=lambda r: r["encode_s"] + r["solve_s"])


def run_bmc_section(
    names: List[str], depth: int, representation: str, repeats: int = 3
) -> List[Dict]:
    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        system = benchmark.load()
        template = _best_of(
            [
                profile_bmc_unroll(system, None, depth, representation, True)
                for _ in range(repeats)
            ]
        )
        legacy = _best_of(
            [
                profile_bmc_unroll(system, None, depth, representation, False)
                for _ in range(repeats)
            ]
        )
        speedup = (
            legacy["encode_s"] + legacy["solve_s"]
        ) / max(1e-9, template["encode_s"] + template["solve_s"])
        row = {
            "benchmark": name,
            "representation": representation,
            "depth": depth,
            "template": template,
            "legacy": legacy,
            "encode_solve_speedup": round(speedup, 2),
            "verdicts_match": (template["verdict"], template["bound"])
            == (legacy["verdict"], legacy["bound"]),
        }
        rows.append(row)
        _log.info(
            f"bmc {name:12s} depth={depth} [{representation}] "
            f"template={row['template']['total_s']:.3f}s "
            f"legacy={row['legacy']['total_s']:.3f}s "
            f"speedup={row['encode_solve_speedup']:.2f}x "
            f"verdict={template['verdict']} "
            f"{'OK' if row['verdicts_match'] else 'MISMATCH'}"
        )
    return rows


def run_engine_section(names: List[str], engines: List[str], timeout: float) -> List[Dict]:
    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        for engine_name in engines:
            factory = ENGINE_FACTORIES[engine_name]
            outcomes = {}
            for template in (True, False):
                system = benchmark.load()
                t0 = time.monotonic()
                result = factory(system, template).verify(timeout=timeout)
                outcomes["template" if template else "legacy"] = {
                    "status": result.status,
                    "runtime_s": round(time.monotonic() - t0, 6),
                    "solver_stats": result.detail.get("solver_stats"),
                }
            speedup = outcomes["legacy"]["runtime_s"] / max(
                1e-9, outcomes["template"]["runtime_s"]
            )
            row = {
                "engine": engine_name,
                "benchmark": name,
                "representation": "word",
                "template": outcomes["template"],
                "legacy": outcomes["legacy"],
                "speedup": round(speedup, 2),
                "verdicts_match": outcomes["template"]["status"]
                == outcomes["legacy"]["status"],
                "expected": benchmark.expected,
            }
            rows.append(row)
            _log.info(
                f"eng {engine_name:13s} {name:12s} "
                f"template={row['template']['runtime_s']:.3f}s/{row['template']['status']} "
                f"legacy={row['legacy']['runtime_s']:.3f}s/{row['legacy']['status']} "
                f"{'OK' if row['verdicts_match'] else 'MISMATCH'}"
            )
    return rows


def run_portfolio_section(
    names: List[str],
    bound: int,
    timeout: float,
    jobs: Optional[int] = None,
) -> List[Dict]:
    """Portfolio wall-clock vs. individually-timed single engines per design."""
    configs = default_portfolio_configs(bound=bound)
    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        expected = benchmark.expected

        singles: Dict[str, Dict[str, object]] = {}
        for config in configs:
            system = benchmark.load()
            t0 = time.monotonic()
            result = make_engine(
                config.engine,
                system,
                ignore_unknown_options=True,
                **config.options_dict,
            ).verify(timeout=timeout)
            singles[config.label] = {
                "status": result.status,
                "runtime_s": round(time.monotonic() - t0, 6),
                "correct": result.status == expected,
                "solver_stats": result.detail.get("solver_stats"),
            }

        runner = PortfolioRunner(
            configs=configs, timeout=timeout, max_workers=jobs, expected=expected
        )
        portfolio = runner.run(VerificationTask.benchmark(name))

        winners = {
            label: row for label, row in singles.items() if row["correct"]
        }
        best_single = min(
            (row["runtime_s"] for row in winners.values()), default=None
        )
        slowest_winning = max(
            (row["runtime_s"] for row in winners.values()), default=None
        )
        within_slowest = (
            slowest_winning is not None and portfolio.runtime <= slowest_winning
        )
        row = {
            "benchmark": name,
            "expected": expected,
            "portfolio": {
                "status": portfolio.status,
                "winner": portfolio.winner,
                "wall_s": round(portfolio.runtime, 6),
                "workers": {
                    outcome.label: outcome.status for outcome in portfolio.workers
                },
                "correct": portfolio.status == expected,
                "winner_solver_stats": portfolio.detail.get("winner_solver_stats"),
            },
            "singles": singles,
            "best_single_s": best_single,
            "slowest_winning_single_s": slowest_winning,
            "portfolio_within_slowest_winning": within_slowest,
            "portfolio_vs_best_single": (
                round(portfolio.runtime / best_single, 2)
                if best_single
                else None
            ),
        }
        rows.append(row)
        _log.info(
            f"pfl {name:12s} portfolio={portfolio.runtime:.3f}s/{portfolio.status} "
            f"winner={portfolio.winner} best_single={best_single} "
            f"slowest_winning={slowest_winning} "
            f"{'OK' if row['portfolio']['correct'] else 'WRONG'}"
        )
    return rows


def write_portfolio_report(rows: List[Dict], out: str, depth: int, timeout: float) -> bool:
    """Write ``BENCH_portfolio.json``; returns True when all verdicts are correct."""
    all_correct = all(row["portfolio"]["correct"] for row in rows)
    report = {
        "meta": {
            "tool": "repro.tools.bench --portfolio",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "depth": depth,
            "timeout_s": timeout,
        },
        "portfolio": rows,
        "summary": {
            "designs": len(rows),
            "all_verdicts_correct": all_correct,
            "designs_within_slowest_winning_single": sum(
                1 for row in rows if row["portfolio_within_slowest_winning"]
            ),
            "portfolio_vs_best_single": {
                row["benchmark"]: row["portfolio_vs_best_single"] for row in rows
            },
        },
    }
    write_json_atomic(out, report)
    print(
        f"\nwrote {out}: "
        f"{report['summary']['designs_within_slowest_winning_single']}/{len(rows)} designs "
        f"with portfolio <= slowest winning single, verdicts "
        f"{'all correct' if all_correct else 'WRONG'}"
    )
    return all_correct


def run_certify_section(
    names: List[str], bound: int, timeout: float
) -> List[Dict]:
    """Run every paper engine on every design and validate each certificate."""
    engines = [
        registration.name
        for registration in list_engines()
        if registration.name != "oracle"  # fault injection is not a paper engine
    ]
    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        expected = benchmark.expected
        engine_rows: Dict[str, Dict[str, object]] = {}
        for engine_name in engines:
            system = benchmark.load()
            t0 = time.monotonic()
            try:
                result = make_engine(
                    engine_name,
                    system,
                    ignore_unknown_options=True,
                    **bound_options(bound),
                ).verify(timeout=timeout)
            except Exception as error:  # noqa: BLE001 - crash category
                engine_rows[engine_name] = {
                    "status": Status.ERROR,
                    "runtime_s": round(time.monotonic() - t0, 6),
                    "reason": f"{type(error).__name__}: {error}",
                }
                continue
            row: Dict[str, object] = {
                "status": result.status,
                "runtime_s": round(time.monotonic() - t0, 6),
                "solver_stats": result.detail.get("solver_stats"),
            }
            if result.is_definitive:
                row["correct"] = result.status == expected
                validation = validate_result(system, result, timeout=timeout)
                row["certificate"] = getattr(result.certificate, "kind", None)
                row["certified"] = validation.ok
                row["validate_s"] = round(validation.runtime, 6)
                if not validation.ok:
                    row["validation_reason"] = validation.reason
            engine_rows[engine_name] = row
        definitive = {
            engine: row for engine, row in engine_rows.items() if "certified" in row
        }
        certified = sum(1 for row in definitive.values() if row["certified"])
        correct = sum(1 for row in definitive.values() if row["correct"])
        rows.append(
            {
                "benchmark": name,
                "expected": expected,
                "engines": engine_rows,
                "definitive": len(definitive),
                "correct": correct,
                "certified": certified,
            }
        )
        _log.info(
            f"cert {name:12s} definitive={len(definitive)}/{len(engines)} "
            f"correct={correct} certified={certified} "
            f"{'OK' if certified == len(definitive) == correct else 'FAIL'}"
        )
    return rows


def run_adjudication_demo(design: str, bound: int, timeout: float) -> Dict[str, object]:
    """Cross-check portfolio with an injected wrong-verdict engine.

    The oracle claims the opposite of the known verdict with a forged
    certificate; adjudication must side with the honest engines.
    """
    benchmark = get_benchmark(design)
    expected = benchmark.expected
    wrong_claim = Status.SAFE if expected == Status.UNSAFE else Status.UNSAFE
    configs = default_portfolio_configs(bound=bound) + [
        PortfolioConfig.of("oracle", claim=wrong_claim)
    ]
    runner = PortfolioRunner(
        configs=configs, timeout=timeout, cross_check=True, expected=expected
    )
    result = runner.run(VerificationTask.benchmark(design))
    adjudicated = result.status == expected and "adjudication" in result.detail
    _log.info(
        f"adj  {design:12s} injected={wrong_claim} portfolio={result.status} "
        f"winner={result.winner} {'OK' if adjudicated else 'FAIL'}"
    )
    return {
        "benchmark": design,
        "expected": expected,
        "injected_claim": wrong_claim,
        "status": result.status,
        "winner": result.winner,
        "adjudication": result.detail.get("adjudication"),
        "adjudicated_correctly": adjudicated,
    }


# ---------------------------------------------------------------------------
# incremental-session mode (--incremental)
# ---------------------------------------------------------------------------

#: mode name -> (incremental_template, persistent_session)
INCREMENTAL_MODES = {
    "session": (True, True),
    "template": (True, False),
    "legacy": (False, False),
}

#: default designs for the incremental-session comparison: the two unsafe
#: designs drive k-induction/kIkI through every bound (their bugs are beyond
#: the depth cap, so the sliding window deepens to max_k), huffman_enc is the
#: solver-bound datapath of BENCH_unroll, mac16 the encode-bound one
DEFAULT_INCREMENTAL_BENCHMARKS = ["daio", "tlc", "huffman_enc", "mac16"]

#: engines of the session-vs-legacy verdict sweep (all converted engines)
SWEEP_ENGINES = ["bmc", "k-induction", "kiki", "interpolation", "predabs"]


def profile_kinduction_incremental(
    system, property_name: Optional[str], depth: int, mode: str, timeout: float
) -> Dict[str, object]:
    """Profile k-induction bound by bound in one incremental mode.

    Mirrors :class:`repro.engines.kinduction.KInductionEngine` exactly (same
    queries in the same order, through the engine's own session helpers) but
    keeps a per-bound stopwatch and snapshots the ``SolverStats`` deltas each
    bound contributes.
    """
    from repro.engines.kinduction import KInductionEngine
    from repro.engines.result import Budget
    from repro.sat.solver import SolverStats

    template, persistent = INCREMENTAL_MODES[mode]
    if property_name is None:
        property_name = system.properties[0].name
    engine = KInductionEngine(
        system,
        max_k=depth,
        incremental_template=template,
        persistent_session=persistent,
    )
    engine._stats = SolverStats()
    budget = Budget(timeout)
    start = time.monotonic()

    def totals(base, step) -> Dict[str, int]:
        snapshot = SolverStats()
        snapshot.add(engine._stats)
        for encoder in (base, step):
            if encoder is not None:
                snapshot.add(encoder.solver.stats)
        return snapshot.as_dict()

    base = step = None
    if persistent:
        base, step = engine._fresh_pair(budget)
    per_bound: List[Dict[str, object]] = []
    previous = totals(base, step)
    verdict = "unknown"
    k_reached = depth
    for k in range(depth + 1):
        if budget.expired():
            verdict = "timeout"
            k_reached = k
            break
        t0 = time.monotonic()
        if not persistent:
            engine._retire_pair(base, step)
            base, step = engine._fresh_pair(budget)
            for frame in range(k):
                base.assert_trans(frame)
            engine._extend_step(step, k, property_name)
        base_property = base.property_literal(property_name, k)
        outcome = base.solver.check(assumptions=[-base_property])
        concluded = None
        if outcome == BVResult.SAT:
            concluded = ("unsafe", k)
        elif outcome == BVResult.UNKNOWN:
            concluded = ("timeout", k)
        if concluded is None:
            if persistent:
                engine._extend_step_frame(step, k, property_name)
            step_property = step.property_literal(property_name, k + 1)
            outcome = step.solver.check(assumptions=[-step_property])
            if outcome == BVResult.UNSAT:
                concluded = ("safe", k + 1)
            elif outcome == BVResult.UNKNOWN:
                concluded = ("timeout", k)
            elif persistent:
                base.assert_trans(k)
        wall = time.monotonic() - t0
        current = totals(base, step)
        deltas = {
            key: (
                max(previous.get(key, 0), value)
                if key == "max_decision_level"
                else value - previous.get(key, 0)
            )
            for key, value in current.items()
        }
        previous = current
        per_bound.append({"k": k, "wall_s": round(wall, 6), "stats": deltas})
        if concluded is not None:
            verdict, k_reached = concluded
            break
    engine._retire_pair(base, step)
    return {
        "mode": mode,
        "verdict": verdict,
        "k": k_reached,
        "total_s": round(time.monotonic() - start, 6),
        "solver_stats": engine._stats.as_dict(),
        "per_bound": per_bound,
    }


def profile_bmc_incremental(
    system, property_name: Optional[str], depth: int, mode: str, timeout: float
) -> Dict[str, object]:
    """Profile BMC bound by bound in one incremental mode.

    Mirrors :class:`repro.engines.bmc.BMCEngine`: the session mode extends a
    single solver, the template/legacy modes rebuild (with and without frame
    templates) and re-unroll from scratch at every bound.
    """
    from repro.engines.result import Budget
    from repro.sat.solver import SolverStats

    template, persistent = INCREMENTAL_MODES[mode]
    if property_name is None:
        property_name = system.properties[0].name
    budget = Budget(timeout)
    start = time.monotonic()
    totals = SolverStats()

    def snapshot(encoder) -> Dict[str, int]:
        current = SolverStats()
        current.add(totals)
        if encoder is not None:
            current.add(encoder.solver.solver.stats)
        return current.as_dict()

    def fresh():
        encoder = FrameEncoder(
            system, incremental_template=template
        )
        encoder.solver.set_deadline(budget.deadline)
        encoder.assert_init(0)
        return encoder

    encoder = None
    per_bound: List[Dict[str, object]] = []
    previous = snapshot(None)
    verdict = "unknown"
    bound_reached = depth
    for bound in range(depth + 1):
        if budget.expired():
            verdict = "timeout"
            bound_reached = bound
            break
        t0 = time.monotonic()
        if persistent:
            if encoder is None:
                encoder = fresh()
        else:
            if encoder is not None:
                totals.add(encoder.solver.solver.stats)
            encoder = fresh()
            for frame in range(bound):
                encoder.assert_trans(frame)
        literal = encoder.property_literal(property_name, bound)
        outcome = encoder.solver.check(assumptions=[-literal])
        if outcome == BVResult.SAT:
            verdict = "unsafe"
            bound_reached = bound
        elif outcome == BVResult.UNKNOWN:
            verdict = "timeout"
            bound_reached = bound
        elif persistent:
            encoder.assert_trans(bound)
        wall = time.monotonic() - t0
        current = snapshot(encoder)
        deltas = {
            key: (
                max(previous.get(key, 0), value)
                if key == "max_decision_level"
                else value - previous.get(key, 0)
            )
            for key, value in current.items()
        }
        previous = current
        per_bound.append({"bound": bound, "wall_s": round(wall, 6), "stats": deltas})
        if verdict != "unknown":
            break
    if encoder is not None:
        totals.add(encoder.solver.solver.stats)
    return {
        "mode": mode,
        "verdict": verdict,
        "bound": bound_reached,
        "total_s": round(time.monotonic() - start, 6),
        "solver_stats": totals.as_dict(),
        "per_bound": per_bound,
    }


def run_incremental_bmc_section(
    names: List[str], depth: int, timeout: float
) -> List[Dict]:
    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        modes: Dict[str, Dict[str, object]] = {}
        for mode in INCREMENTAL_MODES:
            system = benchmark.load()
            modes[mode] = profile_bmc_incremental(system, None, depth, mode, timeout)
        session_s = modes["session"]["total_s"]
        row = {
            "benchmark": name,
            "depth": depth,
            "modes": modes,
            "speedup_session_vs_legacy": round(
                modes["legacy"]["total_s"] / max(1e-9, session_s), 2
            ),
            "speedup_session_vs_template": round(
                modes["template"]["total_s"] / max(1e-9, session_s), 2
            ),
            "verdicts_match": len(
                {(m["verdict"], m["bound"]) for m in modes.values()}
            ) == 1,
        }
        rows.append(row)
        _log.info(
            f"bmc  {name:12s} depth={depth} "
            f"session={modes['session']['total_s']:.3f}s "
            f"template={modes['template']['total_s']:.3f}s "
            f"legacy={modes['legacy']['total_s']:.3f}s "
            f"speedup={row['speedup_session_vs_legacy']:.2f}x "
            f"conflicts session/legacy="
            f"{modes['session']['solver_stats']['conflicts']}/"
            f"{modes['legacy']['solver_stats']['conflicts']} "
            f"{'OK' if row['verdicts_match'] else 'MISMATCH'}"
        )
    return rows


def run_incremental_kinduction_section(
    names: List[str], depth: int, timeout: float
) -> List[Dict]:
    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        modes: Dict[str, Dict[str, object]] = {}
        for mode in INCREMENTAL_MODES:
            system = benchmark.load()
            modes[mode] = profile_kinduction_incremental(
                system, None, depth, mode, timeout
            )
        session_s = modes["session"]["total_s"]
        row = {
            "benchmark": name,
            "depth": depth,
            "modes": modes,
            "speedup_session_vs_legacy": round(
                modes["legacy"]["total_s"] / max(1e-9, session_s), 2
            ),
            "speedup_session_vs_template": round(
                modes["template"]["total_s"] / max(1e-9, session_s), 2
            ),
            "verdicts_match": len(
                {(m["verdict"], m["k"]) for m in modes.values()}
            ) == 1,
        }
        rows.append(row)
        _log.info(
            f"kind {name:12s} depth={depth} "
            f"session={modes['session']['total_s']:.3f}s "
            f"template={modes['template']['total_s']:.3f}s "
            f"legacy={modes['legacy']['total_s']:.3f}s "
            f"speedup={row['speedup_session_vs_legacy']:.2f}x "
            f"verdict={modes['session']['verdict']} "
            f"{'OK' if row['verdicts_match'] else 'MISMATCH'}"
        )
    return rows


def run_incremental_kiki_section(
    names: List[str], depth: int, timeout: float
) -> List[Dict]:
    from repro.engines.kiki import KikiEngine

    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        modes: Dict[str, Dict[str, object]] = {}
        for mode, (template, persistent) in INCREMENTAL_MODES.items():
            system = benchmark.load()
            t0 = time.monotonic()
            result = KikiEngine(
                system,
                max_k=depth,
                incremental_template=template,
                persistent_session=persistent,
            ).verify(timeout=timeout)
            modes[mode] = {
                "status": result.status,
                "k": result.detail.get("k", result.detail.get("max_k")),
                "runtime_s": round(time.monotonic() - t0, 6),
                "solver_stats": result.detail.get("solver_stats"),
            }
        session_s = modes["session"]["runtime_s"]
        row = {
            "benchmark": name,
            "depth": depth,
            "modes": modes,
            "speedup_session_vs_legacy": round(
                modes["legacy"]["runtime_s"] / max(1e-9, session_s), 2
            ),
            "verdicts_match": len({m["status"] for m in modes.values()}) == 1,
        }
        rows.append(row)
        _log.info(
            f"kiki {name:12s} depth={depth} "
            f"session={modes['session']['runtime_s']:.3f}s "
            f"legacy={modes['legacy']['runtime_s']:.3f}s "
            f"speedup={row['speedup_session_vs_legacy']:.2f}x "
            f"{'OK' if row['verdicts_match'] else 'MISMATCH'}"
        )
    return rows


def run_incremental_sweep(bound: int, timeout: float) -> List[Dict]:
    """Session vs legacy verdicts for every converted engine on every design."""
    rows = []
    for name in benchmark_names():
        benchmark = get_benchmark(name)
        engines: Dict[str, Dict[str, object]] = {}
        for engine_name in SWEEP_ENGINES:
            outcomes = {}
            for label, persistent in (("session", True), ("legacy", False)):
                system = benchmark.load()
                t0 = time.monotonic()
                result = make_engine(
                    engine_name,
                    system,
                    ignore_unknown_options=True,
                    persistent_session=persistent,
                    **bound_options(bound),
                ).verify(timeout=timeout)
                outcomes[label] = {
                    "status": result.status,
                    "runtime_s": round(time.monotonic() - t0, 6),
                }
            engines[engine_name] = {
                **outcomes,
                "verdicts_match": outcomes["session"]["status"]
                == outcomes["legacy"]["status"],
            }
        matches = sum(1 for row in engines.values() if row["verdicts_match"])
        rows.append({"benchmark": name, "engines": engines, "matches": matches})
        _log.info(
            f"swp  {name:12s} {matches}/{len(SWEEP_ENGINES)} engines "
            f"session==legacy"
        )
    return rows


def write_incremental_report(
    kind_rows: List[Dict],
    kiki_rows: List[Dict],
    bmc_rows: List[Dict],
    sweep_rows: List[Dict],
    out: str,
    depth: int,
    timeout: float,
) -> bool:
    """Write ``BENCH_incremental.json``; True when every verdict pair matched."""
    all_match = (
        all(row["verdicts_match"] for row in kind_rows + kiki_rows + bmc_rows)
        and all(
            engine["verdicts_match"]
            for row in sweep_rows
            for engine in row["engines"].values()
        )
    )
    at_or_above_2x = sum(
        1
        for row in kind_rows + kiki_rows
        if row["speedup_session_vs_legacy"] >= 2.0
    )
    conflict_rows = {
        row["benchmark"]: {
            "session": row["modes"]["session"]["solver_stats"]["conflicts"],
            "legacy": row["modes"]["legacy"]["solver_stats"]["conflicts"],
        }
        for row in bmc_rows
    }
    report = {
        "meta": {
            "tool": "repro.tools.bench --incremental",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "depth": depth,
            "timeout_s": timeout,
        },
        "kinduction": kind_rows,
        "kiki": kiki_rows,
        "bmc": bmc_rows,
        "verdict_sweep": sweep_rows,
        "summary": {
            "kinduction_speedups_session_vs_legacy": {
                row["benchmark"]: row["speedup_session_vs_legacy"] for row in kind_rows
            },
            "kiki_speedups_session_vs_legacy": {
                row["benchmark"]: row["speedup_session_vs_legacy"] for row in kiki_rows
            },
            "bmc_speedups_session_vs_legacy": {
                row["benchmark"]: row["speedup_session_vs_legacy"] for row in bmc_rows
            },
            "runs_at_or_above_2x": at_or_above_2x,
            "bmc_conflicts_session_vs_legacy": conflict_rows,
            "all_verdicts_match": all_match,
        },
    }
    write_json_atomic(out, report)
    print(
        f"\nwrote {out}: {at_or_above_2x}/{len(kind_rows) + len(kiki_rows)} "
        f"engine runs at >=2x session-vs-legacy, verdicts "
        f"{'all match' if all_match else 'MISMATCH'}"
    )
    return all_match


def write_certify_report(
    rows: List[Dict],
    adjudication: Dict[str, object],
    out: str,
    bound: int,
    timeout: float,
) -> bool:
    """Write ``BENCH_certify.json``; True when every definitive verdict validated."""
    total_definitive = sum(row["definitive"] for row in rows)
    total_certified = sum(row["certified"] for row in rows)
    total_correct = sum(row["correct"] for row in rows)
    all_validated = (
        total_definitive == total_certified == total_correct
        and bool(adjudication.get("adjudicated_correctly"))
    )
    report = {
        "meta": {
            "tool": "repro.tools.bench --certify",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "bound": bound,
            "timeout_s": timeout,
        },
        "certification": rows,
        "adjudication": adjudication,
        "summary": {
            "designs": len(rows),
            "definitive_verdicts": total_definitive,
            "correct_verdicts": total_correct,
            "validated_certificates": total_certified,
            "validation_rate": (
                round(total_certified / total_definitive, 4) if total_definitive else None
            ),
            "all_definitive_validated": all_validated,
        },
    }
    write_json_atomic(out, report)
    print(
        f"\nwrote {out}: {total_certified}/{total_definitive} definitive verdicts "
        f"validated ({total_correct} correct), adjudication "
        f"{'OK' if adjudication.get('adjudicated_correctly') else 'FAIL'}"
    )
    return all_validated


# ---------------------------------------------------------------------------
# serve mode (--serve): cache sweeps, ladder vs fan-out, minimization
# ---------------------------------------------------------------------------

#: designs raced ladder-vs-fanout (a mix where different rungs decide:
#: BMC refutes daio/tlc in the cheap rung, absint proves huffman_dec there,
#: buffalloc needs the k-induction-family rung)
DEFAULT_LADDER_BENCHMARKS = ["daio", "tlc", "huffman_dec", "buffalloc"]

#: (design, engine) pairs whose SAFE certificates carry droppable conjuncts
#: (kIkI's strengthening invariants usually all drop once k is found, PDR's
#: frame clauses sometimes do); the minimization subsection shrinks them and
#: times validation before/after
DEFAULT_MINIMIZE_CASES = [
    ("huffman_dec", "kiki"),
    ("rcu", "kiki"),
    ("arbiter", "kiki"),
    ("proc3", "pdr"),
]


def run_serve_sweeps(
    names: List[str],
    bound: int,
    timeout: float,
    jobs: Optional[int],
    cache_dir: str,
) -> Dict[str, object]:
    """Sweep the suite twice against one cache: cold fills, warm must hit."""
    from repro.cache import ResultCache
    from repro.engines.batch import BatchItem, BatchRunner

    items = [BatchItem.benchmark(name) for name in names]
    sweeps: Dict[str, Dict[str, object]] = {}
    for label in ("cold", "warm"):
        cache = ResultCache(cache_dir, validation_timeout=timeout)
        runner = BatchRunner(
            cache=cache, jobs=jobs, timeout=timeout, bound=bound
        )
        report = runner.run(items)
        sweeps[label] = {**report.to_json(), "cache_stats": cache.stats()}
        _log.info(
            f"serve {label:5s} {len(report.items)} items in {report.wall_s:.3f}s: "
            f"{report.cache_hits} hits / {report.cache_misses} misses, "
            f"verdicts {'OK' if report.all_correct else 'WRONG'}"
        )

    cold, warm = sweeps["cold"], sweeps["warm"]
    cold_verdicts = {
        (row["design"], row["property"]): row["status"] for row in cold["items"]
    }
    warm_verdicts = {
        (row["design"], row["property"]): row["status"] for row in warm["items"]
    }
    verdicts_agree = cold_verdicts == warm_verdicts
    warm_all_hits = all(row["source"] == "cache" for row in warm["items"])
    hits_revalidated = all(row["validated"] for row in warm["items"])
    speedup = cold["wall_s"] / max(1e-9, warm["wall_s"])
    summary = {
        "items": len(cold["items"]),
        "cold_wall_s": cold["wall_s"],
        "warm_wall_s": warm["wall_s"],
        "warm_speedup": round(speedup, 2),
        "verdicts_agree": verdicts_agree,
        "warm_all_hits": warm_all_hits,
        "all_hits_revalidated": hits_revalidated,
        "all_verdicts_correct": bool(
            cold["all_correct"] and warm["all_correct"]
        ),
    }
    print(
        f"serve sweep: warm {summary['warm_speedup']}x faster, "
        f"all hits {'OK' if warm_all_hits else 'FAIL'}, "
        f"agreement {'OK' if verdicts_agree else 'FAIL'}"
    )
    return {"sweeps": sweeps, "summary": summary}


def run_ladder_section(
    names: List[str], bound: int, timeout: float, jobs: Optional[int]
) -> List[Dict]:
    """Race the budget ladder against the all-at-once fan-out per design."""
    from repro.engines.portfolio import default_budget_ladder, learn_priors

    priors = learn_priors()
    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        task = VerificationTask.benchmark(name)
        fanout = PortfolioRunner(
            configs=default_portfolio_configs(bound=bound),
            timeout=timeout,
            max_workers=jobs,
            expected=benchmark.expected,
        ).run(task)
        ladder = PortfolioRunner(
            ladder=default_budget_ladder(
                bound=bound, timeout=timeout, priors=priors
            ),
            timeout=timeout,
            max_workers=jobs,
            expected=benchmark.expected,
        ).run(task)
        ladder_detail = ladder.detail.get("ladder", {})
        decided_rung = ladder_detail.get("decided_rung")
        rung_rows = ladder_detail.get("rungs", [])
        decided_tier = (
            rung_rows[decided_rung]["tier"]
            if decided_rung is not None and decided_rung < len(rung_rows)
            else None
        )
        # the CPU gate only applies where the *cheap* tier decided: a design
        # escalated to the provers pays the cheap rung's probe as overhead
        cheap_decided = decided_tier == "cheap"
        row = {
            "benchmark": name,
            "expected": benchmark.expected,
            "fanout": {
                "status": fanout.status,
                "winner": fanout.winner,
                "wall_s": round(fanout.runtime, 6),
                "cpu_s": fanout.detail.get("cpu_s"),
            },
            "ladder": {
                "status": ladder.status,
                "winner": ladder.winner,
                "wall_s": round(ladder.runtime, 6),
                "cpu_s": ladder.detail.get("cpu_s"),
                "decided_rung": decided_rung,
                "decided_tier": decided_tier,
                "rungs": rung_rows,
            },
            "verdicts_match": fanout.status == ladder.status,
            "cheap_rung_decided": cheap_decided,
            "ladder_cpu_within_fanout": (
                ladder.detail.get("cpu_s", 0.0)
                <= fanout.detail.get("cpu_s", 0.0)
            ),
        }
        rows.append(row)
        _log.info(
            f"ldr  {name:12s} ladder={row['ladder']['wall_s']:.3f}s/"
            f"cpu {row['ladder']['cpu_s']}s rung={decided_rung} "
            f"fanout={row['fanout']['wall_s']:.3f}s/cpu {row['fanout']['cpu_s']}s "
            f"{'OK' if row['verdicts_match'] else 'MISMATCH'}"
        )
    return rows


def run_minimization_section(
    cases: List[Tuple[str, str]], timeout: float, repeats: int = 3
) -> List[Dict]:
    """Shrink SAFE certificates and time validation before/after.

    Validation is timed as the fastest of ``repeats`` passes — a single
    validator run is a few milliseconds, so one-shot timings are noise.
    """
    from repro.cache import minimize_certificate
    from repro.certs import validate_certificate

    def timed_validation(system, certificate):
        best = float("inf")
        validation = None
        for _ in range(max(1, repeats)):
            t0 = time.monotonic()
            validation = validate_certificate(system, certificate)
            best = min(best, time.monotonic() - t0)
        return validation, best

    rows = []
    for name, engine_name in cases:
        benchmark = get_benchmark(name)
        system = benchmark.load()
        result = make_engine(engine_name, system).verify(timeout=timeout)
        if result.status != Status.SAFE or result.certificate is None:
            rows.append(
                {"benchmark": name, "engine": engine_name, "status": result.status}
            )
            continue
        original_validation, validate_original_s = timed_validation(
            system, result.certificate
        )
        minimization = minimize_certificate(system, result.certificate)
        minimized_validation, validate_minimized_s = timed_validation(
            system, minimization.certificate
        )
        row = {
            "benchmark": name,
            "engine": engine_name,
            "status": result.status,
            "certificate_kind": getattr(result.certificate, "kind", None),
            "original_conjuncts": minimization.original_size,
            "minimized_conjuncts": minimization.size,
            "minimize_checks": minimization.checks,
            "validate_original_s": round(validate_original_s, 6),
            "validate_minimized_s": round(validate_minimized_s, 6),
            "both_validate": bool(
                original_validation.ok and minimized_validation.ok
            ),
            "validation_speedup": round(
                validate_original_s / max(1e-9, validate_minimized_s), 2
            ),
        }
        rows.append(row)
        _log.info(
            f"min  {name:12s} {engine_name:5s} {minimization.original_size} -> "
            f"{minimization.size} conjuncts, validate "
            f"{validate_original_s * 1e3:.1f}ms -> {validate_minimized_s * 1e3:.1f}ms "
            f"{'OK' if row['both_validate'] else 'FAIL'}"
        )
    return rows


def write_serve_report(
    sweep_data: Dict[str, object],
    ladder_rows: List[Dict],
    minimize_rows: List[Dict],
    out: str,
    bound: int,
    timeout: float,
) -> bool:
    """Write ``BENCH_serve.json``; True when every serving target is met."""
    sweep_summary = dict(sweep_data["summary"])
    cheap_rows = [row for row in ladder_rows if row.get("cheap_rung_decided")]
    ladder_ok = all(
        row["ladder_cpu_within_fanout"] for row in cheap_rows
    ) and all(row["verdicts_match"] for row in ladder_rows)
    minimized = [
        row
        for row in minimize_rows
        if row.get("minimized_conjuncts") is not None
        and row["minimized_conjuncts"] < row["original_conjuncts"]
    ]
    minimize_ok = all(row["both_validate"] for row in minimized) and (
        not minimized
        or sum(row["validate_minimized_s"] for row in minimized)
        <= sum(row["validate_original_s"] for row in minimized)
    )
    ok = bool(
        sweep_summary["verdicts_agree"]
        and sweep_summary["warm_all_hits"]
        and sweep_summary["all_hits_revalidated"]
        and sweep_summary["all_verdicts_correct"]
        and sweep_summary["warm_speedup"] >= 3.0
        and ladder_ok
        and minimize_ok
    )
    report = {
        "meta": {
            "tool": "repro.tools.bench --serve",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "bound": bound,
            "timeout_s": timeout,
        },
        "sweeps": sweep_data["sweeps"],
        "ladder_vs_fanout": ladder_rows,
        "minimization": minimize_rows,
        "summary": {
            **sweep_summary,
            "ladder_designs": len(ladder_rows),
            "cheap_rung_decided": len(cheap_rows),
            "ladder_cpu_within_fanout_on_cheap_decides": ladder_ok,
            "certificates_minimized": len(minimized),
            "minimized_validate_faster": minimize_ok,
            "serving_targets_met": ok,
        },
    }
    write_json_atomic(out, report)
    print(
        f"\nwrote {out}: warm sweep {sweep_summary['warm_speedup']}x "
        f"({'all hits' if sweep_summary['warm_all_hits'] else 'MISSES'}), "
        f"ladder CPU {'OK' if ladder_ok else 'FAIL'} on "
        f"{len(cheap_rows)} cheap-decided design(s), "
        f"minimization {'OK' if minimize_ok else 'FAIL'} "
        f"({len(minimized)} certificate(s) shrunk) -> "
        f"{'OK' if ok else 'FAIL'}"
    )
    return ok


def compact_incremental_rows(rows: List[Dict]) -> List[Dict]:
    """Aggregate per-bound profiles into one row per (design, mode).

    The full per-bound data of ``BENCH_incremental.json`` runs to thousands
    of lines; the summary keeps, per mode, the bound count, total wall
    clock and the summed headline solver counters (``--full`` restores the
    raw rows).
    """
    compact = []
    for row in rows:
        new_row = dict(row)
        modes = {}
        for mode, profile in row.get("modes", {}).items():
            new_profile = dict(profile)
            per_bound = new_profile.pop("per_bound", None)
            if per_bound:
                totals: Dict[str, int] = {}
                for entry in per_bound:
                    for key in ("conflicts", "propagations", "decisions"):
                        totals[key] = totals.get(key, 0) + entry["stats"].get(key, 0)
                new_profile["per_bound_summary"] = {
                    "bounds": len(per_bound),
                    "wall_s": round(
                        sum(entry["wall_s"] for entry in per_bound), 6
                    ),
                    **totals,
                }
            modes[mode] = new_profile
        if modes:
            new_row["modes"] = modes
        compact.append(new_row)
    return compact


# ---------------------------------------------------------------------------
# --faults: seeded chaos sweeps through the supervised batch runner
# ---------------------------------------------------------------------------

#: designs for the chaos sweeps: one fast refutation, one fast proof — small
#: enough that a sweep with kills, hangs and retries still finishes quickly
DEFAULT_FAULTS_BENCHMARKS = ["daio", "buffalloc"]

#: per-kind firing rates of a chaos sweep; destructive kinds are frequent
#: enough that every sweep exercises them, but ``first_attempt_only`` plans
#: let supervised retries run clean so the sweep still converges
CHAOS_RATES = {
    "crash": 0.35,
    "slow-start": 0.5,
    "worker-kill": 0.35,
    "hang": 0.25,
    "hang-hard": 0.25,
    "spawn-fail": 0.15,
    "cert-forge": 0.3,
    "cache-corrupt": 0.5,
    "cache-truncate": 0.5,
}


def _reap_leaked_children(grace_s: float = 5.0) -> List[int]:
    """Join any still-registered child processes; return leaked PIDs."""
    import multiprocessing

    deadline = time.monotonic() + grace_s
    for child in multiprocessing.active_children():
        child.join(max(0.0, deadline - time.monotonic()))
    return [
        child.pid
        for child in multiprocessing.active_children()
        if child.is_alive()
    ]


def run_chaos_sweep(
    seed: int,
    names: List[str],
    bound: int,
    timeout: float,
    jobs: Optional[int],
    cache_dir: str,
) -> Dict[str, object]:
    """One seeded fault-injection sweep through the certified batch runner.

    The sweep must end with a definitive, independently validated verdict
    for every item despite injected kills, crashes, wedges, spawn failures,
    forged certificates and cache tampering — and must leak no processes.
    After the sweep, ``fsck`` heals whatever the tamper faults left in the
    cache; a second ``fsck`` must come back clean.
    """
    from repro.cache import ResultCache
    from repro.engines.batch import BatchItem, BatchRunner
    from repro.faults.injection import plan_installed
    from repro.faults.plan import FaultPlan

    items = [BatchItem.benchmark(name) for name in names]
    plan = FaultPlan(seed=seed, rates=dict(CHAOS_RATES))
    start = time.perf_counter()
    with plan_installed(plan):
        cache = ResultCache(cache_dir, validation_timeout=timeout)
        runner = BatchRunner(
            cache=cache,
            jobs=jobs,
            timeout=timeout,
            bound=bound,
            certify=True,
            attempt_timeout=max(3.0, timeout / 4.0),
        )
        report = runner.run(items)
    wall = time.perf_counter() - start
    leaked = _reap_leaked_children()

    rows = report.to_json()["items"]
    all_definitive = all(row["status"] in Status.DEFINITIVE for row in rows)

    # heal the cache the tamper faults mangled, then prove it stays healed
    heal = ResultCache(cache_dir, validation_timeout=timeout)
    fsck_first = heal.fsck()
    fsck_second = heal.fsck()

    ok = (
        report.all_correct
        and all_definitive
        and not leaked
        and bool(fsck_second["clean"])
    )
    row = {
        "seed": seed,
        "wall_s": round(wall, 6),
        "items": [
            {
                "design": item["design"],
                "property": item["property"],
                "status": item["status"],
                "source": item["source"],
                "attempts": len((item.get("supervision") or {}).get("attempts", [])) or 1,
            }
            for item in rows
        ],
        "driver_faults_fired": list(plan.fired),
        "retries": report.retries,
        "degraded": report.degraded,
        "all_correct": report.all_correct,
        "all_definitive": all_definitive,
        "leaked_pids": leaked,
        "fsck": {
            "first": {
                "checked": fsck_first["checked"],
                "pruned": len(fsck_first["pruned"]),
                "quarantined": len(fsck_first["quarantined"]),
            },
            "second_clean": bool(fsck_second["clean"]),
        },
        "ok": ok,
    }
    _log.info(
        f"chaos seed {seed}: {len(rows)} items in {wall:.3f}s, "
        f"{report.retries} retries, {report.degraded} degraded, "
        f"verdicts {'OK' if report.all_correct else 'WRONG'}"
        f"{'' if all_definitive else ' (non-definitive!)'}, "
        f"fsck pruned {row['fsck']['first']['pruned']} / quarantined "
        f"{row['fsck']['first']['quarantined']}, "
        f"leaked {leaked or 'none'}"
    )
    return row


def run_hang_interrupt_demo(timeout: float) -> Dict[str, object]:
    """Wedge a SAT solve in-process; the cooperative deadline must break it.

    A ``hang``-only plan arms the solver wedge inside a driver-process
    ``verify`` call.  The wedge spins until the engine's armed deadline
    passes, the next checkpoint raises ``SolverInterrupted``, and the engine
    returns a TIMEOUT verdict — the process itself must survive (same PID,
    no exception), which is the acceptance path for hangs injected into
    in-process (degraded) execution.
    """
    from repro.faults.injection import plan_installed
    from repro.faults.plan import HANG, FaultPlan

    system = get_benchmark("buffalloc").load()
    budget = min(2.0, timeout)
    pid = os.getpid()
    start = time.perf_counter()
    with plan_installed(FaultPlan(seed=0, rates={HANG: 1.0})):
        engine = make_engine("k-induction", system, max_k=16)
        result = engine.verify(timeout=budget)
    wall = time.perf_counter() - start
    row = {
        "design": "buffalloc",
        "engine": "k-induction",
        "budget_s": budget,
        "wall_s": round(wall, 6),
        "status": str(result.status),
        "pid_preserved": os.getpid() == pid,
        "interrupted_within_budget": wall < budget + 2.0,
        "ok": (
            os.getpid() == pid
            and wall < budget + 2.0
            and result.status not in (Status.SAFE, Status.UNSAFE)
        ),
    }
    _log.info(
        f"hang demo: wedged k-induction on buffalloc interrupted after "
        f"{wall:.3f}s (budget {budget:.1f}s), verdict {result.status}, "
        f"process survived: {row['pid_preserved']}"
    )
    return row


def write_faults_report(
    sweeps: List[Dict],
    hang_demo: Dict[str, object],
    out: str,
    bound: int,
    timeout: float,
) -> bool:
    all_ok = all(row["ok"] for row in sweeps) and bool(hang_demo["ok"])
    report = {
        "config": {
            "mode": "faults",
            "cpus": os.cpu_count(),
            "bound": bound,
            "timeout_s": timeout,
            "rates": CHAOS_RATES,
        },
        # "chaos_sweeps", not "sweeps": the serve report uses "sweeps" for a
        # mapping and learn_priors scans every BENCH_*.json it finds
        "chaos_sweeps": sweeps,
        "hang_interrupt_demo": hang_demo,
        "summary": {
            "sweeps": len(sweeps),
            "sweeps_ok": sum(1 for row in sweeps if row["ok"]),
            "total_retries": sum(row["retries"] for row in sweeps),
            "total_degraded": sum(row["degraded"] for row in sweeps),
            "zero_wrong_verdicts": all(row["all_correct"] for row in sweeps),
            "all_verdicts_definitive": all(
                row["all_definitive"] for row in sweeps
            ),
            "zero_leaked_processes": all(
                not row["leaked_pids"] for row in sweeps
            ),
            "caches_healed": all(
                row["fsck"]["second_clean"] for row in sweeps
            ),
            "hang_interrupted_in_process": bool(hang_demo["ok"]),
            "all_ok": all_ok,
        },
    }
    write_json_atomic(out, report)
    summary = report["summary"]
    print(
        f"\nwrote {out}: {summary['sweeps_ok']}/{summary['sweeps']} chaos "
        f"sweeps clean ({summary['total_retries']} retries, "
        f"{summary['total_degraded']} degraded), verdicts "
        f"{'all correct+definitive' if summary['zero_wrong_verdicts'] and summary['all_verdicts_definitive'] else 'NOT CLEAN'}, "
        f"leaks {'none' if summary['zero_leaked_processes'] else 'LEAKED'}, "
        f"hang demo {'ok' if summary['hang_interrupted_in_process'] else 'FAILED'}"
    )
    return all_ok


# ---------------------------------------------------------------------------
# --serve-soak: chaos soak against a live repro-serve server
# ---------------------------------------------------------------------------

#: chaos rates installed *in the soaked server* (engine-site faults retried
#: under supervision plus the journal-tear); the client-disconnect draws run
#: in the harness process against distinct per-design sites
SOAK_SERVER_RATES = (
    "crash=0.25,slow-start=0.3,worker-kill=0.25,cert-forge=0.25,"
    "journal-torn=0.2"
)
SOAK_COALESCE_DESIGN = "mac16"
SOAK_COALESCE_CLIENTS = 8
SOAK_DISCONNECT_DESIGNS = ["proc3", "rcu", "fifo", "iqueue", "arbiter", "barrel16"]


def _start_soak_server(args_list: List[str]) -> "subprocess.Popen":
    """Launch one server subprocess in its own session (= process group).

    The fresh session is the leak oracle: after a drain or a kill, every
    process the server ever forked must be gone, which
    :func:`_soak_group_gone` checks by signalling the whole group.
    """
    import subprocess
    import sys

    return subprocess.Popen(
        [sys.executable, "-m", "repro.tools.serve_cli", *args_list],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )


def _soak_group_gone(pgid: int, grace_s: float = 20.0) -> bool:
    """True when no process of the server's group survives within the grace."""
    import signal as signal_module

    deadline = time.monotonic() + grace_s
    while time.monotonic() < deadline:
        try:
            os.killpg(pgid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:  # pragma: no cover - zombie group
            pass
        time.sleep(0.1)
    try:
        os.killpg(pgid, signal_module.SIGKILL)
    except (ProcessLookupError, PermissionError):
        return True
    return False


def _soak_wait_socket(path: str, timeout_s: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return True
        time.sleep(0.05)
    return False


def _soak_classify(design: str, reply: Dict[str, object]) -> str:
    """Apply the WRONG classification to a server reply (suite ground truth)."""
    status = str(reply.get("status", Status.ERROR))
    expected = get_benchmark(design).expected
    if status in Status.DEFINITIVE and status != expected:
        return Status.WRONG
    return status


def run_serve_soak(
    seed: int, timeout: float, workdir: str
) -> Dict[str, object]:
    """The full soak: graceful chaos run, SIGKILL mid-flight, recovery run.

    Run A starts a chaos-seeded server and drives it through the acceptance
    scenarios — K-client coalescing, a warm-hit latency sample, an
    over-capacity flood, seeded client disconnects, a too-tight deadline —
    then drains it gracefully.  Run B accepts slow requests and SIGKILLs
    the whole server group mid-flight, leaving the journal with open
    entries.  Run C restarts on that journal and must NACK every one.
    Every gate lands in the returned row; :func:`write_server_report`
    aggregates them.
    """
    import statistics
    import signal as signal_module

    from repro.faults.injection import client_disconnect, plan_installed
    from repro.faults.plan import CLIENT_DISCONNECT, FaultPlan
    from repro.obs.export import lint_trace, load_trace
    from repro.serve.client import ServeClient, ServeError
    from repro.serve.journal import RequestJournal

    sock = os.path.join(workdir, "serve.sock")
    cache_dir = os.path.join(workdir, "cache")
    journal_a = os.path.join(workdir, "journal_a.jsonl")
    trace_a = os.path.join(workdir, "trace_a.jsonl")
    row: Dict[str, object] = {"seed": seed}

    # ----- run A: chaos-seeded serving until graceful drain --------------
    server = _start_soak_server([
        "--socket", sock, "--cache-dir", cache_dir,
        "--journal", journal_a, "--trace", trace_a,
        "--max-queue", "4", "--workers", "1:2",
        "--target-latency", "5",
        "--default-deadline", str(timeout),
        "--attempt-timeout", str(max(3.0, timeout / 4.0)),
        "--certify",
        "--chaos", str(seed), "--chaos-rates", SOAK_SERVER_RATES,
        "-q",
    ])
    pgid_a = server.pid
    if not _soak_wait_socket(sock):
        server.kill()
        row["error"] = "run A server never opened its socket"
        row["ok"] = False
        return row

    wrong: List[str] = []

    _log.verbose(f"soak seed {seed}: run A up (pid {server.pid})")

    # A.1 coalescing: K concurrent identical cold queries, one computation
    import threading

    barrier = threading.Barrier(SOAK_COALESCE_CLIENTS)
    coalesce_replies: List[Dict[str, object]] = []
    coalesce_accepts: List[Dict[str, object]] = []
    lock = threading.Lock()

    def coalesce_client() -> None:
        with ServeClient(socket_path=sock) as client:
            barrier.wait()
            accepted = client.submit(
                {"design": SOAK_COALESCE_DESIGN, "bound": 96,
                 "deadline_s": max(60.0, timeout)}
            )
            reply = client.result(accepted["id"])
            with lock:
                coalesce_accepts.append(accepted)
                coalesce_replies.append(reply)

    threads = [
        threading.Thread(target=coalesce_client)
        for _ in range(SOAK_COALESCE_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=max(120.0, timeout * 3))
    with ServeClient(socket_path=sock) as client:
        stats_after_k = client.stats()
    computations_k = stats_after_k["counters"]["computations"]
    coalesced_k = sum(1 for a in coalesce_accepts if a.get("coalesced"))
    for reply in coalesce_replies:
        if _soak_classify(SOAK_COALESCE_DESIGN, reply) == Status.WRONG:
            wrong.append(f"{SOAK_COALESCE_DESIGN}: {reply.get('status')}")
    coalesce_ok = (
        len(coalesce_replies) == SOAK_COALESCE_CLIENTS
        and computations_k == 1
        and coalesced_k == SOAK_COALESCE_CLIENTS - 1
    )
    row["coalesce"] = {
        "clients": SOAK_COALESCE_CLIENTS,
        "computations": computations_k,
        "coalesced": coalesced_k,
        "ratio": round(coalesced_k / SOAK_COALESCE_CLIENTS, 3),
        "ok": coalesce_ok,
    }

    _log.verbose("soak: coalesce phase done")

    # A.2 warm path: repeated hits served from the validated-cert cache
    warm_latencies: List[float] = []
    warm_sources: List[str] = []
    with ServeClient(socket_path=sock) as client:
        for _ in range(20):
            t0 = time.perf_counter()
            reply = client.verify(
                design=SOAK_COALESCE_DESIGN, bound=96,
                deadline_s=max(60.0, timeout),
            )
            warm_latencies.append(time.perf_counter() - t0)
            warm_sources.append(str(reply.get("source")))
            if _soak_classify(SOAK_COALESCE_DESIGN, reply) == Status.WRONG:
                wrong.append(f"warm {SOAK_COALESCE_DESIGN}: {reply.get('status')}")
    warm_p50 = statistics.median(warm_latencies)
    row["warm"] = {
        "queries": len(warm_latencies),
        "all_cache_hits": all(s == "cache" for s in warm_sources),
        "p50_s": round(warm_p50, 6),
        "max_s": round(max(warm_latencies), 6),
        "ok": all(s == "cache" for s in warm_sources) and warm_p50 <= 2.0,
    }

    _log.verbose("soak: warm phase done")

    # A.3 flood: distinct keys past the queue cap; overload must be explicit
    flood_targets = [
        (name, rep)
        for rep in ("word", "bit")
        for name in benchmark_names()
    ]
    flood_accepted: List[Tuple[str, str]] = []
    flood_rejected = 0
    with ServeClient(socket_path=sock) as client:
        for name, rep in flood_targets:
            try:
                accepted = client.submit(
                    {"design": name, "representation": rep, "bound": 64,
                     "deadline_s": min(20.0, timeout), "priority": "bulk"}
                )
                flood_accepted.append((name, accepted["id"]))
            except ServeError:
                flood_rejected += 1
        for name, request_id in flood_accepted:
            reply = client.result(request_id)
            if _soak_classify(name, reply) == Status.WRONG:
                wrong.append(f"flood {name}: {reply.get('status')}")
    row["flood"] = {
        "submitted": len(flood_targets),
        "accepted": len(flood_accepted),
        "rejected_overloaded": flood_rejected,
        "ok": flood_rejected >= 1 and len(flood_accepted) >= 1,
    }

    _log.verbose("soak: flood phase done")

    # A.4 seeded client disconnects: hang up mid-request, server must not
    disconnects = 0
    with plan_installed(FaultPlan(seed=seed, rates={CLIENT_DISCONNECT: 0.5})):
        for name in SOAK_DISCONNECT_DESIGNS:
            client = ServeClient(socket_path=sock)
            try:
                accepted = client.submit(
                    {"design": name, "bound": 64,
                     "deadline_s": min(30.0, timeout)}
                )
            except ServeError:
                client.close()
                continue
            if client_disconnect(name):
                disconnects += 1
                client.close()  # vanish without reading the result
            else:
                reply = client.result(accepted["id"])
                if _soak_classify(name, reply) == Status.WRONG:
                    wrong.append(f"disconnect {name}: {reply.get('status')}")
                client.close()
    row["disconnects"] = {"fired": disconnects}

    _log.verbose("soak: disconnect phase done")

    # A.5 deadline: a too-tight budget must come back, on time, not wedge
    t0 = time.perf_counter()
    with ServeClient(socket_path=sock) as client:
        reply = client.verify(
            design="huffman_dec", representation="bit", bound=128,
            deadline_s=0.2,
        )
    deadline_wall = time.perf_counter() - t0
    row["deadline"] = {
        "status": reply.get("status"),
        "wall_s": round(deadline_wall, 6),
        "ok": (
            deadline_wall <= 0.2 + 15.0
            and _soak_classify("huffman_dec", reply) != Status.WRONG
        ),
    }

    _log.verbose("soak: deadline phase done")

    # A.6 graceful drain: everything accepted was answered or cancelled
    with ServeClient(socket_path=sock) as client:
        final_stats = client.stats()
        client.drain()
    drain_rc = server.wait(timeout=max(120.0, timeout * 3))
    counters = final_stats["counters"]
    accounting_ok = (
        counters["accepted"] == counters["answered"] + counters["cancelled"]
    )
    group_a_gone = _soak_group_gone(pgid_a)
    trace_problems: List[str] = []
    try:
        trace_problems = lint_trace(load_trace(trace_a))
    except (OSError, ValueError) as error:
        trace_problems = [str(error)]
    row["run_a"] = {
        "counters": counters,
        "throttle": final_stats["throttle"],
        "accounting_ok": accounting_ok,
        "drain_exit_code": drain_rc,
        "journal_torn_injected": final_stats.get("journal", {}).get(
            "torn_injected", 0
        ),
        "no_leaked_processes": group_a_gone,
        "trace_problems": trace_problems,
        "trace_clean": not trace_problems,
    }
    journal_a_open = len(RequestJournal(journal_a).replay().open_requests)
    torn_injected = int(row["run_a"]["journal_torn_injected"])
    # under journal-torn chaos a drained journal may legitimately keep open
    # accepts: a tear eats the tail of the record just written AND merges the
    # following append onto the same garbage line, so each tear can destroy up
    # to two records — a destroyed *close* orphans its accept.  That is the
    # at-least-once contract (a restart would NACK, never silently lose), so
    # the gate is "opens explainable by tears", and exactly zero when no tear
    # fired.
    journal_a_ok = journal_a_open <= 2 * torn_injected
    row["run_a"]["journal_open_after_drain"] = journal_a_open
    row["run_a"]["journal_open_explained_by_tears"] = journal_a_ok

    _log.verbose("soak: run A drained")

    # ----- run B: SIGKILL mid-flight leaves the journal open -------------
    journal_b = os.path.join(workdir, "journal_b.jsonl")
    cache_b = os.path.join(workdir, "cache_b")
    if os.path.exists(sock):
        os.unlink(sock)
    server_b = _start_soak_server([
        "--socket", sock, "--cache-dir", cache_b,
        "--journal", journal_b,
        "--max-queue", "8", "--workers", "1:2",
        "--default-deadline", "120", "-q",
    ])
    pgid_b = server_b.pid
    kill_row: Dict[str, object] = {}
    if not _soak_wait_socket(sock):
        server_b.kill()
        kill_row["error"] = "run B server never opened its socket"
    else:
        client = ServeClient(socket_path=sock)
        client.submit({"design": "mac16", "representation": "bit",
                       "bound": 120, "deadline_s": 120})
        client.submit({"design": "huffman_dec", "representation": "bit",
                       "bound": 120, "deadline_s": 120})
        time.sleep(0.5)
        try:
            os.killpg(pgid_b, signal_module.SIGKILL)
        except ProcessLookupError:
            pass
        client.close()
        server_b.wait(timeout=30)
    kill_row["no_survivors"] = _soak_group_gone(pgid_b)
    open_after_kill = RequestJournal(journal_b).replay().open_requests
    kill_row["journal_open_after_kill"] = len(open_after_kill)
    kill_row["ok"] = (
        kill_row.get("error") is None
        and kill_row["no_survivors"]
        and len(open_after_kill) >= 1
    )
    row["run_b"] = kill_row

    _log.verbose("soak: run B killed")

    # ----- run C: restart on the killed journal, NACK the orphans --------
    trace_c = os.path.join(workdir, "trace_c.jsonl")
    # a SIGKILLed server cannot unlink its socket; clear the stale file so
    # the bind (and our readiness poll) see a fresh one
    if os.path.exists(sock):
        os.unlink(sock)
    server_c = _start_soak_server([
        "--socket", sock, "--cache-dir", cache_b,
        "--journal", journal_b, "--recover", "nack",
        "--trace", trace_c,
        "--max-queue", "8", "--workers", "1:2", "-q",
    ])
    pgid_c = server_c.pid
    restart_row: Dict[str, object] = {}
    if not _soak_wait_socket(sock):
        server_c.kill()
        restart_row["error"] = "run C server never opened its socket"
        restart_row["ok"] = False
    else:
        with ServeClient(socket_path=sock) as client:
            stats_c = client.stats()
            reply = client.verify(design="daio", deadline_s=max(60.0, timeout))
            if _soak_classify("daio", reply) == Status.WRONG:
                wrong.append(f"post-restart daio: {reply.get('status')}")
            client.drain()
        rc_c = server_c.wait(timeout=max(120.0, timeout * 3))
        restart_row["recovered_nacked"] = stats_c["counters"]["recovered_nacked"]
        restart_row["recovery"] = stats_c["recovery"]
        restart_row["post_restart_status"] = reply.get("status")
        restart_row["drain_exit_code"] = rc_c
        restart_row["no_leaked_processes"] = _soak_group_gone(pgid_c)
        try:
            problems_c = lint_trace(load_trace(trace_c))
        except (OSError, ValueError) as error:
            problems_c = [str(error)]
        restart_row["trace_problems"] = problems_c
        restart_row["journal_open_after_drain"] = len(
            RequestJournal(journal_b).replay().open_requests
        )
        restart_row["ok"] = (
            restart_row["recovered_nacked"] == len(open_after_kill)
            and rc_c == 0
            and restart_row["no_leaked_processes"]
            and not problems_c
            and restart_row["journal_open_after_drain"] == 0
        )
    row["run_c"] = restart_row

    row["_trace_a_path"] = trace_a
    row["wrong_verdicts"] = wrong
    row["ok"] = (
        coalesce_ok
        and row["warm"]["ok"]
        and row["flood"]["ok"]
        and row["deadline"]["ok"]
        and accounting_ok
        and drain_rc == 0
        and group_a_gone
        and not trace_problems
        and journal_a_ok
        and not wrong
        and bool(kill_row.get("ok"))
        and bool(restart_row.get("ok"))
    )
    _log.info(
        f"serve soak seed {seed}: coalesce {coalesced_k}/{SOAK_COALESCE_CLIENTS} "
        f"({computations_k} computation), warm p50 {warm_p50*1000:.1f}ms, "
        f"{flood_rejected} overload rejection(s), {disconnects} disconnect(s), "
        f"accounting {'ok' if accounting_ok else 'BROKEN'}, "
        f"kill left {len(open_after_kill)} journaled, "
        f"recovery nacked {restart_row.get('recovered_nacked', '?')}, "
        f"{'OK' if row['ok'] else 'FAILED'}"
    )
    return row


def write_server_report(
    soak: Dict[str, object], out: str, timeout: float, trace_out: Optional[str]
) -> bool:
    """Write ``BENCH_server.json``; True when every soak gate held."""
    trace_a_path = soak.pop("_trace_a_path", None)
    all_ok = bool(soak.get("ok"))
    report = {
        "config": {
            "mode": "serve-soak",
            "cpus": os.cpu_count(),
            "timeout_s": timeout,
            "seed": soak.get("seed"),
            "chaos_rates": SOAK_SERVER_RATES,
            "python": platform.python_version(),
        },
        "tool": "repro.tools.bench --serve-soak",
        "soak": soak,
        "summary": {
            "every_accept_resolved": bool(
                soak.get("run_a", {}).get("accounting_ok")
            ),
            "coalescing_ratio": soak.get("coalesce", {}).get("ratio"),
            "warm_p50_s": soak.get("warm", {}).get("p50_s"),
            "overload_rejections": soak.get("flood", {}).get(
                "rejected_overloaded"
            ),
            "zero_wrong_verdicts": not soak.get("wrong_verdicts"),
            "zero_leaked_processes": bool(
                soak.get("run_a", {}).get("no_leaked_processes")
            )
            and bool(soak.get("run_b", {}).get("no_survivors"))
            and bool(soak.get("run_c", {}).get("no_leaked_processes")),
            "traces_clean": bool(soak.get("run_a", {}).get("trace_clean"))
            and not soak.get("run_c", {}).get("trace_problems"),
            "journal_recovery_ok": bool(soak.get("run_b", {}).get("ok"))
            and bool(soak.get("run_c", {}).get("ok")),
            "all_ok": all_ok,
        },
    }
    write_json_atomic(out, report)
    if trace_out and isinstance(trace_a_path, str) and os.path.exists(trace_a_path):
        import shutil

        shutil.copyfile(trace_a_path, trace_out)
        print(f"server trace (run A) copied to {trace_out}")
    summary = report["summary"]
    print(
        f"\nwrote {out}: accept accounting "
        f"{'ok' if summary['every_accept_resolved'] else 'BROKEN'}, "
        f"coalescing {summary['coalescing_ratio']}, warm p50 "
        f"{summary['warm_p50_s']}s, {summary['overload_rejections']} overload "
        f"rejection(s), wrong verdicts "
        f"{'none' if summary['zero_wrong_verdicts'] else 'PRESENT'}, leaks "
        f"{'none' if summary['zero_leaked_processes'] else 'LEAKED'}, traces "
        f"{'clean' if summary['traces_clean'] else 'DIRTY'}, journal recovery "
        f"{'ok' if summary['journal_recovery_ok'] else 'FAILED'}"
    )
    return all_ok


# ---------------------------------------------------------------------------
# --fleet-soak: failover soak over a primary + hot standby + router fleet
# ---------------------------------------------------------------------------

#: chaos installed in each *member*: replication-link drops and heartbeat
#: blackouts must be absorbed, not amplified
FLEET_MEMBER_RATES = "repl-link-drop=0.25,heartbeat-blackout=0.15"
#: chaos installed in the *router*: reconnect attempts sporadically refused
FLEET_ROUTER_RATES = "router-partition=0.2"
#: phase-1 sanity sweep through the router (fast, definitive designs)
FLEET_SANITY_DESIGNS = ["daio", "rcu", "fifo", "iqueue", "arbiter", "tlc"]
#: phase-2 slow queries in flight when the primary is SIGKILLed
FLEET_SLOW_QUERIES = [
    {"design": "mac16", "representation": "word", "bound": 96},
    {"design": "mac16", "representation": "bit", "bound": 96},
    {"design": "huffman_enc", "representation": "word", "bound": 96},
    {"design": "huffman_dec", "representation": "word", "bound": 96},
]


def _start_fleet_router(args_list: List[str]) -> "subprocess.Popen":
    import subprocess
    import sys

    return subprocess.Popen(
        [sys.executable, "-m", "repro.tools.router_cli", *args_list],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )


def _fleet_reply_gate(
    design: str, reply: Dict[str, object], wrong: List[str], unvalidated: List[str]
) -> None:
    """Classify one reply against ground truth + the certification gate."""
    if _soak_classify(design, reply) == Status.WRONG:
        wrong.append(f"{design}: {reply.get('status')}")
    if (
        str(reply.get("status")) in Status.DEFINITIVE
        and reply.get("validated") is not True
    ):
        unvalidated.append(f"{design}: validated={reply.get('validated')!r}")


def run_fleet_soak(
    seed: int, timeout: float, workdir: str
) -> Dict[str, object]:
    """Fleet failover soak: two shards, a hot standby, a router, one SIGKILL.

    Topology: member ``box-a`` (primary, ``--sync-level sync``) streams its
    journal to hot standby ``box-a2`` (same certificate cache dir); member
    ``box-b`` serves the other shard solo; a ``repro-serve-router`` fronts
    both, with ``box-a2`` registered as box-a's failover address.  All four
    run as subprocesses in their own sessions (the leak oracle) with
    member/router chaos rates installed.

    Phase 1 drives a sanity sweep and a cross-client coalescing pair
    through the router under replication-link, heartbeat-blackout and
    router-partition faults.  Phase 2 submits slow queries, waits for them
    to be accepted (sync level: the standby already holds their journal
    records), SIGKILLs the primary's whole process group mid-computation,
    and requires every accepted request to be answered exactly once by the
    promoted standby or by failover routing — zero lost, zero duplicates.
    After a graceful fleet drain the surviving members' counters must
    balance (``accepted == answered + cancelled``), every definitive
    verdict must have been certificate-validated, no process group may
    survive, and the stitched cross-box trace must lint clean.
    """
    import signal as signal_module
    import threading

    from repro.obs.export import (
        lint_trace, load_trace, stitch_traces, write_trace_document,
    )
    from repro.serve.client import ServeClient, ServeError

    sock_a = os.path.join(workdir, "a.sock")
    sock_a2 = os.path.join(workdir, "a2.sock")
    sock_b = os.path.join(workdir, "b.sock")
    sock_router = os.path.join(workdir, "router.sock")
    cache_a = os.path.join(workdir, "cache_a")
    cache_b = os.path.join(workdir, "cache_b")
    trace_a2 = os.path.join(workdir, "trace_a2.jsonl")
    trace_b = os.path.join(workdir, "trace_b.jsonl")
    trace_router = os.path.join(workdir, "trace_router.jsonl")
    stitched_path = os.path.join(workdir, "trace_fleet.jsonl")
    row: Dict[str, object] = {"seed": seed}
    deadline_s = max(120.0, timeout * 3)

    primary = _start_soak_server([
        "--socket", sock_a, "--cache-dir", cache_a,
        "--journal", os.path.join(workdir, "a.journal"),
        "--server-id", "box-a", "--sync-level", "sync",
        "--workers", "1:2", "--max-queue", "16", "--certify",
        "--default-deadline", str(deadline_s),
        "--progress-interval", "1.0",
        "--chaos", str(seed), "--chaos-rates", FLEET_MEMBER_RATES, "-q",
    ])
    standby = _start_soak_server([
        "--socket", sock_a2, "--cache-dir", cache_a,
        "--journal", os.path.join(workdir, "a2.journal"),
        "--server-id", "box-a2", "--standby-of", f"unix:{sock_a}",
        "--takeover-after", "1.5", "--trace", trace_a2,
        "--workers", "1:2", "--max-queue", "16", "--certify",
        "--default-deadline", str(deadline_s),
        "--progress-interval", "1.0", "-q",
    ])
    solo = _start_soak_server([
        "--socket", sock_b, "--cache-dir", cache_b,
        "--journal", os.path.join(workdir, "b.journal"),
        "--server-id", "box-b", "--trace", trace_b,
        "--workers", "1:2", "--max-queue", "16", "--certify",
        "--default-deadline", str(deadline_s),
        "--progress-interval", "1.0",
        "--chaos", str(seed + 1), "--chaos-rates", FLEET_MEMBER_RATES, "-q",
    ])
    pgids = {"box-a": primary.pid, "box-a2": standby.pid, "box-b": solo.pid}
    if not all(_soak_wait_socket(s) for s in (sock_a, sock_a2, sock_b)):
        for proc in (primary, standby, solo):
            proc.kill()
        row["error"] = "a fleet member never opened its socket"
        row["ok"] = False
        return row

    router = _start_fleet_router([
        "--socket", sock_router,
        "--member", f"box-a=unix:{sock_a},standby=unix:{sock_a2}",
        "--member", f"box-b=unix:{sock_b}",
        "--heartbeat-interval", "0.25", "--trace", trace_router,
        "--chaos", str(seed), "--chaos-rates", FLEET_ROUTER_RATES, "-q",
    ])
    pgids["router"] = router.pid
    if not _soak_wait_socket(sock_router):
        for proc in (primary, standby, solo, router):
            proc.kill()
        row["error"] = "router never opened its socket"
        row["ok"] = False
        return row
    time.sleep(1.0)  # let the standby subscribe and the heartbeats settle

    wrong: List[str] = []
    unvalidated: List[str] = []
    _log.verbose(f"fleet soak seed {seed}: fleet up (router pid {router.pid})")

    # ----- phase 1: sanity sweep + cross-client coalescing under chaos ---
    progress_frames: List[str] = []
    with ServeClient(socket_path=sock_router, timeout=deadline_s) as client:
        client.on_progress = lambda frame: progress_frames.append(
            str(frame.get("kind"))
        )
        for design in FLEET_SANITY_DESIGNS:
            reply = client.verify(
                design=design, representation="word", bound=64,
                deadline_s=deadline_s,
            )
            _fleet_reply_gate(design, reply, wrong, unvalidated)

    barrier = threading.Barrier(2)
    pair_replies: List[Dict[str, object]] = []
    pair_lock = threading.Lock()

    def pair_client() -> None:
        with ServeClient(socket_path=sock_router, timeout=deadline_s) as c:
            barrier.wait()
            accepted = c.submit(
                {"design": "barrel16", "representation": "word", "bound": 80,
                 "deadline_s": deadline_s}
            )
            reply = c.result(accepted["id"])
            with pair_lock:
                pair_replies.append(reply)

    pair_threads = [threading.Thread(target=pair_client) for _ in range(2)]
    for thread in pair_threads:
        thread.start()
    for thread in pair_threads:
        thread.join(timeout=deadline_s)
    for reply in pair_replies:
        _fleet_reply_gate("barrel16", reply, wrong, unvalidated)
    with ServeClient(socket_path=sock_router, timeout=30.0) as client:
        router_status_mid = client.status()
    row["phase1"] = {
        "sanity_queries": len(FLEET_SANITY_DESIGNS),
        "pair_replies": len(pair_replies),
        "router_coalesced": router_status_mid["counters"]["coalesced"],
        "progress_frames_seen": len(progress_frames),
        "progress_kinds": sorted(set(progress_frames)),
        "ok": (
            len(pair_replies) == 2
            and len(progress_frames) >= 1
        ),
    }
    _log.verbose("fleet soak: phase 1 done")

    # ----- phase 2: SIGKILL the primary mid-computation ------------------
    killed_row: Dict[str, object] = {}
    results: Dict[str, Dict[str, object]] = {}
    result_lock = threading.Lock()
    submit_client = ServeClient(socket_path=sock_router, timeout=deadline_s)
    submitted: List[Tuple[str, str]] = []  # (design, request id)
    accepted_members: List[str] = []
    for query in FLEET_SLOW_QUERIES:
        accepted = submit_client.submit(dict(query, deadline_s=deadline_s))
        submitted.append((str(query["design"]), accepted["id"]))
        accepted_members.append(str(accepted.get("member", "?")))
    time.sleep(0.6)  # let the computations start on the primary
    try:
        os.killpg(pgids["box-a"], signal_module.SIGKILL)
    except ProcessLookupError:
        pass
    primary.wait(timeout=30)  # reap: a zombie would fool the leak oracle
    kill_t0 = time.monotonic()

    def read_result(design: str, request_id: str) -> None:
        reply = submit_client.result(request_id)
        with result_lock:
            results[request_id] = dict(reply, _design=design)

    # results come back in completion order on the one connection; read
    # them sequentially (the client parks out-of-order frames by id)
    reader_errors: List[str] = []
    for design, request_id in submitted:
        try:
            read_result(design, request_id)
        except (ServeError, OSError) as error:
            reader_errors.append(f"{request_id}: {error}")
    failover_wall = time.monotonic() - kill_t0
    submit_client.close()
    for reply in results.values():
        _fleet_reply_gate(str(reply["_design"]), reply, wrong, unvalidated)
    killed_row["submitted"] = len(submitted)
    killed_row["answered"] = len(results)
    killed_row["routed_to"] = sorted(set(accepted_members))
    killed_row["reader_errors"] = reader_errors
    killed_row["failover_wall_s"] = round(failover_wall, 3)
    killed_row["client_reconnects"] = submit_client.reconnects
    killed_row["zero_lost"] = len(results) == len(submitted)
    killed_row["zero_duplicates"] = len(results) == len(
        {rid for _, rid in submitted}
    )
    killed_row["primary_group_gone"] = _soak_group_gone(pgids["box-a"])
    killed_row["ok"] = (
        killed_row["zero_lost"]
        and killed_row["zero_duplicates"]
        and not reader_errors
        and killed_row["primary_group_gone"]
    )
    row["phase2_kill"] = killed_row
    _log.verbose(
        f"fleet soak: phase 2 done ({len(results)}/{len(submitted)} answered "
        f"{failover_wall:.1f}s after SIGKILL)"
    )

    # ----- drain: accounting on the survivors, then shut the fleet down --
    member_counters: Dict[str, Dict[str, object]] = {}
    accounting_ok = True
    takeover_seen = False
    for name, sock in (("box-a2", sock_a2), ("box-b", sock_b)):
        try:
            with ServeClient(
                socket_path=sock, timeout=30.0, reconnect=False
            ) as client:
                status = client.status()
                client.drain()
        except (ServeError, OSError) as error:
            member_counters[name] = {"error": str(error)}
            accounting_ok = False
            continue
        counters = status["counters"]
        member_counters[name] = {
            "role": status.get("role"),
            "accepted": counters["accepted"],
            "answered": counters["answered"],
            "cancelled": counters["cancelled"],
            "takeovers": counters.get("takeovers", 0),
            "takeover_requeued": counters.get("takeover_requeued", 0),
            "wedged_kills": counters.get("wedged_kills", 0),
            "heartbeats": counters.get("heartbeats", 0),
            "heartbeats_blacked_out": counters.get("heartbeats_blacked_out", 0),
            "repl_link_drops": (status.get("replication") or {}).get(
                "link_drops", 0
            ),
            "balanced": counters["accepted"]
            == counters["answered"] + counters["cancelled"],
        }
        accounting_ok = accounting_ok and bool(
            member_counters[name]["balanced"]
        )
        if counters.get("takeovers"):
            takeover_seen = True
    row["members"] = member_counters
    row["accounting_ok"] = accounting_ok
    row["takeover_seen"] = takeover_seen

    try:
        with ServeClient(
            socket_path=sock_router, timeout=30.0, reconnect=False
        ) as client:
            router_final = client.status()
            client.drain()
        row["router"] = {
            "counters": router_final["counters"],
            "members": [
                {k: m[k] for k in ("name", "healthy", "connects", "partitions",
                                   "resubmitted")}
                for m in router_final["members"]
            ],
        }
    except (ServeError, OSError) as error:
        row["router"] = {"error": str(error)}

    exits = {}
    for name, proc in (("box-a2", standby), ("box-b", solo), ("router", router)):
        try:
            exits[name] = proc.wait(timeout=deadline_s)
        except Exception:  # noqa: BLE001 - timeout: count it as a leak
            proc.kill()
            exits[name] = None
    row["drain_exit_codes"] = exits
    leaks = {
        name: not _soak_group_gone(pgid) for name, pgid in pgids.items()
    }
    row["leaked_groups"] = {name: leaked for name, leaked in leaks.items() if leaked}
    zero_leaks = not row["leaked_groups"]

    # ----- stitch the surviving boxes' traces and lint the union ---------
    stitch_row: Dict[str, object] = {}
    try:
        traces = [load_trace(p) for p in (trace_a2, trace_b, trace_router)]
        stitched = stitch_traces(traces)
        write_trace_document(stitched, stitched_path)
        problems = lint_trace(stitched)
        fleet_roots = sum(
            1 for span in stitched.spans if span.get("name") == "fleet.request"
        )
        stitch_row = {
            "traces": 3,
            "spans": len(stitched.spans),
            "cross_box_requests": fleet_roots,
            "problems": problems,
            "ok": not problems and fleet_roots >= 1,
        }
    except (OSError, ValueError) as error:
        stitch_row = {"error": str(error), "ok": False}
    row["stitched_trace"] = stitch_row
    row["_stitched_path"] = stitched_path

    row["wrong_verdicts"] = wrong
    row["unvalidated_verdicts"] = unvalidated
    row["ok"] = (
        bool(row["phase1"]["ok"])
        and bool(killed_row.get("ok"))
        and accounting_ok
        and takeover_seen
        and zero_leaks
        and bool(stitch_row.get("ok"))
        and exits.get("box-a2") == 0
        and exits.get("box-b") == 0
        and exits.get("router") == 0
        and not wrong
        and not unvalidated
    )
    _log.info(
        f"fleet soak seed {seed}: "
        f"{killed_row.get('answered', 0)}/{killed_row.get('submitted', 0)} "
        f"answered after SIGKILL ({killed_row.get('failover_wall_s', '?')}s), "
        f"takeover {'seen' if takeover_seen else 'MISSING'}, "
        f"accounting {'ok' if accounting_ok else 'BROKEN'}, "
        f"leaks {'none' if zero_leaks else 'PRESENT'}, "
        f"stitched trace {'clean' if stitch_row.get('ok') else 'DIRTY'}, "
        f"{'OK' if row['ok'] else 'FAILED'}"
    )
    return row


def write_fleet_report(
    soak: Dict[str, object], out: str, timeout: float, trace_out: Optional[str]
) -> bool:
    """Write ``BENCH_fleet.json``; True when every fleet gate held."""
    stitched_path = soak.pop("_stitched_path", None)
    all_ok = bool(soak.get("ok"))
    report = {
        "config": {
            "mode": "fleet-soak",
            "cpus": os.cpu_count(),
            "timeout_s": timeout,
            "seed": soak.get("seed"),
            "member_chaos_rates": FLEET_MEMBER_RATES,
            "router_chaos_rates": FLEET_ROUTER_RATES,
            "python": platform.python_version(),
        },
        "tool": "repro.tools.bench --fleet-soak",
        "soak": soak,
        "summary": {
            "failover_zero_lost": bool(
                soak.get("phase2_kill", {}).get("zero_lost")
            ),
            "failover_zero_duplicates": bool(
                soak.get("phase2_kill", {}).get("zero_duplicates")
            ),
            "failover_wall_s": soak.get("phase2_kill", {}).get(
                "failover_wall_s"
            ),
            "takeover_seen": bool(soak.get("takeover_seen")),
            "fleet_accounting_ok": bool(soak.get("accounting_ok")),
            "zero_wrong_verdicts": not soak.get("wrong_verdicts"),
            "all_verdicts_certificate_validated": not soak.get(
                "unvalidated_verdicts"
            ),
            "zero_leaked_process_groups": not soak.get("leaked_groups"),
            "stitched_trace_clean": bool(
                soak.get("stitched_trace", {}).get("ok")
            ),
            "cross_box_requests_stitched": soak.get("stitched_trace", {}).get(
                "cross_box_requests"
            ),
            "all_ok": all_ok,
        },
    }
    write_json_atomic(out, report)
    if (
        trace_out
        and isinstance(stitched_path, str)
        and os.path.exists(stitched_path)
    ):
        import shutil

        shutil.copyfile(stitched_path, trace_out)
        print(f"stitched fleet trace copied to {trace_out}")
    summary = report["summary"]
    print(
        f"\nwrote {out}: failover "
        f"{'zero-lost' if summary['failover_zero_lost'] else 'LOST REQUESTS'}/"
        f"{'zero-dup' if summary['failover_zero_duplicates'] else 'DUPLICATES'} "
        f"in {summary['failover_wall_s']}s, takeover "
        f"{'seen' if summary['takeover_seen'] else 'MISSING'}, accounting "
        f"{'ok' if summary['fleet_accounting_ok'] else 'BROKEN'}, verdicts "
        f"{'validated' if summary['all_verdicts_certificate_validated'] else 'UNVALIDATED'}, "
        f"leaks {'none' if summary['zero_leaked_process_groups'] else 'LEAKED'}, "
        f"stitched trace "
        f"{'clean' if summary['stitched_trace_clean'] else 'DIRTY'}"
    )
    return all_ok


# ---------------------------------------------------------------------------
# --kernels: the raw-speed replay tiers (scalar / packed / compiled)
# ---------------------------------------------------------------------------


def _random_workload(system, cycles: int, lanes: int, seed: int = 2016):
    """``lanes`` independent random input sequences of ``cycles`` cycles."""
    import random as random_module

    rng = random_module.Random(seed)
    return [
        [
            {name: rng.getrandbits(width) for name, width in system.inputs.items()}
            for _ in range(cycles)
        ]
        for _ in range(lanes)
    ]


def run_kernels_section(
    names: List[str], cycles: int, lanes: int, repeats: int = 3
) -> List[Dict]:
    """Time the three replay tiers per design on one identical random workload.

    Methodology: the workload is ``lanes`` independent input sequences of
    ``cycles`` cycles each.  Input marshalling (packing bit planes, flattening
    the C input array) happens once *outside* the timed region, so the numbers
    compare steady-state stepping throughput — the regime that matters for the
    rsim falsifier and bulk witness replay, where one packing is amortized
    over many runs.  The scalar tier steps every sequence through the
    reference :class:`~repro.netlist.simulate.Simulator`; the packed tier runs
    all ``lanes`` sequences in one bit-parallel pass; the compiled tier runs
    the C replay loop once per sequence.  The scalar tier is timed once and
    the fast tiers keep their best of ``repeats`` runs, which only ever
    *understates* the reported speedups.

    Each row also records a verdict-agreement check: a sample of the
    sequences is replayed through :func:`repro.kernels.checked_replay` (the
    production tier ladder) and through the pure scalar reference, and the
    (first violation cycle, property) pairs must match exactly.
    """
    from repro.kernels import _scalar_replay, checked_replay, get_kernel
    from repro.kernels.build import KernelUnavailable, compiler_available
    from repro.netlist.bitsim import PackedSimulator, pack_values
    from repro.netlist.simulate import Simulator

    rows: List[Dict] = []
    for name in names:
        system = get_benchmark(name).load()
        sequences = _random_workload(system, cycles, lanes)

        start = time.perf_counter()
        for sequence in sequences:
            Simulator(system).run(sequence, stop_on_violation=False)
        scalar_s = time.perf_counter() - start

        packed = PackedSimulator(system, lanes=lanes)
        planes = [
            {
                input_name: pack_values(
                    [sequence[cycle][input_name] for sequence in sequences], width
                )
                for input_name, width in system.inputs.items()
            }
            for cycle in range(cycles)
        ]
        packed_s = min(
            _timed(lambda: packed.run(planes, stop_on_violation=False, record=False))
            for _ in range(repeats)
        )

        kernel_s = None
        kernel_error = ""
        if compiler_available():
            try:
                kernel = get_kernel(system)
                import ctypes

                n_regs = max(1, len(kernel.register_order))
                flats = [kernel._pack_inputs(sequence) for sequence in sequences]

                def _kernel_pass():
                    state = (ctypes.c_uint64 * n_regs)()
                    for flat in flats:
                        kernel._kinit(state)
                        kernel._kreplay(state, flat, cycles, 0, None)

                kernel_s = min(_timed(_kernel_pass) for _ in range(repeats))
            except KernelUnavailable as error:
                kernel_error = str(error)

        backend = None
        verdicts_agree = True
        demotions: List[str] = []
        for sequence in sequences[: min(4, lanes)]:
            reference = _scalar_replay(system, sequence)
            outcome = checked_replay(system, sequence)
            backend = outcome.backend
            demotions.extend(outcome.demotions)
            if (outcome.first_violation, outcome.violated_property) != (
                reference.first_violation,
                reference.violated_property,
            ):
                verdicts_agree = False

        row = {
            "design": name,
            "cycles": cycles,
            "lanes": lanes,
            "scalar_s": round(scalar_s, 6),
            "packed_s": round(packed_s, 6),
            "kernel_s": round(kernel_s, 6) if kernel_s is not None else None,
            "packed_speedup": round(scalar_s / packed_s, 2) if packed_s else None,
            "kernel_speedup_vs_packed": (
                round(packed_s / kernel_s, 2) if kernel_s else None
            ),
            "checked_replay_backend": backend,
            "demotions": demotions,
            "verdicts_agree": verdicts_agree,
        }
        if kernel_error:
            row["kernel_error"] = kernel_error
        rows.append(row)
        kernel_note = (
            f"kernel {row['kernel_speedup_vs_packed']}x packed"
            if kernel_s
            else "kernel unavailable"
        )
        _log.info(
            f"kernels {name:14s} scalar {scalar_s:8.3f}s  packed "
            f"{packed_s:8.4f}s ({row['packed_speedup']}x)  {kernel_note}  "
            f"verdicts {'agree' if verdicts_agree else 'DIVERGE'}"
        )
    return rows


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def run_kernels_rsim_section(names: List[str], timeout: float) -> List[Dict]:
    """Run the rsim falsifier on the suite's unsafe designs, validating witnesses.

    The witness validation deliberately uses the packed replay backend so the
    bench also exercises the validator's ``replay-crosscheck`` obligation.
    """
    from repro.engines.rsim import RandomSimulationEngine

    rows: List[Dict] = []
    for name in names:
        benchmark = get_benchmark(name)
        if benchmark.expected != Status.UNSAFE:
            continue
        system = benchmark.load()
        start = time.perf_counter()
        result = RandomSimulationEngine(system).verify(timeout=timeout)
        wall = time.perf_counter() - start
        validated = False
        if result.status == Status.UNSAFE and result.certificate is not None:
            validation = validate_result(system, result, replay_backend="packed")
            validated = validation.ok
        row = {
            "design": name,
            "status": str(result.status),
            "wall_s": round(wall, 6),
            "violation_cycle": result.detail.get("violation_cycle"),
            "vectors": result.detail.get("vectors"),
            "witness_validated_packed": validated,
            "found_and_validated": result.status == Status.UNSAFE and validated,
        }
        rows.append(row)
        _log.info(
            f"rsim    {name:14s} {result.status:8s} in {wall:.3f}s "
            f"(cycle {row['violation_cycle']}, {row['vectors']} vectors), "
            f"witness {'validated' if validated else 'NOT VALIDATED'}"
        )
    return rows


def write_kernels_report(
    tier_rows: List[Dict],
    rsim_rows: List[Dict],
    out: str,
    cycles: int,
    lanes: int,
    packed_gate: float,
    kernel_gate: float,
) -> bool:
    from repro.kernels.build import find_compiler

    compiler = find_compiler()
    packed_hits = sum(
        1
        for row in tier_rows
        if row["packed_speedup"] is not None and row["packed_speedup"] >= packed_gate
    )
    kernel_hits = sum(
        1
        for row in tier_rows
        if row["kernel_speedup_vs_packed"] is not None
        and row["kernel_speedup_vs_packed"] >= kernel_gate
    )
    all_agree = all(row["verdicts_agree"] for row in tier_rows)
    rsim_ok = all(row["found_and_validated"] for row in rsim_rows) and bool(rsim_rows)
    # with no compiler the kernel tier is legitimately absent and its gate is
    # waived — the degradation itself is what the no-cc CI leg checks
    kernel_gate_waived = compiler is None
    gates = {
        "packed_gate": {
            "threshold": packed_gate,
            "designs_at_or_above": packed_hits,
            "required": 3,
            "ok": packed_hits >= 3,
        },
        "kernel_gate": {
            "threshold": kernel_gate,
            "designs_at_or_above": kernel_hits,
            "required": 3,
            "waived_no_compiler": kernel_gate_waived,
            "ok": kernel_gate_waived or kernel_hits >= 3,
        },
        "verdict_agreement": {"ok": all_agree},
        "rsim_falsification": {"ok": rsim_ok},
    }
    all_ok = all(gate["ok"] for gate in gates.values())
    report = {
        "config": {
            "mode": "kernels",
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cycles": cycles,
            "lanes": lanes,
            "compiler": " ".join(compiler) if compiler else None,
        },
        # "kernel_tiers", not "sweeps"/"portfolio"/...: learn_priors scans
        # every BENCH_*.json for those keys and these rows are not engine runs
        "kernel_tiers": tier_rows,
        "rsim_falsification": rsim_rows,
        "summary": {
            "designs": len(tier_rows),
            "packed_designs_at_gate": packed_hits,
            "kernel_designs_at_gate": kernel_hits if not kernel_gate_waived else None,
            "all_verdicts_agree": all_agree,
            "rsim_bugs_found": sum(
                1 for row in rsim_rows if row["status"] == Status.UNSAFE
            ),
            "rsim_all_validated": rsim_ok,
            "gates": gates,
            "all_ok": all_ok,
        },
    }
    write_json_atomic(out, report)
    summary = report["summary"]
    print(
        f"\nwrote {out}: packed >= {packed_gate:g}x on "
        f"{packed_hits}/{len(tier_rows)} designs, kernel >= {kernel_gate:g}x "
        f"packed on {kernel_hits}/{len(tier_rows)}"
        f"{' (gate waived: no compiler)' if kernel_gate_waived else ''}, "
        f"verdicts {'all agree' if all_agree else 'DIVERGE'}, rsim "
        f"{summary['rsim_bugs_found']} bug(s) "
        f"{'validated' if rsim_ok else 'NOT VALIDATED'} -> "
        f"{'OK' if all_ok else 'FAILED'}"
    )
    return all_ok


# ---------------------------------------------------------------------------
# observability mode: telemetry overhead gates (--obs)
# ---------------------------------------------------------------------------

#: designs for the enabled-vs-disabled overhead sweeps (small and fast, so
#: the telemetry fraction of the wall is as visible as it ever gets)
DEFAULT_OBS_BENCHMARKS = ["daio", "tlc", "proc3", "rcu", "buffalloc", "arbiter"]


def _obs_noop_costs(iterations: int = 200_000) -> Dict[str, float]:
    """Per-call cost (ns) of the disabled telemetry API: the no-op tax."""
    assert _telemetry.get_recorder() is None, "micro-benchmark needs telemetry off"
    t0 = time.perf_counter()
    for _ in range(iterations):
        with _telemetry.span("bench.noop"):
            pass
    span_ns = (time.perf_counter() - t0) / iterations * 1e9
    t0 = time.perf_counter()
    for _ in range(iterations):
        _telemetry.counter("bench.noop")
    counter_ns = (time.perf_counter() - t0) / iterations * 1e9
    return {
        "iterations": iterations,
        "span_ns": round(span_ns, 2),
        "counter_ns": round(counter_ns, 2),
    }


def run_obs_section(
    names: List[str],
    bound: int,
    timeout: float,
    jobs: Optional[int],
    trace_out: str,
) -> Dict[str, object]:
    """Sweep the suite with telemetry off and on; measure what tracing costs.

    The *same* batch sweep (sequential ladder per item, warm pool, no cache
    so every item really runs) is timed twice: once with the recorder
    disabled — the shipping default — and once recording, with the full
    cross-process trace assembled, exported to ``trace_out`` and linted.
    A micro-benchmark prices the disabled no-op calls so the report can
    bound the tax telemetry puts on users who never turn it on.
    """
    from repro.engines.batch import BatchItem, BatchRunner
    from repro.obs.export import lint_trace, load_trace, summarize_trace, write_trace

    noop = _obs_noop_costs()

    def sweep() -> Tuple[float, object]:
        runner = BatchRunner(jobs=jobs, timeout=timeout, bound=bound)
        t0 = time.monotonic()
        report = runner.run([BatchItem.benchmark(name) for name in names])
        return time.monotonic() - t0, report

    disabled_wall, disabled_report = sweep()
    _log.info(
        f"obs  disabled sweep: {len(disabled_report.items)} items "
        f"in {disabled_wall:.3f}s"
    )

    with _telemetry.recording() as recorder:
        enabled_wall, enabled_report = sweep()
        write_trace(
            recorder,
            trace_out,
            meta={"tool": "repro.tools.bench", "mode": "obs", "designs": names},
        )
    _log.info(
        f"obs  enabled sweep:  {len(enabled_report.items)} items "
        f"in {enabled_wall:.3f}s -> {trace_out}"
    )

    trace = load_trace(trace_out)
    problems = lint_trace(trace)
    rollup = summarize_trace(trace, top=10)
    # price the disabled mode: every span the enabled run recorded is one
    # no-op span call (plus its counter bumps) the disabled run paid for
    counter_bumps = len(trace.counters)
    estimated_noop_s = (
        len(trace.spans) * noop["span_ns"] + counter_bumps * noop["counter_ns"]
    ) / 1e9
    return {
        "designs": names,
        "noop_costs": noop,
        "disabled": {
            "wall_s": round(disabled_wall, 6),
            "verdicts": {
                f"{d}:{p}": status
                for (d, p), status in disabled_report.verdicts().items()
            },
        },
        "enabled": {
            "wall_s": round(enabled_wall, 6),
            "verdicts": {
                f"{d}:{p}": status
                for (d, p), status in enabled_report.verdicts().items()
            },
            "trace": trace_out,
            "spans": len(trace.spans),
            "processes": rollup["processes"],
            "dropped_spans": trace.header.get("dropped_spans", 0),
            "lint_problems": problems,
            "rollup": rollup,
        },
        "estimated_disabled_overhead_s": round(estimated_noop_s, 6),
    }


def write_obs_report(
    section: Dict[str, object], out: str, bound: int, timeout: float
) -> bool:
    disabled = section["disabled"]
    enabled = section["enabled"]
    disabled_wall = disabled["wall_s"]
    enabled_wall = enabled["wall_s"]
    # 0.5s absolute slack keeps the ratio gate meaningful on fast suites
    # where scheduler jitter alone exceeds 10% of the wall
    enabled_ok = enabled_wall <= disabled_wall * 1.10 + 0.5
    overhead = section["estimated_disabled_overhead_s"]
    disabled_ok = overhead <= max(disabled_wall, 1e-9) * 0.01
    lint_ok = not enabled["lint_problems"]
    verdicts_ok = disabled["verdicts"] == enabled["verdicts"]
    gates = {
        "enabled_overhead": {
            "enabled_wall_s": enabled_wall,
            "disabled_wall_s": disabled_wall,
            "max_ratio": 1.10,
            "ok": enabled_ok,
        },
        "disabled_overhead": {
            "estimated_s": overhead,
            "max_fraction": 0.01,
            "ok": disabled_ok,
        },
        "trace_lint": {"problems": enabled["lint_problems"], "ok": lint_ok},
        "verdict_agreement": {"ok": verdicts_ok},
    }
    all_ok = all(gate["ok"] for gate in gates.values())
    report = {
        "config": {
            "mode": "obs",
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "bound": bound,
            "timeout_s": timeout,
        },
        "obs": section,
        "summary": {
            "designs": len(section["designs"]),
            "spans_recorded": enabled["spans"],
            "processes": enabled["processes"],
            "enabled_vs_disabled": (
                round(enabled_wall / disabled_wall, 4) if disabled_wall else None
            ),
            "gates": gates,
            "all_ok": all_ok,
        },
    }
    write_json_atomic(out, report)
    ratio = report["summary"]["enabled_vs_disabled"]
    print(
        f"\nwrote {out}: enabled {enabled_wall:.3f}s vs disabled "
        f"{disabled_wall:.3f}s ({ratio}x), {enabled['spans']} spans across "
        f"{enabled['processes']} process(es), "
        f"lint {'clean' if lint_ok else 'PROBLEMS'}, "
        f"verdicts {'agree' if verdicts_ok else 'DIVERGE'}, "
        f"disabled tax ~{overhead * 1e3:.2f}ms -> "
        f"{'OK' if all_ok else 'FAILED'}"
    )
    return all_ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="time template vs legacy unrolling, or the parallel portfolio",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default BENCH_unroll.json, or BENCH_portfolio.json "
             "in --portfolio mode)",
    )
    parser.add_argument(
        "--depth", type=int, default=None,
        help="BMC unroll depth / portfolio search-depth cap "
             "(default 32, or 80 in --portfolio mode so the cycle-64/65 bugs "
             "of the unsafe designs stay reachable)",
    )
    parser.add_argument(
        "--portfolio", action="store_true",
        help="portfolio mode: race the portfolio against individually timed engines",
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="certification mode: validate every definitive verdict's certificate "
             "on the benchmark suite and demo cross-check adjudication",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="incremental-session mode: per-bound k-induction/kIkI timings for "
             "the persistent-session vs template vs legacy solver lifecycles, "
             "plus a session-vs-legacy verdict sweep over the whole suite",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="serving mode: cold/warm cache sweeps over the suite through the "
             "batch runner, budget-ladder vs all-at-once fan-out races, and "
             "SAFE-certificate minimization timings",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="chaos mode: seeded fault-injection sweeps through the "
             "supervised batch runner, gating on zero wrong verdicts, zero "
             "leaked processes, and self-healing caches",
    )
    parser.add_argument(
        "--serve-soak", action="store_true",
        help="server soak mode: drive a live chaos-seeded repro-serve "
             "through coalescing, flood, disconnect, deadline, SIGKILL and "
             "journal-recovery scenarios; gates on every accept being "
             "answered-or-cleanly-rejected with zero wrong verdicts, zero "
             "leaked processes and clean traces",
    )
    parser.add_argument(
        "--fleet-soak", action="store_true",
        help="fleet failover soak: primary + journal-replicated hot standby "
             "+ solo shard behind a repro-serve-router, SIGKILL the primary "
             "mid-computation; gates on zero lost / zero duplicate replies, "
             "fleet-wide accept accounting, certificate-validated verdicts, "
             "zero leaked process groups and a clean stitched cross-box "
             "trace",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="--serve-soak/--fleet-soak: chaos seed (default 0)",
    )
    parser.add_argument(
        "--seeds", type=int, default=3,
        help="--faults: number of seeded chaos sweeps (seeds 0..N-1)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="observability mode: sweep the suite with telemetry disabled and "
             "enabled, lint the exported trace, and gate the recording "
             "overhead (enabled <= 1.10x disabled wall; disabled no-op tax "
             "<= 1%% of the sweep)",
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="--obs: path for the exported trace "
             "(default BENCH_obs_trace.jsonl)",
    )
    parser.add_argument(
        "--kernels", action="store_true",
        help="raw-speed mode: time the scalar / bit-parallel packed / "
             "compiled-C replay tiers on identical random workloads, check "
             "tier verdict agreement, and run the rsim falsifier on the "
             "unsafe designs with packed-replay witness validation",
    )
    parser.add_argument(
        "--cycles", type=int, default=64,
        help="--kernels: cycles per replay sequence (default 64)",
    )
    parser.add_argument(
        "--lanes", type=int, default=64,
        help="--kernels: parallel sequences / packed lanes (default 64)",
    )
    parser.add_argument(
        "--packed-gate", type=float, default=20.0,
        help="--kernels: required packed-vs-scalar speedup on >= 3 designs "
             "(default 20)",
    )
    parser.add_argument(
        "--kernel-gate", type=float, default=5.0,
        help="--kernels: required compiled-vs-packed speedup on >= 3 designs "
             "(default 5; waived when no C compiler is available)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="portfolio worker-process cap (default: one per configuration)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="--serve: certificate cache directory (default: a fresh "
             "temporary directory, so the first sweep is genuinely cold)",
    )
    summary_group = parser.add_mutually_exclusive_group()
    summary_group.add_argument(
        "--summary", action="store_true",
        help="--incremental: aggregate per-bound rows into one compact row "
             "per (design, mode) — this is the default",
    )
    summary_group.add_argument(
        "--full", action="store_true",
        help="--incremental: keep the raw per-bound rows instead of the "
             "compact per-design aggregates",
    )
    parser.add_argument(
        "--representation", default="word", choices=["word", "bit"],
        help="frame encoding for the BMC section",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help=f"benchmarks for the BMC section (default: {' '.join(DEFAULT_BMC_BENCHMARKS)})",
    )
    parser.add_argument(
        "--engine-benchmarks", nargs="*", default=None,
        help="benchmarks for the engine section",
    )
    parser.add_argument(
        "--engines", nargs="*", default=list(ENGINE_FACTORIES),
        choices=list(ENGINE_FACTORIES),
        help="unbounded engines to compare end to end",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="per engine-run timeout (s)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="BMC section repetitions per path (fastest run kept)",
    )
    parser.add_argument(
        "--skip-engines", action="store_true", help="only run the BMC section"
    )
    _log.add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    _log.configure_from_args(args)

    modes = (
        args.portfolio, args.certify, args.incremental, args.serve,
        args.faults, args.serve_soak, args.fleet_soak, args.kernels, args.obs,
    )
    if sum(map(bool, modes)) > 1:
        parser.error(
            "--portfolio, --certify, --incremental, --serve, --faults, "
            "--serve-soak, --fleet-soak, --kernels and --obs are mutually "
            "exclusive"
        )

    if args.fleet_soak:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-fleet-", dir="/tmp")
        soak = run_fleet_soak(args.seed, args.timeout, workdir)
        out = args.out or "BENCH_fleet.json"
        trace_out = args.trace_out or "BENCH_fleet_trace.jsonl"
        return 0 if write_fleet_report(soak, out, args.timeout, trace_out) else 1

    if args.serve_soak:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-soak-", dir="/tmp")
        soak = run_serve_soak(args.seed, args.timeout, workdir)
        out = args.out or "BENCH_server.json"
        trace_out = args.trace_out or "BENCH_server_trace.jsonl"
        return 0 if write_server_report(soak, out, args.timeout, trace_out) else 1

    if args.obs:
        bound = args.depth if args.depth is not None else 80
        names = args.benchmarks if args.benchmarks else DEFAULT_OBS_BENCHMARKS
        unknown = [n for n in names if n not in benchmark_names()]
        if unknown:
            parser.error(f"unknown benchmarks: {', '.join(unknown)}")
        trace_out = args.trace_out or "BENCH_obs_trace.jsonl"
        section = run_obs_section(names, bound, args.timeout, args.jobs, trace_out)
        out = args.out or "BENCH_obs.json"
        return 0 if write_obs_report(section, out, bound, args.timeout) else 1

    if args.kernels:
        names = args.benchmarks if args.benchmarks else benchmark_names()
        unknown = [n for n in names if n not in benchmark_names()]
        if unknown:
            parser.error(f"unknown benchmarks: {', '.join(unknown)}")
        if args.cycles < 1 or args.lanes < 1:
            parser.error("--cycles and --lanes must be >= 1")
        tier_rows = run_kernels_section(names, args.cycles, args.lanes)
        rsim_rows = run_kernels_rsim_section(names, args.timeout)
        out = args.out or "BENCH_kernels.json"
        return (
            0
            if write_kernels_report(
                tier_rows, rsim_rows, out, args.cycles, args.lanes,
                args.packed_gate, args.kernel_gate,
            )
            else 1
        )

    if args.faults:
        bound = args.depth if args.depth is not None else 80
        names = args.benchmarks if args.benchmarks else DEFAULT_FAULTS_BENCHMARKS
        unknown = [n for n in names if n not in benchmark_names()]
        if unknown:
            parser.error(f"unknown benchmarks: {', '.join(unknown)}")
        if args.seeds < 1:
            parser.error("--seeds must be >= 1")
        import tempfile

        sweeps = []
        for seed in range(args.seeds):
            cache_dir = (
                os.path.join(args.cache_dir, f"seed{seed}")
                if args.cache_dir is not None
                else tempfile.mkdtemp(prefix=f"repro-chaos-cache-{seed}-")
            )
            sweeps.append(
                run_chaos_sweep(
                    seed, names, bound, args.timeout, args.jobs, cache_dir
                )
            )
        hang_demo = run_hang_interrupt_demo(args.timeout)
        out = args.out or "BENCH_faults.json"
        return (
            0
            if write_faults_report(sweeps, hang_demo, out, bound, args.timeout)
            else 1
        )

    if args.serve:
        bound = args.depth if args.depth is not None else 80
        names = args.benchmarks if args.benchmarks else benchmark_names()
        unknown = [n for n in names if n not in benchmark_names()]
        if unknown:
            parser.error(f"unknown benchmarks: {', '.join(unknown)}")
        if args.cache_dir is not None:
            cache_dir = args.cache_dir
        else:
            import tempfile

            cache_dir = tempfile.mkdtemp(prefix="repro-serve-cache-")
        sweep_data = run_serve_sweeps(
            names, bound, args.timeout, args.jobs, cache_dir
        )
        ladder_names = [
            n for n in DEFAULT_LADDER_BENCHMARKS if n in names
        ] or names[:4]
        ladder_rows = run_ladder_section(
            ladder_names, bound, args.timeout, args.jobs
        )
        minimize_cases = [
            (n, engine) for n, engine in DEFAULT_MINIMIZE_CASES if n in names
        ] or [(n, "pdr") for n in names[:4]]
        minimize_rows = run_minimization_section(minimize_cases, args.timeout)
        out = args.out or "BENCH_serve.json"
        return (
            0
            if write_serve_report(
                sweep_data, ladder_rows, minimize_rows, out, bound, args.timeout
            )
            else 1
        )

    if args.incremental:
        depth = args.depth if args.depth is not None else 32
        names = args.benchmarks if args.benchmarks else DEFAULT_INCREMENTAL_BENCHMARKS
        unknown = [n for n in names if n not in benchmark_names()]
        if unknown:
            parser.error(f"unknown benchmarks: {', '.join(unknown)}")
        kind_rows = run_incremental_kinduction_section(names, depth, args.timeout)
        kiki_rows = run_incremental_kiki_section(names, depth, args.timeout)
        bmc_rows = run_incremental_bmc_section(names, depth, args.timeout)
        sweep_rows = run_incremental_sweep(min(depth, 8), args.timeout)
        if not args.full:
            kind_rows = compact_incremental_rows(kind_rows)
            kiki_rows = compact_incremental_rows(kiki_rows)
            bmc_rows = compact_incremental_rows(bmc_rows)
        out = args.out or "BENCH_incremental.json"
        return (
            0
            if write_incremental_report(
                kind_rows, kiki_rows, bmc_rows, sweep_rows, out, depth, args.timeout
            )
            else 1
        )

    if args.portfolio:
        depth = args.depth if args.depth is not None else 80
        names = args.benchmarks if args.benchmarks else DEFAULT_PORTFOLIO_BENCHMARKS
        unknown = [n for n in names if n not in benchmark_names()]
        if unknown:
            parser.error(f"unknown benchmarks: {', '.join(unknown)}")
        rows = run_portfolio_section(names, depth, args.timeout, jobs=args.jobs)
        out = args.out or "BENCH_portfolio.json"
        return 0 if write_portfolio_report(rows, out, depth, args.timeout) else 1

    if args.certify:
        bound = args.depth if args.depth is not None else 80
        names = args.benchmarks if args.benchmarks else benchmark_names()
        unknown = [n for n in names if n not in benchmark_names()]
        if unknown:
            parser.error(f"unknown benchmarks: {', '.join(unknown)}")
        rows = run_certify_section(names, bound, args.timeout)
        # inject the liar on the first unsafe design (fallback: the first)
        demo_design = next(
            (n for n in names if get_benchmark(n).expected == Status.UNSAFE), names[0]
        )
        adjudication = run_adjudication_demo(demo_design, bound, args.timeout)
        out = args.out or "BENCH_certify.json"
        return 0 if write_certify_report(rows, adjudication, out, bound, args.timeout) else 1

    args.depth = args.depth if args.depth is not None else 32
    args.out = args.out or "BENCH_unroll.json"
    bmc_names = args.benchmarks if args.benchmarks else DEFAULT_BMC_BENCHMARKS
    engine_names = (
        args.engine_benchmarks if args.engine_benchmarks else DEFAULT_ENGINE_BENCHMARKS
    )
    unknown = [n for n in bmc_names + engine_names if n not in benchmark_names()]
    if unknown:
        parser.error(f"unknown benchmarks: {', '.join(unknown)}")

    bmc_rows = run_bmc_section(
        bmc_names, args.depth, args.representation, repeats=max(1, args.repeats)
    )
    engine_rows = [] if args.skip_engines else run_engine_section(
        engine_names, args.engines, args.timeout
    )

    speedups = {row["benchmark"]: row["encode_solve_speedup"] for row in bmc_rows}
    all_match = all(row["verdicts_match"] for row in bmc_rows + engine_rows)
    report = {
        "meta": {
            "tool": "repro.tools.bench",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "depth": args.depth,
            "representation": args.representation,
        },
        "bmc_unroll": bmc_rows,
        "engines": engine_rows,
        "summary": {
            "bmc_encode_solve_speedups": speedups,
            "benchmarks_at_or_above_3x": sum(1 for s in speedups.values() if s >= 3.0),
            "all_verdicts_match": all_match,
        },
    }
    write_json_atomic(args.out, report)
    print(
        f"\nwrote {args.out}: "
        f"{report['summary']['benchmarks_at_or_above_3x']}/{len(speedups)} BMC "
        f"benchmarks at >=3x, verdicts {'all match' if all_match else 'MISMATCH'}"
    )
    return 0 if all_match else 1


if __name__ == "__main__":
    raise SystemExit(main())
