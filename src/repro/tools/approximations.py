"""Model approximations reproducing the imprecision of some software verifiers.

The paper observes that software-netlists "heavily use bit-level operations"
and that verifiers without bit-precise reasoning (SeaHorn's Horn-level PDR,
numerically-abstracting configurations of CPAChecker) consequently report
wrong results.  :func:`havoc_bitlevel_ops` reproduces that behaviour in a
controlled way: every bit-level operation the tool cannot model precisely is
replaced by a fresh non-deterministic input ("havocked").  The resulting
transition system *over-approximates* the original, so

* safe answers on the approximation are still sound in principle, but
* spurious counterexamples appear on designs whose correctness depends on the
  havocked operations — the harness classifies the resulting ``unsafe``
  verdicts on known-safe designs as *wrong*, exactly like the paper does for
  SeaHorn and CPAChecker.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.exprs import Expr, bv_var
from repro.exprs.nodes import Const, Op, Var
from repro.netlist import SafetyProperty, TransitionSystem


#: operators a word-level integer reasoner typically cannot model precisely
_IMPRECISE_OPS = {
    "and",
    "or",
    "xor",
    "xnor",
    "nand",
    "nor",
    "not",
    "redxor",
    "concat",
    "extract",
    "lshr",
    "shl",
    "ashr",
}


def _is_imprecise(node: Op) -> bool:
    if node.op not in _IMPRECISE_OPS:
        return False
    # 1-bit logic is plain Boolean structure every tool handles precisely
    if node.op in ("and", "or", "xor", "not", "xnor", "nand", "nor") and node.width == 1:
        return all(arg.width == 1 for arg in node.args)
        # (returning True here means "precise", handled by the caller below)
    return True


def havoc_bitlevel_ops(system: TransitionSystem, suffix: str = "havoc") -> TransitionSystem:
    """Return an over-approximation of ``system`` with bit-level ops havocked.

    Every maximal subexpression rooted at an imprecise operator (multi-bit
    bitwise logic, shifts, concatenation, part-selects) is replaced by a fresh
    primary input of the same width.  Boolean (1-bit) connectives and
    word-level arithmetic/comparisons are kept.
    """
    approx = TransitionSystem(f"{system.name}_{suffix}")
    approx.source = system.source
    flat = system.flattened()
    approx.inputs = dict(flat.inputs)
    approx.state_vars = dict(flat.state_vars)
    approx.init = dict(flat.init)

    counter = [0]

    def fresh_input(width: int) -> Expr:
        name = f"__{suffix}_{counter[0]}"
        counter[0] += 1
        approx.inputs[name] = width
        return bv_var(name, width)

    cache: Dict[int, Expr] = {}

    def rewrite(node: Expr) -> Expr:
        key = id(node)
        if key in cache:
            return cache[key]
        if isinstance(node, (Const, Var)):
            result: Expr = node
        else:
            assert isinstance(node, Op)
            precise_boolean = (
                node.op in ("and", "or", "xor", "not", "xnor", "nand", "nor")
                and node.width == 1
                and all(arg.width == 1 for arg in node.args)
            )
            if node.op in _IMPRECISE_OPS and not precise_boolean:
                result = fresh_input(node.width)
            else:
                new_args = tuple(rewrite(arg) for arg in node.args)
                if all(new is old for new, old in zip(new_args, node.args)):
                    result = node
                else:
                    result = Op(node.op, new_args, node.width, node.params)
        cache[key] = result
        return result

    approx.next = {name: rewrite(expr) for name, expr in flat.next.items()}
    approx.constraints = [rewrite(expr) for expr in flat.constraints]
    approx.properties = [
        SafetyProperty(prop.name, rewrite(prop.expr)) for prop in flat.properties
    ]
    approx.validate()
    return approx


def count_bitlevel_ops(system: TransitionSystem) -> int:
    """Count imprecise bit-level operator occurrences in a design.

    Used by the ablation benchmark relating the amount of bit-level structure
    to the precision loss of the integer approximation.
    """
    flat = system.flattened()
    seen: Set[int] = set()
    count = 0

    def walk(node: Expr) -> None:
        nonlocal count
        if id(node) in seen or not isinstance(node, Op):
            return
        seen.add(id(node))
        precise_boolean = (
            node.op in ("and", "or", "xor", "not", "xnor", "nand", "nor")
            and node.width == 1
            and all(arg.width == 1 for arg in node.args)
        )
        if node.op in _IMPRECISE_OPS and not precise_boolean:
            count += 1
        for arg in node.args:
            walk(arg)

    for expr in list(flat.next.values()) + [p.expr for p in flat.properties]:
        walk(expr)
    return count
