"""The tool catalogue: named configurations of the verification engines."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.engines import (
    AbstractInterpretationEngine,
    ImpactEngine,
    InterpolationEngine,
    KInductionEngine,
    KikiEngine,
    PDREngine,
    PredicateAbstractionEngine,
    Status,
    VerificationResult,
)
from repro.netlist import TransitionSystem
from repro.tools.approximations import havoc_bitlevel_ops


@dataclass
class ToolConfig:
    """One verification tool of the paper, as an engine configuration."""

    name: str
    #: paper tool this configuration stands in for
    emulates: str
    #: design representation level: 'bit', 'word' or 'software'
    level: str
    #: technique family, used to group tools into Figures 3-5
    family: str
    #: engine factory: system -> engine object with .verify()
    factory: Callable[[TransitionSystem], object]
    #: whether the design is over-approximated before verification
    approximate_bitvectors: bool = False

    def build(self, system: TransitionSystem):
        design = havoc_bitlevel_ops(system) if self.approximate_bitvectors else system
        return self.factory(design)


def _tool(name, emulates, level, family, factory, approximate=False) -> ToolConfig:
    return ToolConfig(
        name=name,
        emulates=emulates,
        level=level,
        family=family,
        factory=factory,
        approximate_bitvectors=approximate,
    )


#: every tool configuration of the evaluation, keyed by name
TOOLS: Dict[str, ToolConfig] = {
    config.name: config
    for config in [
        # ---- k-induction family (Figure 3) -------------------------------
        _tool(
            "abc-kind",
            "ABC 1.01 (k-induction)",
            "bit",
            "k-induction",
            lambda s: KInductionEngine(s, representation="bit", simple_path=True),
        ),
        _tool(
            "ebmc-kind",
            "EBMC 4.2 (word-level k-induction)",
            "word",
            "k-induction",
            lambda s: KInductionEngine(s, representation="word", simple_path=True),
        ),
        _tool(
            "cbmc-kind",
            "CBMC 5.2 (k-induction on the software-netlist)",
            "software",
            "k-induction",
            lambda s: KInductionEngine(s, representation="word", simple_path=False),
        ),
        _tool(
            "2ls-kind",
            "2LS 0.3.4 (k-induction)",
            "software",
            "k-induction",
            lambda s: KInductionEngine(s, representation="word", simple_path=False, max_k=32),
        ),
        # ---- interpolation family (Figure 4) -------------------------------
        _tool(
            "abc-interpolation",
            "ABC 1.01 (interpolation)",
            "bit",
            "interpolation",
            lambda s: InterpolationEngine(s, representation="bit"),
        ),
        _tool(
            "cpa-interpolation",
            "CPAChecker 1.4 (interpolation)",
            "software",
            "interpolation",
            lambda s: InterpolationEngine(s, representation="word", max_iterations=60),
        ),
        _tool(
            "impara",
            "IMPARA (IMPACT algorithm)",
            "software",
            "interpolation",
            lambda s: ImpactEngine(s, representation="word"),
        ),
        # ---- PDR and hybrid family (Figure 5) -------------------------------
        _tool(
            "abc-pdr",
            "ABC 1.01 (IC3/PDR)",
            "bit",
            "pdr-hybrid",
            lambda s: PDREngine(s, representation="bit"),
        ),
        _tool(
            "seahorn-pdr",
            "SeaHorn (Horn-clause PDR, limited bit-vector support)",
            "software",
            "pdr-hybrid",
            lambda s: PDREngine(s, representation="word"),
            approximate=True,
        ),
        _tool(
            "cpa-predabs",
            "CPAChecker 1.4 (predicate abstraction)",
            "software",
            "pdr-hybrid",
            lambda s: PredicateAbstractionEngine(s, representation="word"),
            approximate=True,
        ),
        _tool(
            "2ls-kiki",
            "2LS 0.3.4 (kIkI: BMC + k-induction + k-invariants)",
            "software",
            "pdr-hybrid",
            lambda s: KikiEngine(s, representation="word"),
        ),
        # ---- abstract interpretation (discussed, not plotted) -----------------
        _tool(
            "astree",
            "Astrée-style interval abstract interpretation",
            "software",
            "abstract-interpretation",
            lambda s: AbstractInterpretationEngine(s),
        ),
    ]
}


def available_tools(family: Optional[str] = None) -> List[str]:
    """Return tool names, optionally filtered by technique family."""
    return [
        name
        for name, config in TOOLS.items()
        if family is None or config.family == family
    ]


def run_tool(
    tool_name: str,
    system: TransitionSystem,
    property_name: Optional[str] = None,
    timeout: Optional[float] = 60.0,
) -> VerificationResult:
    """Run one tool configuration on one design and return its result.

    Engine exceptions are mapped to ``Status.ERROR`` results, mirroring the
    "error (crash)" category of the paper's figures.
    """
    if tool_name not in TOOLS:
        raise KeyError(f"unknown tool {tool_name!r}; available: {', '.join(sorted(TOOLS))}")
    config = TOOLS[tool_name]
    start = time.monotonic()
    try:
        engine = config.build(system)
        result = engine.verify(property_name, timeout=timeout)
    except Exception as error:  # noqa: BLE001 - tool crash category
        return VerificationResult(
            Status.ERROR,
            engine=tool_name,
            property_name=property_name or "",
            runtime=time.monotonic() - start,
            reason=f"{type(error).__name__}: {error}",
        )
    result.engine = tool_name
    return result
