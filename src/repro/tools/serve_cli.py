"""The ``repro-serve`` command-line front end: run a verify server.

Start a long-lived verification server on a unix socket (or TCP port) and
keep warm state — frame-template blasts, learned priors, the certificate
cache — alive across requests::

    repro-serve --socket /tmp/repro.sock --cache-dir .repro-cache \\
        --journal .repro-serve/journal.jsonl
    repro-serve --tcp 127.0.0.1:7411 --workers 1:4 --target-latency 10

Clients speak ``repro-serve-v1`` (:mod:`repro.serve.protocol`):
``repro-verify daio --server /tmp/repro.sock`` for one-shot queries, or
:class:`repro.serve.client.ServeClient` programmatically.  The server runs
until SIGTERM/SIGINT or a client ``drain`` request, then drains gracefully:
admissions close (``rejected: draining``), every accepted request is
answered, the journal is compacted and the telemetry trace (``--trace``)
is written.

``--chaos SEED`` installs a seeded fault plan (see :mod:`repro.faults`) in
the server process — soak-harness only; the rates come from
``--chaos-rates kind=rate,...`` and cover both the classic execution faults
(worker kills, hangs, cache tampering) and the server-site kinds
(``journal-torn``, ``repl-link-drop``, ``stale-standby``,
``heartbeat-blackout``).

Fleet mode: ``--standby-of unix:/path/or/host:port`` starts this process as
a hot standby — it follows the named primary's journal stream, rejects
client requests with reason ``standby``, and promotes itself after
``--takeover-after`` seconds of primary unreachability (recovering the
replicated journal with ``--recover requeue`` semantics by default).  On a
primary, ``--sync-level sync`` holds each accept reply until a standby has
acknowledged the journal record.  ``repro-serve --status TARGET`` prints a
one-shot fleet health report of a running member or router instead of
starting anything.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.obs import log as _log
from repro.obs import telemetry as _telemetry
from repro.serve.server import ServerConfig, VerifyServer


def _parse_workers(spec: str) -> tuple:
    """``"4"`` → (1, 4); ``"2:8"`` → (2, 8)."""
    if ":" in spec:
        low, high = spec.split(":", 1)
        return int(low), int(high)
    return 1, int(spec)


def _parse_rates(spec: Optional[str]) -> dict:
    rates = {}
    if spec:
        for item in spec.split(","):
            kind, _, rate = item.partition("=")
            rates[kind.strip()] = float(rate)
    return rates


def _print_status(target: str) -> int:
    """One-shot fleet health report of a running member or router."""
    from repro.serve.client import ServeClient
    from repro.serve.protocol import parse_addr

    socket_path, host, port = parse_addr(target)
    try:
        with ServeClient(
            socket_path=socket_path, host=host, port=port,
            timeout=5.0, reconnect=False,
        ) as client:
            status = client.status()
    except Exception as error:  # noqa: BLE001 - report, don't trace
        print(f"{target}: unreachable ({error})", file=sys.stderr)
        return 1

    role = status.get("role", "?")
    print(f"{target}: role={role} uptime={status.get('uptime_s', 0):.1f}s")
    counters = status.get("counters", {})
    if counters:
        lifetime = " ".join(
            f"{name}={counters[name]}"
            for name in ("accepted", "answered", "cancelled")
            if name in counters
        )
        print(f"  lifetime: {lifetime}")
    if role == "router":
        for member in status.get("members", []):
            health = member.get("health") or {}
            state = "up" if member.get("healthy") else "DOWN"
            print(
                f"  member {member['name']}: {state}"
                f" addr={member.get('connected_addr') or member.get('addr')}"
                f" inflight={member.get('inflight', 0)}"
                f" queue={health.get('queue_depth', '?')}"
                f" repl_lag={health.get('repl_lag', '?')}"
            )
        return 0
    throttle = status.get("throttle") or {}
    print(
        f"  queue={status.get('queue_depth', '?')}"
        f" active={status.get('active', '?')}"
        f" concurrency={throttle.get('concurrency', '?')}"
    )
    replication = status.get("replication") or {}
    if replication:
        print(
            f"  replication: sync_level={replication.get('sync_level')}"
            f" seq={replication.get('seq')}"
            f" lag={replication.get('lag')}"
            f" sync_timeouts={replication.get('sync_timeouts')}"
        )
        for standby in replication.get("standbys", []):
            print(
                f"    standby {standby.get('name')}:"
                f" acked={standby.get('acked')} lag={standby.get('lag')}"
            )
    standby = status.get("standby") or {}
    if standby:
        print(
            f"  following {standby.get('primary')}:"
            f" connected={standby.get('connected')}"
            f" applied_seq={standby.get('applied_seq')}"
            f" promoted={standby.get('promoted')}"
        )
    telemetry = status.get("telemetry") or {}
    wedged = counters.get("wedged_kills")
    if wedged:
        print(f"  wedged kills: {wedged}")
    if telemetry:
        print(
            f"  telemetry: {telemetry.get('spans', 0)} span(s),"
            f" {len(telemetry.get('counters', {}))} counter(s)"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="run a long-lived verification server (repro-serve-v1)",
    )
    where = parser.add_mutually_exclusive_group(required=True)
    where.add_argument(
        "--socket", metavar="PATH", help="listen on a unix socket at PATH"
    )
    where.add_argument(
        "--tcp", metavar="HOST:PORT", help="listen on a TCP host:port"
    )
    where.add_argument(
        "--status", metavar="TARGET", default=None,
        help="print the status of a running server/router at TARGET "
             "(unix:PATH or HOST:PORT) and exit",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="certificate-keyed result cache root (hits are re-validated, "
             "definitive verdicts are stored)",
    )
    parser.add_argument(
        "--journal", metavar="FILE", default=None,
        help="write-ahead request journal; on restart, accepted-but-"
             "unanswered requests are recovered per --recover",
    )
    parser.add_argument(
        "--recover", choices=("nack", "requeue"), default=None,
        help="journal recovery policy: close open requests as nacked "
             "(default) or recompute them into the cache (default for "
             "--standby-of: a takeover that nacks is not a takeover)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="admission-queue capacity; beyond it requests are rejected "
             "with reason 'overloaded' (default 16)",
    )
    parser.add_argument(
        "--workers", default="2", metavar="[MIN:]MAX",
        help="concurrency range for the adaptive throttle (default 1:2)",
    )
    parser.add_argument(
        "--target-latency", type=float, default=10.0, metavar="S",
        help="throttle target: shrink concurrency while observed latency "
             "EWMA exceeds this, grow while well below (default 10)",
    )
    parser.add_argument(
        "--default-deadline", type=float, default=120.0, metavar="S",
        help="deadline for requests that set none (default 120); the "
             "deadline propagates into engine and solver budgets",
    )
    parser.add_argument(
        "--attempt-timeout", type=float, default=None, metavar="S",
        help="per-attempt cap inside a request's budget (enables "
             "supervised retry of a wedged attempt)",
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="accept only attempt verdicts whose certificate passes "
             "independent validation inside the worker ladder",
    )
    parser.add_argument(
        "--fsync-journal", action="store_true",
        help="fsync every journal append (power-loss durability; process-"
             "crash durability needs no fsync)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a repro-trace-v1 JSONL of the server's whole life on "
             "drain; lint it with repro-trace lint --expect-clean",
    )
    parser.add_argument(
        "--server-id", metavar="NAME", default=None,
        help="stable member name for status/heartbeat/trace stitching "
             "(default: the listen address)",
    )
    parser.add_argument(
        "--standby-of", metavar="ADDR", default=None,
        help="run as a hot standby of the primary at ADDR (unix:PATH or "
             "HOST:PORT): follow its journal stream, promote on silence",
    )
    parser.add_argument(
        "--takeover-after", type=float, default=3.0, metavar="S",
        help="standby only: promote after S seconds of continuous primary "
             "unreachability (default 3)",
    )
    parser.add_argument(
        "--sync-level", choices=("async", "sync"), default="async",
        help="primary only: 'sync' holds each accept reply until a standby "
             "acked the journal record (default async)",
    )
    parser.add_argument(
        "--sync-timeout", type=float, default=2.0, metavar="S",
        help="sync-level sync: degrade to async after waiting S seconds "
             "for a standby ack (default 2)",
    )
    parser.add_argument(
        "--progress-interval", type=float, default=2.0, metavar="S",
        help="stream a liveness/progress frame to waiting clients at "
             "least every S seconds per request (default 2)",
    )
    parser.add_argument(
        "--progress-timeout", type=float, default=None, metavar="S",
        help="declare a computation wedged after S seconds without "
             "progress, kill its attempt and retry it (default: off)",
    )
    parser.add_argument(
        "--chaos", type=int, default=None, metavar="SEED",
        help="install a seeded fault plan in the server process "
             "(soak/test harness only)",
    )
    parser.add_argument(
        "--chaos-rates", default=None, metavar="KIND=RATE,...",
        help="per-kind fault rates for --chaos, e.g. "
             "'worker-kill=0.2,journal-torn=0.1'",
    )
    _log.add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    _log.configure_from_args(args)

    if args.status:
        return _print_status(args.status)

    host, port = None, 0
    if args.tcp:
        host, _, port_text = args.tcp.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            parser.error(f"bad --tcp spec {args.tcp!r} (want HOST:PORT)")
    min_workers, max_workers = _parse_workers(args.workers)

    config = ServerConfig(
        socket_path=args.socket,
        host=host or None,
        port=port,
        cache_dir=args.cache_dir,
        journal_path=args.journal,
        max_queue=args.max_queue,
        min_workers=min_workers,
        max_workers=max_workers,
        target_latency_s=args.target_latency,
        default_deadline_s=args.default_deadline,
        attempt_timeout_s=args.attempt_timeout,
        certify=args.certify,
        recover=args.recover
        or ("requeue" if args.standby_of else "nack"),
        trace_path=args.trace,
        fsync_journal=args.fsync_journal,
        role="standby" if args.standby_of else "primary",
        server_id=args.server_id,
        primary_addr=args.standby_of,
        takeover_after_s=args.takeover_after,
        sync_level=args.sync_level,
        sync_timeout_s=args.sync_timeout,
        progress_interval_s=args.progress_interval,
        progress_timeout_s=args.progress_timeout,
    )

    if args.chaos is not None:
        from repro.faults import injection
        from repro.faults.plan import FaultPlan

        injection.install(
            FaultPlan(seed=args.chaos, rates=_parse_rates(args.chaos_rates))
        )
        _log.info(f"chaos plan installed (seed {args.chaos})")

    if args.trace:
        _telemetry.enable()
    server = VerifyServer(config)
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
