"""Property instrumentation for the software-netlist.

The paper instruments the SVA safety properties of the RTL as assertions in
the software-netlist model.  Properties written in the Verilog source are
already carried by the transition system; this module adds the ability to
instrument *additional* properties given as SVA-style strings — the workflow
used by the benchmark suite, where the properties accompany the designs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.netlist import SafetyProperty, TransitionSystem
from repro.sva import attach_property


def instrument_properties(
    system: TransitionSystem,
    properties: Mapping[str, str],
    replace: bool = False,
) -> List[SafetyProperty]:
    """Attach SVA-style property strings to a transition system.

    Parameters
    ----------
    system:
        The transition system produced from the Verilog RTL.
    properties:
        Map from property name to SVA boolean expression text.
    replace:
        When True, any properties already present (e.g. parsed from inline
        ``assert property`` statements) are dropped first.

    Returns the list of attached :class:`SafetyProperty` objects.
    """
    if replace:
        system.properties = []
    attached = []
    for name, text in properties.items():
        attached.append(attach_property(system, name, text))
    return attached
