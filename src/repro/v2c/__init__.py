"""v2c: synthesis of Verilog RTL into a software-netlist.

This package is the reproduction of the paper's core artefact, the ``v2c``
tool (Section III): it turns the word-level transition system obtained from
Verilog RTL into

* a *software-netlist* in ANSI-C (:class:`repro.v2c.codegen.CCodeGenerator`):
  a cycle-accurate, bit-precise, word-level C program in which one call of the
  top-level step function corresponds to one clock cycle, with the safety
  properties instrumented as assertions and the primary inputs assigned
  non-deterministic values, and
* an executable Python model of the same program
  (:class:`repro.v2c.softnetlist.SoftwareNetlist`) used by the software-level
  verification engines and by the equivalence cross-checks of Section III.C.
"""

from repro.v2c.softnetlist import SoftwareNetlist, SoftwareNetlistError
from repro.v2c.codegen import CCodeGenerator, generate_c
from repro.v2c.instrument import instrument_properties

__all__ = [
    "SoftwareNetlist",
    "SoftwareNetlistError",
    "CCodeGenerator",
    "generate_c",
    "instrument_properties",
]
