"""Executable software-netlist model.

The software-netlist is the program view of the circuit: a state structure
(one field per register, nested following the module hierarchy), an input
structure, and a *step function* that computes the combinational signals and
updates every register exactly once — one call per clock cycle, as described
in Section III.A of the paper.

The Python model here has the same structure as the generated C program (the
two are produced from the same transition system) and is what the
software-level verification engines and the equivalence cross-checks execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exprs import Expr, collect_vars, evaluate
from repro.exprs.nodes import to_unsigned
from repro.netlist import TransitionSystem


class SoftwareNetlistError(Exception):
    """Raised for malformed software netlists or bad step inputs."""


@dataclass
class AssignmentStep:
    """One straight-line assignment of the step function."""

    target: str
    expr: Expr
    kind: str  # 'wire' | 'register'


@dataclass
class AssertionPoint:
    """An instrumented assertion checked each cycle before the state update."""

    name: str
    expr: Expr


class SoftwareNetlist:
    """Straight-line program equivalent of a transition system.

    The constructor performs the dependency analysis between combinational
    definitions so that the wire assignments are emitted in topological order
    (the "intra-modular and inter-modular dependency analysis" of the paper);
    register updates are emitted last and read only pre-update values, which
    reproduces the non-blocking assignment semantics of the RTL.
    """

    def __init__(self, system: TransitionSystem) -> None:
        system.validate()
        self.system = system
        self.name = system.name
        self.inputs: Dict[str, int] = dict(system.inputs)
        self.registers: Dict[str, int] = dict(system.state_vars)
        self.initial_values: Dict[str, int] = {
            name: evaluate(expr, {}) for name, expr in system.init.items()
        }
        self.wire_order: List[str] = self._order_wires(system.wires)
        self.assignments: List[AssignmentStep] = self._build_assignments()
        self.assertions: List[AssertionPoint] = [
            AssertionPoint(prop.name, prop.expr) for prop in system.properties
        ]
        self.constraints: List[Expr] = list(system.constraints)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _order_wires(self, wires: Mapping[str, Expr]) -> List[str]:
        """Topologically sort wire definitions by their wire-to-wire dependencies."""
        dependencies: Dict[str, set] = {}
        for name, expr in wires.items():
            dependencies[name] = {
                var.name for var in collect_vars(expr) if var.name in wires and var.name != name
            }
        ordered: List[str] = []
        placed: set = set()
        remaining = dict(dependencies)
        while remaining:
            ready = [name for name, deps in remaining.items() if deps <= placed]
            if not ready:
                raise SoftwareNetlistError(
                    f"combinational cycle through wires: {sorted(remaining)}"
                )
            for name in sorted(ready):
                ordered.append(name)
                placed.add(name)
                del remaining[name]
        return ordered

    def _build_assignments(self) -> List[AssignmentStep]:
        steps: List[AssignmentStep] = []
        for name in self.wire_order:
            steps.append(AssignmentStep(name, self.system.wires[name], "wire"))
        for name in self.registers:
            steps.append(AssignmentStep(name, self.system.next[name], "register"))
        return steps

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def initial_state(self) -> Dict[str, int]:
        """Return the reset state of the program (one entry per register)."""
        return dict(self.initial_values)

    def step(
        self, state: Mapping[str, int], inputs: Optional[Mapping[str, int]] = None
    ) -> Tuple[Dict[str, int], Dict[str, int], List[str]]:
        """Execute one call of the top-level step function.

        Returns ``(next_state, combinational_values, violated_assertions)``.
        The assertion check happens on the pre-update state together with the
        cycle's inputs and combinational values, exactly like the ``assert``
        statements placed before the register updates in the generated C.
        """
        inputs = inputs or {}
        env: Dict[str, int] = {}
        for name, width in self.registers.items():
            if name not in state:
                raise SoftwareNetlistError(f"missing register value {name!r}")
            env[name] = to_unsigned(int(state[name]), width)
        for name, width in self.inputs.items():
            env[name] = to_unsigned(int(inputs.get(name, 0)), width)

        next_state: Dict[str, int] = {}
        for step_assignment in self.assignments:
            value = evaluate(step_assignment.expr, env)
            if step_assignment.kind == "wire":
                env[step_assignment.target] = value
            else:
                next_state[step_assignment.target] = value

        violated = [
            assertion.name
            for assertion in self.assertions
            if evaluate(assertion.expr, env) == 0
        ]
        combinational = {name: env[name] for name in self.wire_order}
        return next_state, combinational, violated

    def run(
        self,
        input_sequence: Sequence[Mapping[str, int]],
        stop_on_violation: bool = True,
    ) -> Tuple[List[Dict[str, int]], Optional[str], Optional[int]]:
        """Run from reset; returns (state trace, first violated assertion, cycle)."""
        state = self.initial_state()
        states = [dict(state)]
        for cycle, inputs in enumerate(input_sequence):
            state, _, violated = self.step(state, inputs)
            states.append(dict(state))
            if violated:
                if stop_on_violation:
                    return states, violated[0], cycle
        return states, None, None

    # ------------------------------------------------------------------
    # structure queries used by the C code generator
    # ------------------------------------------------------------------
    def hierarchy(self) -> Dict:
        """Return the register hierarchy as nested dicts keyed by path component.

        Dotted names produced by the synthesizer (``u_fifo.count``) become
        nested structure members, which is how the generated C retains the
        module hierarchy of the RTL.
        """
        tree: Dict = {}
        for name, width in self.registers.items():
            parts = name.split(".")
            node = tree
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = width
        return tree

    def stats(self) -> Dict[str, int]:
        """Return program-size statistics."""
        return {
            "inputs": len(self.inputs),
            "registers": len(self.registers),
            "wire_assignments": len(self.wire_order),
            "assertions": len(self.assertions),
        }
