"""SVA-subset safety property support.

The paper specifies safety properties as SystemVerilog assertions (SVA) of the
form ``assert property (@(posedge clk) <boolean expression>)``.  Properties can
either be written inline in the Verilog source (handled by the frontend) or
attached to an existing transition system from a property string, which is
what the benchmark suite does.
"""

from repro.sva.properties import (
    PropertyError,
    attach_property,
    parse_property,
    parse_property_expr,
)

__all__ = ["PropertyError", "attach_property", "parse_property", "parse_property_expr"]
