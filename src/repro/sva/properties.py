"""Parsing of SVA-style boolean safety properties against a transition system.

A property string uses Verilog expression syntax over the signals of the
design (hierarchical names written with dots, e.g. ``u_fifo.count <= 4``).
The full SVA temporal layer is not needed for the paper's benchmarks: all
properties are invariants (implicitly ``always``), optionally written with the
``|->`` implication operator which we lower to a plain Boolean implication
evaluated in the same cycle.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.exprs import Expr, bool_implies, simplify, to_bool
from repro.netlist import SafetyProperty, TransitionSystem
from repro.verilog import ast
from repro.verilog.parser import parse_expression_text
from repro.verilog.elaborate import ElaboratedInstance, Signal
from repro.synth.expr_convert import Scope, convert


class PropertyError(Exception):
    """Raised when a property string cannot be parsed or refers to unknown signals."""


class _SystemScope(Scope):
    """A :class:`Scope` that resolves names against a transition system.

    Hierarchical names (``a.b.c``) are looked up directly in the system's
    signal table; the dots were preserved by the synthesizer's flat naming.
    """

    def __init__(self, system: TransitionSystem) -> None:
        self._system = system
        self._widths = system.signal_widths()
        instance = ElaboratedInstance(module_name=system.name, instance_name=system.name, path="")
        for name, width in self._widths.items():
            instance.signals[name] = Signal(
                name=name, width=width, msb=width - 1, lsb=0, kind="wire"
            )
        super().__init__(instance, reader={})

    def read_signal(self, name: str) -> Expr:
        if name not in self._widths:
            raise PropertyError(
                f"property refers to unknown signal {name!r} "
                f"(known signals: {', '.join(sorted(self._widths)[:8])}, ...)"
            )
        return super().read_signal(name)


def _rewrite_hierarchical_names(text: str) -> str:
    """Replace hierarchical separators so the expression parser sees one identifier.

    The Verilog expression grammar would treat ``a.b`` as a syntax error; the
    benchmark properties use dotted names produced by the synthesizer, so the
    dots between identifier characters are kept by temporarily mapping them to
    a marker that the scope translates back.
    """
    result = []
    for index, char in enumerate(text):
        if char == ".":
            prev_ok = index > 0 and (text[index - 1].isalnum() or text[index - 1] == "_")
            next_ok = index + 1 < len(text) and (
                text[index + 1].isalpha() or text[index + 1] == "_"
            )
            if prev_ok and next_ok:
                result.append("__DOT__")
                continue
        result.append(char)
    return "".join(result)


def _restore_dots(name: str) -> str:
    return name.replace("__DOT__", ".")


class _DotRestoringScope(_SystemScope):
    def read_signal(self, name: str) -> Expr:
        return super().read_signal(_restore_dots(name))

    def signal(self, name: str) -> Signal:
        return super().signal(_restore_dots(name))


def parse_property_expr(system: TransitionSystem, text: str) -> Expr:
    """Parse a property string into a 1-bit IR expression over the system's signals."""
    # lower the SVA implication operator to a boolean implication
    if "|->" in text or "|=>" in text:
        operator = "|->" if "|->" in text else "|=>"
        left_text, right_text = text.split(operator, 1)
        left = parse_property_expr(system, left_text)
        right = parse_property_expr(system, right_text)
        return simplify(bool_implies(left, right))
    rewritten = _rewrite_hierarchical_names(text)
    try:
        tree = parse_expression_text(rewritten)
    except Exception as error:
        raise PropertyError(f"cannot parse property {text!r}: {error}") from error
    scope = _DotRestoringScope(system)
    try:
        expr = convert(tree, scope)
    except PropertyError:
        raise
    except Exception as error:
        raise PropertyError(f"cannot elaborate property {text!r}: {error}") from error
    return simplify(to_bool(expr))


def parse_property(system: TransitionSystem, name: str, text: str) -> SafetyProperty:
    """Parse a property string and return a :class:`SafetyProperty` (not attached)."""
    return SafetyProperty(name, parse_property_expr(system, text))


def attach_property(system: TransitionSystem, name: str, text: str) -> SafetyProperty:
    """Parse a property string and add it to the transition system."""
    prop = parse_property(system, name, text)
    system.properties.append(prop)
    return prop
