"""Atomic small-file writes for reports and certificates.

Every JSON artifact the toolchain writes (``BENCH_*.json`` reports,
certificate documents, cache entries) is consumed later by other runs —
``learn_priors`` reads benchmark reports, the cache re-validates entries —
so a torn write from a crashed or killed process must never leave a
half-document behind under the final name.  Writing to a temp file in the
same directory and ``os.replace``-ing it over the target is atomic on POSIX.
"""

from __future__ import annotations

import json
import os
import tempfile


def write_text_atomic(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically (tmp + rename); returns ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path


def write_json_atomic(path: str, document: object, indent: int = 2) -> str:
    """Serialize ``document`` and write it to ``path`` atomically."""
    return write_text_atomic(
        path, json.dumps(document, indent=indent, default=str) + "\n"
    )
