"""Compiler autodetection and the on-disk kernel build cache.

A kernel build turns one design's generated C step function into a shared
object loadable through ctypes.  Builds are cached on disk keyed by the
design's content hash (:func:`repro.cache.key.kernel_key`) so a design is
compiled at most once per machine per semantic revision; the ``.c`` source is
kept next to the ``.so`` for inspection.  Everything degrades gracefully: no
compiler, an unsupported design (>64-bit signals), or a failing build all
raise :class:`KernelUnavailable`, which callers treat as "use the pure-Python
tier" — never as an error.

Environment knobs:

``REPRO_CC``
    Compiler command for kernel builds (split with shlex, so flags are
    allowed).  The sentinels ``""``, ``0``, ``none``, ``off`` and ``disabled``
    disable compilation outright — the no-compiler degradation path, used by
    CI to prove verdicts do not depend on the native tier.
``CC``
    Consulted after ``REPRO_CC``; the conventional override.
``REPRO_KERNEL_CACHE``
    Build-cache directory (default ``$XDG_CACHE_HOME/repro/kernels``).
"""

from __future__ import annotations

import os
import shlex
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.cache.key import kernel_key
from repro.netlist import TransitionSystem
from repro.v2c.codegen import KERNEL_ABI_VERSION, KernelCodeGenerator

#: values of REPRO_CC that disable native compilation entirely
DISABLED_SENTINELS = ("", "0", "none", "off", "disabled")

_CANDIDATE_COMPILERS = ("cc", "gcc", "clang")


class KernelUnavailable(RuntimeError):
    """A compiled kernel cannot be produced; fall back to pure Python."""


def find_compiler() -> Optional[List[str]]:
    """Resolve the C compiler command, or None when compilation is disabled.

    ``REPRO_CC`` wins (its disable sentinels turn the native tier off even if
    compilers exist), then ``CC``, then the first of cc/gcc/clang on PATH.
    """
    for variable in ("REPRO_CC", "CC"):
        value = os.environ.get(variable)
        if value is None:
            continue
        if value.strip().lower() in DISABLED_SENTINELS:
            return None
        return shlex.split(value)
    for candidate in _CANDIDATE_COMPILERS:
        path = shutil.which(candidate)
        if path:
            return [path]
    return None


def compiler_available() -> bool:
    return find_compiler() is not None


def default_cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "kernels"


def build_kernel(
    system: TransitionSystem,
    cache_dir: Optional[Path] = None,
) -> Path:
    """Return the path of the design's kernel shared object, building if needed.

    Raises :class:`KernelUnavailable` when no compiler is configured, the
    design uses features the C backend cannot express, or the build fails.
    """
    # the compiler check comes before the cache hit on purpose: with the
    # native tier disabled (REPRO_CC sentinel) even a prebuilt .so must not
    # load, or the no-compiler degradation path CI relies on would be a no-op
    compiler = find_compiler()
    if compiler is None:
        raise KernelUnavailable("no C compiler available (or disabled via REPRO_CC)")
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    key = kernel_key(system, KERNEL_ABI_VERSION)
    so_path = cache_dir / f"{key}.so"
    if so_path.exists():
        return so_path
    try:
        source = KernelCodeGenerator(system).generate_kernel()
    except ValueError as error:
        raise KernelUnavailable(f"design not expressible as a C kernel: {error}") from error

    cache_dir.mkdir(parents=True, exist_ok=True)
    c_path = cache_dir / f"{key}.c"
    # suffixes must stay .c/.so — the compiler infers the language from them
    tmp_c = Path(tempfile.mktemp(dir=cache_dir, suffix=".tmp.c"))
    tmp_c.write_text(source)
    tmp_so = Path(tempfile.mktemp(dir=cache_dir, suffix=".tmp.so"))
    command = compiler + ["-O2", "-shared", "-fPIC", "-o", str(tmp_so), str(tmp_c)]
    try:
        completed = subprocess.run(
            command, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired) as error:
        tmp_c.unlink(missing_ok=True)
        tmp_so.unlink(missing_ok=True)
        raise KernelUnavailable(f"kernel build failed to run: {error}") from error
    if completed.returncode != 0:
        tmp_c.unlink(missing_ok=True)
        tmp_so.unlink(missing_ok=True)
        raise KernelUnavailable(
            f"kernel build failed ({' '.join(command[:1])} exited "
            f"{completed.returncode}): {completed.stderr.strip()[:500]}"
        )
    # atomic publication: the .so appears only fully built, source alongside
    os.replace(tmp_c, c_path)
    os.replace(tmp_so, so_path)
    return so_path
