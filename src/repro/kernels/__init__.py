"""Compiled per-design step kernels (the native tier of the raw-speed layer).

Tiering, fastest first, every step gated so verdicts can never change:

1. **compiled** — the C step function built through ``v2c/codegen.py``,
   loaded over ctypes, replay loop in C.  Spot-checked per cycle against the
   scalar interpreter (:class:`~repro.kernels.ckernel.CompiledKernel.replay_checked`);
   unavailable without a compiler, for >64-bit designs, or on any mismatch.
2. **packed** — the pure-Python bit-parallel simulator
   (:mod:`repro.netlist.bitsim`), itself cross-checked lane-by-lane.
3. **scalar** — the reference interpreter (:mod:`repro.netlist.simulate`),
   the semantics all faster tiers are judged against.

:func:`checked_replay` walks that ladder for one input sequence and reports
which tier answered; demotion reasons are carried along for observability.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.exprs import evaluate
from repro.netlist import TransitionSystem
from repro.obs import telemetry as _telemetry
from repro.netlist.simulate import Simulator
from repro.kernels.build import (
    KernelUnavailable,
    build_kernel,
    compiler_available,
    default_cache_dir,
    find_compiler,
)
from repro.kernels.ckernel import CompiledKernel, KernelMismatch, KernelRun

__all__ = [
    "CompiledKernel",
    "KernelMismatch",
    "KernelRun",
    "KernelUnavailable",
    "ReplayOutcome",
    "build_kernel",
    "checked_replay",
    "compiler_available",
    "default_cache_dir",
    "find_compiler",
    "get_kernel",
]

_KERNEL_CACHE: Dict[str, CompiledKernel] = {}


def get_kernel(
    system: TransitionSystem, cache_dir: Optional[Path] = None
) -> CompiledKernel:
    """Build/load the design's compiled kernel, memoized per content key.

    Raises :class:`KernelUnavailable` when the native tier cannot serve.
    """
    from repro.cache.key import kernel_key
    from repro.v2c.codegen import KERNEL_ABI_VERSION

    key = kernel_key(system, KERNEL_ABI_VERSION)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        with _telemetry.span(
            "kernels.build", design=getattr(system, "name", "?")
        ):
            kernel = CompiledKernel(system, cache_dir=cache_dir)
        _KERNEL_CACHE[key] = kernel
    return kernel


@dataclass
class ReplayOutcome:
    """Uniform result of a tiered replay: which tier answered, and what."""

    backend: str  # 'compiled' | 'packed' | 'scalar'
    first_violation: Optional[int]
    violated_property: Optional[str]
    #: why faster tiers were skipped, oldest demotion first
    demotions: List[str]


def _scalar_replay(
    system: TransitionSystem, input_sequence: Sequence[Mapping[str, int]]
) -> ReplayOutcome:
    """Reference replay with the same constraint-alive semantics as the fast
    tiers: a violation only counts while every environment constraint has
    held up to and including its cycle."""
    simulator = Simulator(system)
    alive = True
    for cycle, inputs in enumerate(input_sequence):
        env = simulator._environment(inputs)
        if alive and any(evaluate(c, env) == 0 for c in system.constraints):
            alive = False
        if alive:
            for prop in system.properties:
                if evaluate(prop.expr, env) == 0:
                    return ReplayOutcome("scalar", cycle, prop.name, [])
        simulator.step(inputs)
    return ReplayOutcome("scalar", None, None, [])


def checked_replay(
    system: TransitionSystem,
    input_sequence: Sequence[Mapping[str, int]],
    cache_dir: Optional[Path] = None,
    use_compiled: bool = True,
    use_packed: bool = True,
) -> ReplayOutcome:
    """Replay one input sequence through the fastest trustworthy tier.

    Tier demotion is silent about *performance* but loud about *trust*: a
    :class:`KernelMismatch` (divergent compiled output, incl. the injected
    ``kernel-miscompile`` fault) and a packed
    :class:`~repro.netlist.bitsim.SimulationMismatch` both demote to the next
    tier and are recorded in :attr:`ReplayOutcome.demotions`; the verdict
    always comes from a tier that agreed with the reference semantics.
    """
    demotions: List[str] = []
    with _telemetry.span(
        "kernels.replay",
        design=getattr(system, "name", "?"),
        cycles=len(input_sequence),
    ) as replay_span:
        if use_compiled:
            try:
                kernel = get_kernel(system, cache_dir=cache_dir)
                run = kernel.replay_checked(input_sequence, stop_on_violation=False)
                _telemetry.counter("kernels.served.compiled")
                replay_span.set_outcome("compiled")
                return ReplayOutcome(
                    "compiled", run.first_violation, run.violated_property, demotions
                )
            except KernelUnavailable as error:
                demotions.append(f"compiled unavailable: {error}")
                _telemetry.counter("kernels.demotions.compiled_unavailable")
            except KernelMismatch as error:
                demotions.append(f"compiled demoted: {error}")
                _telemetry.counter("kernels.demotions.compiled_mismatch")
        if use_packed:
            from repro.netlist.bitsim import (
                PackedSimulator,
                SimulationMismatch,
                crosscheck_lane,
            )

            try:
                packed = PackedSimulator(system, lanes=1)
                run = packed.replay(input_sequence)
                crosscheck_lane(system, run, lane=0, cycles=8)
                _telemetry.counter("kernels.served.packed")
                replay_span.set_outcome("packed")
                if run.violation is not None:
                    return ReplayOutcome(
                        "packed",
                        run.violation.cycle,
                        run.violation.property_name,
                        demotions,
                    )
                return ReplayOutcome("packed", None, None, demotions)
            except SimulationMismatch as error:
                demotions.append(f"packed demoted: {error}")
                _telemetry.counter("kernels.demotions.packed_mismatch")
        outcome = _scalar_replay(system, input_sequence)
        outcome.demotions = demotions
        _telemetry.counter("kernels.served.scalar")
        replay_span.set_outcome("scalar")
        return outcome
