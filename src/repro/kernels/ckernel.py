"""ctypes bridge to the compiled per-design step kernel.

:class:`CompiledKernel` loads the design's shared object (building through
the on-disk cache on first use) and exposes the C replay loop to Python.  The
native tier is gated by the repo's cross-checked-verdict pattern:
:meth:`CompiledKernel.replay_checked` spot-checks the compiled trace against
the scalar reference interpreter cycle by cycle on a prefix of the run, and
any divergence raises :class:`KernelMismatch` — callers treat that exactly
like :class:`~repro.kernels.build.KernelUnavailable` and fall back to the
pure-Python tiers, so a miscompiled (or fault-injected) kernel can slow a
query down but can never change an answer.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.cache.key import kernel_key
from repro.netlist import TransitionSystem
from repro.netlist.simulate import Simulator
from repro.v2c.codegen import KERNEL_ABI_VERSION
from repro.v2c.softnetlist import SoftwareNetlist
from repro.kernels.build import KernelUnavailable, build_kernel

#: how many leading cycles of every checked replay are re-run in the scalar
#: interpreter (register values and property verdicts compared bit-exactly)
DEFAULT_CROSSCHECK_CYCLES = 8


class KernelMismatch(RuntimeError):
    """Compiled kernel output diverged from the scalar reference semantics."""


@dataclass
class KernelRun:
    """Decoded result of one C-side replay."""

    cycles: int
    first_violation: Optional[int]
    violated_property: Optional[str]
    #: per-cycle pre-update register values (only when a trace was recorded)
    states: List[Dict[str, int]]
    #: per-cycle property-violation bitmask (bit i = netlist.assertions[i])
    viol_masks: List[int]
    #: per-cycle environment-constraint-violation bitmask
    cviol_masks: List[int]


class CompiledKernel:
    """One design's compiled step function behind the flat uint64 ABI."""

    def __init__(
        self, system: TransitionSystem, cache_dir: Optional[Path] = None
    ) -> None:
        self.system = system
        self.netlist = SoftwareNetlist(system)
        self.register_order = list(self.netlist.registers)
        self.input_order = list(self.netlist.inputs)
        self.property_names = [a.name for a in self.netlist.assertions]
        self.key = kernel_key(system, KERNEL_ABI_VERSION)
        self.so_path = build_kernel(system, cache_dir=cache_dir)
        try:
            library = ctypes.CDLL(str(self.so_path))
        except OSError as error:
            raise KernelUnavailable(f"cannot load kernel {self.so_path}: {error}") from error
        prefix = self._symbol_prefix()
        try:
            self._kinit = getattr(library, f"{prefix}_kinit")
            self._kstep = getattr(library, f"{prefix}_kstep")
            self._kreplay = getattr(library, f"{prefix}_kreplay")
        except AttributeError as error:
            raise KernelUnavailable(f"kernel {self.so_path} lacks symbols: {error}") from error
        u64p = ctypes.POINTER(ctypes.c_uint64)
        self._kinit.argtypes = [u64p]
        self._kinit.restype = None
        self._kstep.argtypes = [u64p, u64p, ctypes.POINTER(ctypes.c_uint32)]
        self._kstep.restype = ctypes.c_uint32
        self._kreplay.argtypes = [u64p, u64p, ctypes.c_longlong, ctypes.c_int, u64p]
        self._kreplay.restype = ctypes.c_longlong
        self._library = library

    def _symbol_prefix(self) -> str:
        from repro.v2c.codegen import _sanitize

        return _sanitize(self.system.name or "design")

    # ------------------------------------------------------------------
    def _pack_inputs(self, input_sequence: Sequence[Mapping[str, int]]):
        n_inputs = len(self.input_order)
        flat = (ctypes.c_uint64 * (len(input_sequence) * max(1, n_inputs)))()
        for cycle, inputs in enumerate(input_sequence):
            base = cycle * n_inputs
            for offset, name in enumerate(self.input_order):
                flat[base + offset] = int(inputs.get(name, 0)) & 0xFFFFFFFFFFFFFFFF
        return flat

    def replay(
        self,
        input_sequence: Sequence[Mapping[str, int]],
        stop_on_violation: bool = False,
        want_trace: bool = True,
    ) -> KernelRun:
        """Run the C replay loop from reset over ``input_sequence``."""
        ncycles = len(input_sequence)
        n_regs = len(self.register_order)
        state = (ctypes.c_uint64 * max(1, n_regs))()
        self._kinit(state)
        flat_inputs = self._pack_inputs(input_sequence)
        trace = (
            (ctypes.c_uint64 * (ncycles * (n_regs + 2)))() if want_trace and ncycles else None
        )
        first = self._kreplay(
            state,
            flat_inputs,
            ncycles,
            1 if stop_on_violation else 0,
            trace if trace is not None else None,
        )
        states: List[Dict[str, int]] = []
        viol_masks: List[int] = []
        cviol_masks: List[int] = []
        recorded = ncycles if first < 0 or not stop_on_violation else int(first) + 1
        if trace is not None:
            stride = n_regs + 2
            for cycle in range(recorded):
                row = trace[cycle * stride : (cycle + 1) * stride]
                states.append(dict(zip(self.register_order, map(int, row[:n_regs]))))
                viol_masks.append(int(row[n_regs]))
                cviol_masks.append(int(row[n_regs + 1]))
        violated_name: Optional[str] = None
        if first >= 0 and viol_masks:
            cycle_mask = viol_masks[int(first)]
            bit = (cycle_mask & -cycle_mask).bit_length() - 1
            violated_name = self.property_names[bit]
        elif first >= 0:
            violated_name = self.property_names[0] if self.property_names else None
        return KernelRun(
            cycles=recorded,
            first_violation=int(first) if first >= 0 else None,
            violated_property=violated_name,
            states=states,
            viol_masks=viol_masks,
            cviol_masks=cviol_masks,
        )

    # ------------------------------------------------------------------
    def replay_checked(
        self,
        input_sequence: Sequence[Mapping[str, int]],
        stop_on_violation: bool = False,
        crosscheck_cycles: int = DEFAULT_CROSSCHECK_CYCLES,
    ) -> KernelRun:
        """Replay with the cross-checked-verdict gate engaged.

        The first ``crosscheck_cycles`` cycles of the compiled trace are
        re-executed in the scalar reference interpreter and compared register
        for register and property for property; any divergence — including
        one injected by the ``kernel-miscompile`` chaos fault — raises
        :class:`KernelMismatch` so the caller falls back to pure Python.
        """
        run = self.replay(input_sequence, stop_on_violation=stop_on_violation)
        from repro.faults import injection

        if injection.forge_kernel_output(self.system.name or "design"):
            run = _forged(run, self.property_names)
        self._crosscheck(input_sequence, run, crosscheck_cycles)
        return run

    def _crosscheck(
        self,
        input_sequence: Sequence[Mapping[str, int]],
        run: KernelRun,
        cycles: int,
    ) -> None:
        end = min(cycles, run.cycles, len(run.states))
        simulator = Simulator(self.system)
        from repro.exprs import evaluate

        for cycle in range(end):
            inputs = input_sequence[cycle]
            scalar_state = simulator.state
            for name in self.register_order:
                if run.states[cycle][name] != scalar_state[name]:
                    raise KernelMismatch(
                        f"{self.system.name}: compiled register {name!r} diverged at "
                        f"cycle {cycle}: kernel {run.states[cycle][name]}, "
                        f"scalar {scalar_state[name]}"
                    )
            env = simulator._environment(inputs)
            scalar_mask = 0
            for bit, assertion in enumerate(self.netlist.assertions):
                if evaluate(assertion.expr, env) == 0:
                    scalar_mask |= 1 << bit
            if run.viol_masks[cycle] != scalar_mask:
                raise KernelMismatch(
                    f"{self.system.name}: compiled property verdicts diverged at "
                    f"cycle {cycle}: kernel mask {run.viol_masks[cycle]:#x}, "
                    f"scalar mask {scalar_mask:#x}"
                )
            simulator.step(inputs)


def _forged(run: KernelRun, property_names: List[str]) -> KernelRun:
    """Corrupt a kernel run the way a miscompiled step function would.

    The forgery flips the verdict: a spurious violation is claimed at cycle 0
    and any real violations are erased — wrong in a way the per-cycle prefix
    cross-check detects deterministically (the scalar interpreter disagrees
    about cycle 0 already).
    """
    if not property_names or not run.viol_masks:
        return run
    viol_masks = [0] * len(run.viol_masks)
    viol_masks[0] = 1
    return KernelRun(
        cycles=run.cycles,
        first_violation=0,
        violated_property=property_names[0],
        states=run.states,
        viol_masks=viol_masks,
        cviol_masks=run.cviol_masks,
    )
