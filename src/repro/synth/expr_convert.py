"""Conversion of Verilog AST expressions to the word-level expression IR.

The converter works relative to a *scope*: an elaborated instance plus a
read environment that maps local signal names to IR expressions.  During the
symbolic execution of procedural blocks the read environment is updated after
blocking assignments, which gives the correct Verilog scheduling semantics.

Width handling follows a simplified but consistent version of the Verilog
rules: operands of binary operators are extended to a common width (constants
are resized to the width of the non-constant operand), assignments resize the
right-hand side to the width of the target, and comparison/reduction results
are one bit wide.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exprs import (
    Expr,
    bv_add,
    bv_and,
    bv_ashr,
    bv_concat,
    bv_const,
    bv_eq,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_mul,
    bv_ne,
    bv_neg,
    bv_nor,
    bv_not,
    bv_or,
    bv_reduce_and,
    bv_reduce_or,
    bv_reduce_xor,
    bv_resize,
    bv_sge,
    bv_sgt,
    bv_shl,
    bv_sle,
    bv_slt,
    bv_sub,
    bv_udiv,
    bv_uge,
    bv_ugt,
    bv_ule,
    bv_ult,
    bv_urem,
    bv_var,
    bv_xnor,
    bv_xor,
    bool_and,
    bool_not,
    bool_or,
    constant_fold,
    simplify,
    to_bool,
)
from repro.exprs.nodes import Const
from repro.verilog import ast
from repro.verilog.elaborate import ElaboratedInstance, Signal


class ConversionError(Exception):
    """Raised when an expression cannot be converted."""


#: width given to unsized integer literals before context resizing
UNSIZED_WIDTH = 32


class Scope:
    """Expression-conversion scope for one elaborated instance.

    ``reader`` maps a local signal name (or scalarized memory word name) to
    the IR expression giving its current value.  By default this is the flat
    hierarchical variable of the signal; the symbolic executor overrides
    entries after blocking assignments.
    """

    def __init__(
        self,
        instance: ElaboratedInstance,
        reader: Optional[Dict[str, Expr]] = None,
    ) -> None:
        self.instance = instance
        self.reader: Dict[str, Expr] = reader if reader is not None else {}

    # -- signal resolution ----------------------------------------------
    def flat_name(self, local_name: str) -> str:
        return self.instance.prefixed(local_name)

    def signal(self, name: str) -> Signal:
        return self.instance.signal(name)

    def read_word(self, word_name: str, width: int) -> Expr:
        """Read a scalar signal or memory word by its local (word) name."""
        value = self.reader.get(word_name)
        if value is not None:
            return value
        return bv_var(self.flat_name(word_name), width)

    def read_signal(self, name: str) -> Expr:
        """Read a declared (non-memory) signal or parameter by name."""
        if name in self.instance.params:
            return bv_const(self.instance.params[name], UNSIZED_WIDTH)
        signal = self.signal(name)
        if signal.is_memory:
            raise ConversionError(
                f"memory {name!r} used without an index in {self.instance.module_name}"
            )
        return self.read_word(name, signal.width)

    def copy(self) -> "Scope":
        return Scope(self.instance, dict(self.reader))


def coerce_to(expr: Expr, width: int) -> Expr:
    """Resize ``expr`` to ``width`` (truncate or zero-extend)."""
    return bv_resize(expr, width)


def _balance(left: Expr, right: Expr) -> tuple[Expr, Expr]:
    """Bring two operands to a common width following the simplified rules."""
    if left.width == right.width:
        return left, right
    if isinstance(right, Const) and not isinstance(left, Const):
        return left, bv_resize(right, left.width)
    if isinstance(left, Const) and not isinstance(right, Const):
        return bv_resize(left, right.width), right
    width = max(left.width, right.width)
    return bv_resize(left, width), bv_resize(right, width)


_BINARY_BUILDERS: Dict[str, Callable[[Expr, Expr], Expr]] = {
    "+": bv_add,
    "-": bv_sub,
    "*": bv_mul,
    "/": bv_udiv,
    "%": bv_urem,
    "&": bv_and,
    "|": bv_or,
    "^": bv_xor,
    "~^": bv_xnor,
    "^~": bv_xnor,
    "==": bv_eq,
    "===": bv_eq,
    "!=": bv_ne,
    "!==": bv_ne,
    "<": bv_ult,
    "<=": bv_ule,
    ">": bv_ugt,
    ">=": bv_uge,
}

_SIGNED_COMPARE: Dict[str, Callable[[Expr, Expr], Expr]] = {
    "<": bv_slt,
    "<=": bv_sle,
    ">": bv_sgt,
    ">=": bv_sge,
}


def convert(expr: ast.VExpr, scope: Scope) -> Expr:
    """Convert a Verilog AST expression to the IR within ``scope``."""
    result = _convert(expr, scope)
    return result


def convert_condition(expr: ast.VExpr, scope: Scope) -> Expr:
    """Convert an expression used as a truth value (1-bit result)."""
    return to_bool(convert(expr, scope))


def _convert(expr: ast.VExpr, scope: Scope) -> Expr:
    if isinstance(expr, ast.ENumber):
        width = expr.width if expr.width is not None else UNSIZED_WIDTH
        return bv_const(expr.value, width)

    if isinstance(expr, ast.EIdent):
        return scope.read_signal(expr.name)

    if isinstance(expr, ast.EUnary):
        return _convert_unary(expr, scope)

    if isinstance(expr, ast.EBinary):
        return _convert_binary(expr, scope)

    if isinstance(expr, ast.ETernary):
        cond = convert_condition(expr.cond, scope)
        then_value = _convert(expr.then_value, scope)
        else_value = _convert(expr.else_value, scope)
        then_value, else_value = _balance(then_value, else_value)
        return bv_ite(cond, then_value, else_value)

    if isinstance(expr, ast.EConcat):
        parts = [_convert(part, scope) for part in expr.parts]
        return bv_concat(*parts)

    if isinstance(expr, ast.EReplicate):
        count = _const_value(expr.count, scope)
        if count <= 0:
            raise ConversionError("replication count must be positive")
        value = _convert(expr.value, scope)
        return bv_concat(*([value] * count))

    if isinstance(expr, ast.EIndex):
        return _convert_index(expr, scope)

    if isinstance(expr, ast.ERange):
        return _convert_range(expr, scope)

    if isinstance(expr, ast.EFunctionCall):
        return _convert_call(expr, scope)

    raise ConversionError(f"unsupported expression {expr!r}")


def _convert_unary(expr: ast.EUnary, scope: Scope) -> Expr:
    operand = _convert(expr.operand, scope)
    op = expr.op
    if op == "~":
        return bv_not(operand)
    if op == "-":
        return bv_neg(operand)
    if op == "!":
        return bool_not(operand)
    if op == "&":
        return bv_reduce_and(operand)
    if op == "|":
        return bv_reduce_or(operand)
    if op == "^":
        return bv_reduce_xor(operand)
    if op == "~&":
        return bv_not(bv_reduce_and(operand))
    if op == "~|":
        return bv_not(bv_reduce_or(operand))
    if op in ("~^", "^~"):
        return bv_not(bv_reduce_xor(operand))
    raise ConversionError(f"unsupported unary operator {op!r}")


def _convert_binary(expr: ast.EBinary, scope: Scope) -> Expr:
    op = expr.op
    left = _convert(expr.left, scope)
    right = _convert(expr.right, scope)

    if op == "&&":
        return bool_and(left, right)
    if op == "||":
        return bool_or(left, right)
    if op in ("<<", "<<<"):
        return bv_shl(left, right)
    if op == ">>":
        return bv_lshr(left, right)
    if op == ">>>":
        return bv_ashr(left, right)
    if op == "**":
        base = _fold_to_int(left)
        exponent = _fold_to_int(right)
        if base is None or exponent is None:
            raise ConversionError("non-constant ** is not synthesizable")
        return bv_const(base**exponent, UNSIZED_WIDTH)

    signed = _is_signed(expr.left, scope) and _is_signed(expr.right, scope)
    if signed and op in _SIGNED_COMPARE:
        left, right = _balance(left, right)
        return _SIGNED_COMPARE[op](left, right)

    builder = _BINARY_BUILDERS.get(op)
    if builder is None:
        raise ConversionError(f"unsupported binary operator {op!r}")
    left, right = _balance(left, right)
    return builder(left, right)


def _is_signed(expr: ast.VExpr, scope: Scope) -> bool:
    if isinstance(expr, ast.EIdent):
        try:
            return scope.signal(expr.name).signed
        except Exception:
            return False
    if isinstance(expr, ast.EFunctionCall) and expr.name == "$signed":
        return True
    return False


def _convert_index(expr: ast.EIndex, scope: Scope) -> Expr:
    if not isinstance(expr.base, ast.EIdent):
        # bit-select of a computed expression
        base = _convert(expr.base, scope)
        return _dynamic_bit_select(base, expr.index, scope)
    name = expr.base.name
    if name in scope.instance.params:
        base = scope.read_signal(name)
        return _dynamic_bit_select(base, expr.index, scope)
    signal = scope.signal(name)
    if signal.is_memory:
        return _memory_read(signal, expr.index, scope)
    base = scope.read_signal(name)
    return _bit_select(base, signal, expr.index, scope)


def _bit_select(base: Expr, signal: Signal, index_expr: ast.VExpr, scope: Scope) -> Expr:
    index_const = _fold_to_int(_convert(index_expr, scope))
    if index_const is not None:
        position = index_const - signal.lsb if signal.msb >= signal.lsb else signal.lsb - index_const
        if not 0 <= position < signal.width:
            raise ConversionError(
                f"bit-select index {index_const} out of range for {signal.name!r}"
            )
        return bv_extract(base, position, position)
    return _dynamic_bit_select(base, index_expr, scope)


def _dynamic_bit_select(base: Expr, index_expr: ast.VExpr, scope: Scope) -> Expr:
    index = _convert(index_expr, scope)
    shifted = bv_lshr(base, coerce_to(index, base.width))
    return bv_extract(shifted, 0, 0)


def _memory_read(signal: Signal, index_expr: ast.VExpr, scope: Scope) -> Expr:
    index = _convert(index_expr, scope)
    index_const = _fold_to_int(index)
    words = signal.word_names()
    if index_const is not None:
        offset = index_const - signal.array_lo
        if not 0 <= offset < signal.array_size:
            raise ConversionError(
                f"memory index {index_const} out of range for {signal.name!r}"
            )
        return scope.read_word(words[offset], signal.width)
    # non-constant index: priority multiplexer over all words
    result = scope.read_word(words[0], signal.width)
    for offset in range(1, signal.array_size):
        address = bv_const(offset + signal.array_lo, index.width)
        result = bv_ite(
            bv_eq(index, address),
            scope.read_word(words[offset], signal.width),
            result,
        )
    return result


def _convert_range(expr: ast.ERange, scope: Scope) -> Expr:
    if not isinstance(expr.base, ast.EIdent):
        base = _convert(expr.base, scope)
        msb = _const_value(expr.msb, scope)
        lsb = _const_value(expr.lsb, scope)
        return bv_extract(base, msb, lsb)
    signal = scope.signal(expr.base.name)
    base = scope.read_signal(expr.base.name)
    msb = _const_value(expr.msb, scope)
    lsb = _const_value(expr.lsb, scope)
    if signal.msb >= signal.lsb:
        hi = msb - signal.lsb
        lo = lsb - signal.lsb
    else:
        hi = signal.lsb - lsb
        lo = signal.lsb - msb
    if not (0 <= lo <= hi < signal.width):
        raise ConversionError(
            f"part-select [{msb}:{lsb}] out of range for {signal.name!r}"
        )
    return bv_extract(base, hi, lo)


def _convert_call(expr: ast.EFunctionCall, scope: Scope) -> Expr:
    if expr.name in ("$signed", "$unsigned"):
        return _convert(expr.args[0], scope)
    if expr.name == "$clog2":
        value = _const_value(expr.args[0], scope)
        bits = 0
        value -= 1
        while value > 0:
            bits += 1
            value >>= 1
        return bv_const(bits, UNSIZED_WIDTH)
    raise ConversionError(f"unsupported function call {expr.name!r}")


def _const_value(expr: ast.VExpr, scope: Scope) -> int:
    value = _fold_to_int(_convert(expr, scope))
    if value is None:
        raise ConversionError(f"expected a constant expression, got {expr!r}")
    return value


def _fold_to_int(expr: Expr) -> Optional[int]:
    folded = constant_fold(simplify(expr))
    if isinstance(folded, Const):
        return folded.value
    return None
