"""Synthesis of elaborated Verilog RTL into a word-level transition system.

The synthesizer performs the dependency analysis between clocked blocks and
continuous assignments described in Section III.B of the paper and produces a
:class:`repro.netlist.TransitionSystem`:

* continuous assignments and combinational ``always`` blocks become *wires*
  (named combinational definitions),
* clocked ``always`` blocks are symbolically executed to obtain one
  next-state function per register, respecting blocking/non-blocking
  assignment semantics,
* 1-D memories are scalarized into one register per word,
* the module hierarchy is flattened with dotted instance prefixes
  (``fifo.head``), preserving the word-level structure of the RTL.
"""

from repro.synth.synthesize import SynthesisError, synthesize, synthesize_file, synthesize_source

__all__ = ["SynthesisError", "synthesize", "synthesize_file", "synthesize_source"]
