"""RTL-to-transition-system synthesis.

The synthesizer consumes an elaborated design (see
:mod:`repro.verilog.elaborate`) and produces the flat word-level
:class:`repro.netlist.TransitionSystem` that all downstream flows share:

* each register assigned in a clocked ``always`` block becomes a state
  variable whose next-state function is obtained by symbolic execution of the
  block (respecting blocking/non-blocking assignment order),
* combinational ``always`` blocks and continuous assignments become wires,
* module boundaries become wire aliases for the port connections, with
  hierarchical dotted names (``fifo.head``) preserving the structure,
* 1-D memories are scalarized into one register (or wire) per word,
* SVA ``assert property`` items become safety properties.

Designs with combinational loops, transparent latches (incompletely assigned
combinational signals) or multiple clocks are rejected, which matches the
limitations of v2c stated in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.exprs import (
    Expr,
    bv_and,
    bv_const,
    bv_eq,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_not,
    bv_or,
    bv_resize,
    bv_shl,
    bv_var,
    bv_zero_extend,
    collect_vars,
    constant_fold,
    simplify,
)
from repro.exprs.nodes import Const
from repro.netlist import TransitionSystem
from repro.synth.expr_convert import (
    ConversionError,
    Scope,
    coerce_to,
    convert,
    convert_condition,
)
from repro.verilog import ast
from repro.verilog.elaborate import (
    ElaboratedDesign,
    ElaboratedInstance,
    ElaborationError,
    Signal,
    elaborate,
)
from repro.verilog.parser import parse_source


class SynthesisError(Exception):
    """Raised when a design cannot be synthesized into a transition system."""


#: names conventionally recognised as clocks even without an edge use
_CLOCK_NAME_HINTS = {"clk", "clock", "clk_i", "i_clk"}

#: maximum number of iterations when unrolling procedural for loops
MAX_LOOP_UNROLL = 4096


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def synthesize_source(
    text: str,
    top: Optional[str] = None,
    parameter_overrides: Optional[Dict[str, int]] = None,
    name: Optional[str] = None,
) -> TransitionSystem:
    """Parse, elaborate and synthesize Verilog source text."""
    design = elaborate(parse_source(text), top=top, parameter_overrides=parameter_overrides)
    return synthesize(design, name=name)


def synthesize_file(
    path: str,
    top: Optional[str] = None,
    parameter_overrides: Optional[Dict[str, int]] = None,
) -> TransitionSystem:
    """Synthesize a Verilog file."""
    with open(path, "r", encoding="utf-8") as handle:
        return synthesize_source(handle.read(), top=top, parameter_overrides=parameter_overrides)


def synthesize(design: ElaboratedDesign, name: Optional[str] = None) -> TransitionSystem:
    """Synthesize an elaborated design into a transition system."""
    builder = _Synthesizer(design)
    system = builder.run()
    if name:
        system.name = name
    return system


# ---------------------------------------------------------------------------
# symbolic execution of procedural blocks
# ---------------------------------------------------------------------------


@dataclass
class _ProcState:
    """Mutable state of the symbolic executor for one procedural block."""

    reader: Dict[str, Expr] = field(default_factory=dict)  # blocking view
    nonblocking: Dict[str, Expr] = field(default_factory=dict)
    assigned: Set[str] = field(default_factory=set)

    def copy(self) -> "_ProcState":
        return _ProcState(dict(self.reader), dict(self.nonblocking), set(self.assigned))


class _ProcExecutor:
    """Symbolically executes one always/initial block of one instance."""

    def __init__(self, instance: ElaboratedInstance, clocked: bool) -> None:
        self.instance = instance
        self.clocked = clocked

    # -- helpers ---------------------------------------------------------
    def _flat(self, word: str) -> str:
        return self.instance.prefixed(word)

    def _hold_value(self, word: str, width: int) -> Expr:
        return bv_var(self._flat(word), width)

    def _scope(self, state: _ProcState) -> Scope:
        return Scope(self.instance, state.reader)

    def _word_width(self, word: str) -> int:
        if word in self.instance.signals:
            return self.instance.signals[word].width
        # scalarized memory word: strip the trailing "__<index>" suffix
        base = word.rsplit("__", 1)[0]
        return self.instance.signal(base).width

    # -- execution ---------------------------------------------------------
    def execute(self, body: ast.VStmt) -> _ProcState:
        state = _ProcState()
        self._exec(body, state)
        return state

    def _exec(self, stmt: ast.VStmt, state: _ProcState) -> None:
        if isinstance(stmt, ast.SNull) or isinstance(stmt, ast.SSystemCall):
            return
        if isinstance(stmt, ast.SBlock):
            for inner in stmt.statements:
                self._exec(inner, state)
            return
        if isinstance(stmt, ast.SAssign):
            self._exec_assign(stmt, state)
            return
        if isinstance(stmt, ast.SIf):
            self._exec_if(stmt, state)
            return
        if isinstance(stmt, ast.SCase):
            self._exec(self._desugar_case(stmt), state)
            return
        if isinstance(stmt, ast.SFor):
            self._exec_for(stmt, state)
            return
        raise SynthesisError(f"unsupported statement {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.SFor, state: _ProcState) -> None:
        self._exec_assign(stmt.init, state)
        for _ in range(MAX_LOOP_UNROLL):
            condition = constant_fold(
                simplify(convert_condition(stmt.condition, self._scope(state)))
            )
            if not isinstance(condition, Const):
                raise SynthesisError(
                    "for-loop condition does not reduce to a constant during unrolling"
                )
            if condition.value == 0:
                return
            self._exec(stmt.body, state)
            self._exec_assign(stmt.update, state)
        raise SynthesisError(f"for-loop exceeded {MAX_LOOP_UNROLL} iterations")

    def _exec_if(self, stmt: ast.SIf, state: _ProcState) -> None:
        condition = simplify(convert_condition(stmt.condition, self._scope(state)))
        if isinstance(condition, Const):
            branch = stmt.then_branch if condition.value else stmt.else_branch
            if branch is not None:
                self._exec(branch, state)
            return
        then_state = state.copy()
        else_state = state.copy()
        self._exec(stmt.then_branch, then_state)
        if stmt.else_branch is not None:
            self._exec(stmt.else_branch, else_state)
        self._merge(condition, then_state, else_state, state)

    def _merge(
        self,
        condition: Expr,
        then_state: _ProcState,
        else_state: _ProcState,
        state: _ProcState,
    ) -> None:
        # blocking view
        for word in set(then_state.reader) | set(else_state.reader):
            width = self._word_width(word)
            base = state.reader.get(word, self._hold_value(word, width))
            then_value = then_state.reader.get(word, base)
            else_value = else_state.reader.get(word, base)
            if then_value == else_value:
                state.reader[word] = then_value
            else:
                state.reader[word] = bv_ite(condition, then_value, else_value)
        # non-blocking view: default is the pending value, else the register itself
        for word in set(then_state.nonblocking) | set(else_state.nonblocking):
            width = self._word_width(word)
            base = state.nonblocking.get(word, self._hold_value(word, width))
            then_value = then_state.nonblocking.get(word, base)
            else_value = else_state.nonblocking.get(word, base)
            if then_value == else_value:
                state.nonblocking[word] = then_value
            else:
                state.nonblocking[word] = bv_ite(condition, then_value, else_value)
        state.assigned |= then_state.assigned | else_state.assigned

    def _desugar_case(self, stmt: ast.SCase) -> ast.VStmt:
        """Lower a case statement into an if/else chain (priority semantics)."""
        default_body: ast.VStmt = ast.SNull()
        arms: List[Tuple[List[ast.VExpr], ast.VStmt]] = []
        for item in stmt.items:
            if item.labels is None:
                default_body = item.body
            else:
                arms.append((item.labels, item.body))
        result: ast.VStmt = default_body
        for labels, body in reversed(arms):
            condition: Optional[ast.VExpr] = None
            for label in labels:
                comparison = ast.EBinary(op="==", left=stmt.subject, right=label)
                condition = (
                    comparison
                    if condition is None
                    else ast.EBinary(op="||", left=condition, right=comparison)
                )
            result = ast.SIf(condition=condition, then_branch=body, else_branch=result)
        return result

    # -- assignments ---------------------------------------------------------
    def _exec_assign(self, stmt: ast.SAssign, state: _ProcState) -> None:
        scope = self._scope(state)
        value = convert(stmt.value, scope)
        self._assign_target(stmt.target, value, stmt.blocking, state)

    def _assign_target(
        self, target: ast.VExpr, value: Expr, blocking: bool, state: _ProcState
    ) -> None:
        if isinstance(target, ast.EIdent):
            self._assign_word_target(target.name, value, blocking, state)
            return
        if isinstance(target, ast.EConcat):
            self._assign_concat(target, value, blocking, state)
            return
        if isinstance(target, ast.EIndex) and isinstance(target.base, ast.EIdent):
            self._assign_indexed(target, value, blocking, state)
            return
        if isinstance(target, ast.ERange) and isinstance(target.base, ast.EIdent):
            self._assign_range(target, value, blocking, state)
            return
        raise SynthesisError(f"unsupported assignment target {target!r}")

    def _assign_concat(
        self, target: ast.EConcat, value: Expr, blocking: bool, state: _ProcState
    ) -> None:
        widths = []
        for part in target.parts:
            widths.append(self._target_width(part))
        total = sum(widths)
        value = coerce_to(value, total)
        # first part is the most significant
        position = total
        for part, width in zip(target.parts, widths):
            position -= width
            piece = bv_extract(value, position + width - 1, position)
            self._assign_target(part, piece, blocking, state)

    def _target_width(self, target: ast.VExpr) -> int:
        if isinstance(target, ast.EIdent):
            return self.instance.signal(target.name).width
        if isinstance(target, ast.EIndex):
            return 1
        if isinstance(target, ast.ERange) and isinstance(target.base, ast.EIdent):
            scope = Scope(self.instance)
            from repro.synth.expr_convert import _const_value  # local import to avoid cycle

            msb = _const_value(target.msb, scope)
            lsb = _const_value(target.lsb, scope)
            return abs(msb - lsb) + 1
        raise SynthesisError(f"unsupported concat target part {target!r}")

    def _assign_word_target(
        self, name: str, value: Expr, blocking: bool, state: _ProcState
    ) -> None:
        signal = self.instance.signal(name)
        if signal.is_memory:
            raise SynthesisError(f"memory {name!r} must be assigned through an index")
        self._store(name, coerce_to(value, signal.width), blocking, state)

    def _assign_indexed(
        self, target: ast.EIndex, value: Expr, blocking: bool, state: _ProcState
    ) -> None:
        name = target.base.name
        signal = self.instance.signal(name)
        scope = self._scope(state)
        index = convert(target.index, scope)
        index_const = constant_fold(simplify(index))
        if signal.is_memory:
            value = coerce_to(value, signal.width)
            words = signal.word_names()
            if isinstance(index_const, Const):
                offset = index_const.value - signal.array_lo
                if not 0 <= offset < signal.array_size:
                    raise SynthesisError(
                        f"memory index {index_const.value} out of range for {name!r}"
                    )
                self._store(words[offset], value, blocking, state)
                return
            for offset, word in enumerate(words):
                address = bv_const(offset + signal.array_lo, index.width)
                old = self._current_value(word, signal.width, blocking, state)
                self._store(
                    word, bv_ite(bv_eq(index, address), value, old), blocking, state
                )
            return
        # bit-select on a scalar signal: read-modify-write
        old = self._current_value(name, signal.width, blocking, state)
        bit = coerce_to(value, 1)
        if isinstance(index_const, Const):
            position = (
                index_const.value - signal.lsb
                if signal.msb >= signal.lsb
                else signal.lsb - index_const.value
            )
            if not 0 <= position < signal.width:
                raise SynthesisError(f"bit index out of range in assignment to {name!r}")
            mask = bv_const(((1 << signal.width) - 1) ^ (1 << position), signal.width)
            update = bv_shl(
                coerce_to(bit, signal.width), bv_const(position, signal.width)
            )
        else:
            shift = coerce_to(index, signal.width)
            mask = bv_not(bv_shl(bv_const(1, signal.width), shift))
            update = bv_shl(coerce_to(bit, signal.width), shift)
        new_value = bv_or(bv_and(old, mask), update)
        self._store(name, new_value, blocking, state)

    def _assign_range(
        self, target: ast.ERange, value: Expr, blocking: bool, state: _ProcState
    ) -> None:
        name = target.base.name
        signal = self.instance.signal(name)
        scope = self._scope(state)
        from repro.synth.expr_convert import _const_value

        msb = _const_value(target.msb, scope)
        lsb = _const_value(target.lsb, scope)
        if signal.msb >= signal.lsb:
            hi = msb - signal.lsb
            lo = lsb - signal.lsb
        else:
            hi = signal.lsb - lsb
            lo = signal.lsb - msb
        if not (0 <= lo <= hi < signal.width):
            raise SynthesisError(f"part-select out of range in assignment to {name!r}")
        width = hi - lo + 1
        old = self._current_value(name, signal.width, blocking, state)
        piece = coerce_to(value, width)
        mask_value = ((1 << signal.width) - 1) ^ (((1 << width) - 1) << lo)
        mask = bv_const(mask_value, signal.width)
        update = bv_shl(
            coerce_to(piece, signal.width), bv_const(lo, signal.width)
        )
        new_value = bv_or(bv_and(old, mask), update)
        self._store(name, new_value, blocking, state)

    def _current_value(
        self, word: str, width: int, blocking: bool, state: _ProcState
    ) -> Expr:
        if not blocking and word in state.nonblocking:
            return state.nonblocking[word]
        if word in state.reader:
            return state.reader[word]
        return self._hold_value(word, width)

    def _store(self, word: str, value: Expr, blocking: bool, state: _ProcState) -> None:
        value = simplify(value)
        if blocking:
            state.reader[word] = value
        else:
            state.nonblocking[word] = value
        state.assigned.add(word)


# ---------------------------------------------------------------------------
# the synthesizer
# ---------------------------------------------------------------------------


class _Synthesizer:
    """Builds the flat transition system from an elaborated design."""

    def __init__(self, design: ElaboratedDesign) -> None:
        self.design = design
        self.register_next: Dict[str, Expr] = {}
        self.register_width: Dict[str, int] = {}
        self.register_init: Dict[str, int] = {}
        self.wire_defs: Dict[str, Expr] = {}
        self.wire_width: Dict[str, int] = {}
        self.properties: List[Tuple[str, Expr]] = []
        self.clock_nets: Set[str] = set()
        self.declared: Dict[str, int] = {}  # flat name -> width for every word

    # -- top-level -------------------------------------------------------
    def run(self) -> TransitionSystem:
        self._collect_clocks()
        for instance in self.design.all_instances():
            self._declare_words(instance)
        for instance in self.design.all_instances():
            try:
                self._process_instance(instance)
            except (ConversionError, ElaborationError) as error:
                raise SynthesisError(
                    f"in module {instance.module_name} ({instance.path or 'top'}): {error}"
                ) from error
        return self._build_system()

    # -- clock identification -----------------------------------------------
    def _collect_clocks(self) -> None:
        """Find clock nets: signals used with an edge in any sensitivity list.

        Clock nets are traced through simple identifier port connections so
        that the top-level clock input is recognised as a clock even though
        the edge use happens inside a child instance.
        """
        parents: Dict[str, str] = {}

        def find(name: str) -> str:
            root = name
            while parents.get(root, root) != root:
                root = parents[root]
            parents[name] = root
            return root

        def union(a: str, b: str) -> None:
            parents[find(a)] = find(b)

        edge_signals: Set[str] = set()
        for instance in self.design.all_instances():
            for block in instance.always_blocks:
                if not block.sensitivity:
                    continue
                for item in block.sensitivity:
                    if item.edge is not None:
                        edge_signals.add(instance.prefixed(item.signal))
            for child in instance.children:
                for port, expr in child.port_map.items():
                    if isinstance(expr, ast.EIdent) and expr.name in instance.signals:
                        union(
                            child.design.prefixed(port),
                            instance.prefixed(expr.name),
                        )
        # union-find closure: mark every net connected to an edge signal
        edge_roots = {find(sig) for sig in edge_signals}
        all_names = set(parents) | edge_signals
        self.clock_nets = {name for name in all_names if find(name) in edge_roots}
        self.clock_nets |= edge_signals
        # conventional clock names on the top module are treated as clocks too
        for signal in self.design.top.signals.values():
            if signal.direction == "input" and signal.name.lower() in _CLOCK_NAME_HINTS:
                self.clock_nets.add(self.design.top.prefixed(signal.name))

    def _is_clock(self, flat_name: str) -> bool:
        return flat_name in self.clock_nets

    # -- declarations ------------------------------------------------------
    def _declare_words(self, instance: ElaboratedInstance) -> None:
        for signal in instance.signals.values():
            for word in signal.word_names():
                self.declared[instance.prefixed(word)] = signal.width

    # -- per-instance processing ---------------------------------------------
    def _process_instance(self, instance: ElaboratedInstance) -> None:
        self._process_always_blocks(instance)
        self._process_continuous_assigns(instance)
        self._process_initial_blocks(instance)
        self._process_child_connections(instance)
        self._process_assertions(instance)
        self._apply_declared_inits(instance)

    def _block_is_clocked(self, block: ast.AlwaysBlock) -> bool:
        if not block.sensitivity:
            return False
        return any(item.edge is not None for item in block.sensitivity)

    def _process_always_blocks(self, instance: ElaboratedInstance) -> None:
        clocks_in_instance: Set[str] = set()
        for block in instance.always_blocks:
            if self._block_is_clocked(block):
                for item in block.sensitivity:
                    if item.edge is not None:
                        clocks_in_instance.add(item.signal)
        for block in instance.always_blocks:
            executor = _ProcExecutor(instance, clocked=self._block_is_clocked(block))
            state = executor.execute(block.body)
            if self._block_is_clocked(block):
                self._commit_clocked(instance, state)
            else:
                self._commit_combinational(instance, state)

    def _commit_clocked(self, instance: ElaboratedInstance, state: _ProcState) -> None:
        # non-blocking assignments take priority for the registered value;
        # blocking-assigned registers use their final blocking value.
        next_values: Dict[str, Expr] = {}
        for word in state.assigned:
            if word in state.nonblocking:
                next_values[word] = state.nonblocking[word]
            elif word in state.reader:
                next_values[word] = state.reader[word]
        for word, expr in next_values.items():
            flat = instance.prefixed(word)
            if self._is_clock(flat):
                continue
            if flat in self.register_next:
                raise SynthesisError(
                    f"register {flat!r} is assigned in more than one clocked block"
                )
            if flat in self.wire_defs:
                raise SynthesisError(
                    f"signal {flat!r} is driven both combinationally and by a clocked block"
                )
            width = self.declared[flat]
            self.register_next[flat] = simplify(coerce_to(expr, width))
            self.register_width[flat] = width

    def _commit_combinational(self, instance: ElaboratedInstance, state: _ProcState) -> None:
        final: Dict[str, Expr] = {}
        final.update(state.reader)
        final.update(state.nonblocking)
        for word, expr in final.items():
            flat = instance.prefixed(word)
            if self._is_clock(flat):
                continue
            width = self.declared[flat]
            definition = simplify(coerce_to(expr, width))
            self._check_no_self_reference(flat, definition)
            self._add_wire(flat, definition, width)

    def _check_no_self_reference(self, flat: str, definition: Expr) -> None:
        if any(var.name == flat for var in collect_vars(definition)):
            raise SynthesisError(
                f"combinational signal {flat!r} depends on itself "
                "(incomplete assignment infers a latch, which is not supported)"
            )

    def _add_wire(self, flat: str, definition: Expr, width: int) -> None:
        if flat in self.wire_defs:
            raise SynthesisError(f"signal {flat!r} has multiple combinational drivers")
        if flat in self.register_next:
            raise SynthesisError(
                f"signal {flat!r} is driven both combinationally and by a clocked block"
            )
        self.wire_defs[flat] = definition
        self.wire_width[flat] = width

    def _process_continuous_assigns(self, instance: ElaboratedInstance) -> None:
        scope = Scope(instance)
        for item in instance.assigns:
            if not isinstance(item.target, ast.EIdent):
                raise SynthesisError(
                    f"continuous assignment to {item.target!r} is not supported "
                    "(only whole-signal targets)"
                )
            name = item.target.name
            signal = instance.signal(name)
            if signal.is_memory:
                raise SynthesisError(f"continuous assignment to memory {name!r}")
            definition = simplify(coerce_to(convert(item.value, scope), signal.width))
            flat = instance.prefixed(name)
            self._check_no_self_reference(flat, definition)
            self._add_wire(flat, definition, signal.width)

    def _process_initial_blocks(self, instance: ElaboratedInstance) -> None:
        for block in instance.initial_blocks:
            executor = _ProcExecutor(instance, clocked=True)
            state = executor.execute(block.body)
            merged: Dict[str, Expr] = {}
            merged.update(state.reader)
            merged.update(state.nonblocking)
            for word, expr in merged.items():
                folded = constant_fold(simplify(expr))
                if not isinstance(folded, Const):
                    raise SynthesisError(
                        f"initial value of {word!r} does not reduce to a constant"
                    )
                self.register_init[instance.prefixed(word)] = folded.value

    def _apply_declared_inits(self, instance: ElaboratedInstance) -> None:
        for signal in instance.signals.values():
            if signal.init is None:
                continue
            for word in signal.word_names():
                self.register_init.setdefault(instance.prefixed(word), signal.init)

    def _process_child_connections(self, instance: ElaboratedInstance) -> None:
        scope = Scope(instance)
        for child in instance.children:
            child_instance = child.design
            for port, expr in child.port_map.items():
                if expr is None:
                    continue
                signal = child_instance.signal(port)
                flat_port = child_instance.prefixed(port)
                if signal.direction == "input":
                    if self._is_clock(flat_port):
                        continue
                    definition = simplify(coerce_to(convert(expr, scope), signal.width))
                    self._add_wire(flat_port, definition, signal.width)
                elif signal.direction == "output":
                    if not isinstance(expr, ast.EIdent):
                        raise SynthesisError(
                            f"output port {port!r} of {child.instance_name!r} must be "
                            "connected to a simple signal"
                        )
                    parent_signal = instance.signal(expr.name)
                    flat_parent = instance.prefixed(expr.name)
                    definition = coerce_to(
                        bv_var(flat_port, signal.width), parent_signal.width
                    )
                    self._add_wire(flat_parent, definition, parent_signal.width)
                else:
                    raise SynthesisError("inout ports are not supported")

    def _process_assertions(self, instance: ElaboratedInstance) -> None:
        scope = Scope(instance)
        for assertion in instance.assertions:
            expr = convert_condition(assertion.expr, scope)
            name = (
                f"{instance.path}.{assertion.name}" if instance.path else assertion.name
            )
            self.properties.append((name, simplify(expr)))

    # -- final assembly -------------------------------------------------------
    def _build_system(self) -> TransitionSystem:
        top = self.design.top
        system = TransitionSystem(top.module_name)
        system.source = top.module_name

        top_inputs = {
            top.prefixed(signal.name)
            for signal in top.signals.values()
            if signal.direction == "input"
        }

        # classify every declared word
        for flat, width in self.declared.items():
            if self._is_clock(flat):
                continue
            if flat in self.register_next:
                init = self.register_init.get(flat, 0)
                system.add_state_var(flat, width, init=init, next_expr=self.register_next[flat])
            elif flat in self.wire_defs:
                system.add_wire(flat, self.wire_defs[flat])
            elif flat in top_inputs:
                system.add_input(flat, width)
            else:
                # undriven signal (e.g. unconnected child input): free input
                system.add_input(flat, width)

        for name, expr in self.properties:
            system.add_property(name, expr)

        system.validate()
        return system
