"""Cycle-accurate simulation of a transition system.

The simulator is the executable reference semantics of the word-level
netlist.  It is used to

* replay counterexample traces produced by the verification engines,
* cross-validate the generated software-netlist (the paper's Section III.C
  equivalence argument: bugs must manifest in the same clock cycle in both
  models), and
* drive the example applications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exprs import evaluate
from repro.exprs.nodes import to_unsigned
from repro.netlist.transition import TransitionSystem, TransitionSystemError


@dataclass
class TraceStep:
    """Signal valuation of one clock cycle."""

    cycle: int
    inputs: Dict[str, int] = field(default_factory=dict)
    state: Dict[str, int] = field(default_factory=dict)
    wires: Dict[str, int] = field(default_factory=dict)

    def value(self, name: str) -> int:
        """Return the value of any signal recorded in this step."""
        for table in (self.state, self.inputs, self.wires):
            if name in table:
                return table[name]
        raise KeyError(name)


@dataclass
class Trace:
    """A sequence of trace steps, optionally ending in a property violation."""

    steps: List[TraceStep] = field(default_factory=list)
    violated_property: Optional[str] = None

    def __len__(self) -> int:
        return len(self.steps)

    def last(self) -> TraceStep:
        return self.steps[-1]

    def values_of(self, name: str) -> List[int]:
        """Return the per-cycle values of one signal."""
        return [step.value(name) for step in self.steps]


class Simulator:
    """Executes a transition system cycle by cycle."""

    def __init__(self, system: TransitionSystem) -> None:
        system.validate()
        self.system = system
        self._state: Dict[str, int] = {}
        self.cycle = 0
        self.reset()

    # ------------------------------------------------------------------
    # state control
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset all registers to their initial values."""
        self._state = {
            name: evaluate(init_expr, {}) for name, init_expr in self.system.init.items()
        }
        self.cycle = 0

    @property
    def state(self) -> Dict[str, int]:
        """Current register values."""
        return dict(self._state)

    def set_state(self, values: Mapping[str, int]) -> None:
        """Force the current register values (used when replaying traces)."""
        for name, value in values.items():
            if name not in self.system.state_vars:
                raise TransitionSystemError(f"unknown register {name!r}")
            self._state[name] = to_unsigned(value, self.system.state_vars[name])

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _environment(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        env: Dict[str, int] = dict(self._state)
        for name, width in self.system.inputs.items():
            value = inputs.get(name, 0)
            env[name] = to_unsigned(value, width)
        # resolve wires (definitions may refer to other wires; iterate to fixpoint)
        pending = dict(self.system.wires)
        for _ in range(len(pending) + 1):
            if not pending:
                break
            for name, expr in list(pending.items()):
                try:
                    env[name] = evaluate(expr, env)
                    del pending[name]
                except Exception:
                    continue
        if pending:
            raise TransitionSystemError(
                f"could not resolve wires {sorted(pending)} during simulation"
            )
        return env

    def evaluate_signal(self, name: str, inputs: Optional[Mapping[str, int]] = None) -> int:
        """Evaluate any signal in the current cycle for the given inputs."""
        env = self._environment(inputs or {})
        if name in env:
            return env[name]
        raise KeyError(name)

    def check_properties(self, inputs: Optional[Mapping[str, int]] = None) -> Optional[str]:
        """Return the name of the first violated property in the current cycle, or None."""
        env = self._environment(inputs or {})
        for prop in self.system.properties:
            if evaluate(prop.expr, env) == 0:
                return prop.name
        return None

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, inputs: Optional[Mapping[str, int]] = None) -> TraceStep:
        """Advance one clock cycle with the given input values (default 0)."""
        inputs = dict(inputs or {})
        env = self._environment(inputs)
        step = TraceStep(
            cycle=self.cycle,
            inputs={name: env[name] for name in self.system.inputs},
            state=dict(self._state),
            wires={name: env[name] for name in self.system.wires},
        )
        next_state = {
            name: evaluate(expr, env) for name, expr in self.system.next.items()
        }
        self._state = next_state
        self.cycle += 1
        return step

    def run(
        self,
        input_sequence: Sequence[Mapping[str, int]],
        stop_on_violation: bool = True,
    ) -> Trace:
        """Run the simulator for one step per element of ``input_sequence``."""
        trace = Trace()
        for inputs in input_sequence:
            violated = self.check_properties(inputs)
            trace.steps.append(self.step(inputs))
            if violated is not None:
                trace.violated_property = violated
                if stop_on_violation:
                    return trace
        return trace

    def run_random(
        self,
        cycles: int,
        seed: int = 0,
        stop_on_violation: bool = True,
    ) -> Trace:
        """Run with uniformly random primary inputs for ``cycles`` cycles."""
        rng = random.Random(seed)
        sequence = []
        for _ in range(cycles):
            sequence.append(
                {
                    name: rng.getrandbits(width)
                    for name, width in self.system.inputs.items()
                }
            )
        return self.run(sequence, stop_on_violation=stop_on_violation)


def replay(system: TransitionSystem, input_sequence: Sequence[Mapping[str, int]]) -> Trace:
    """Convenience helper: simulate ``system`` from reset on a fixed input sequence."""
    return Simulator(system).run(input_sequence, stop_on_violation=False)
