"""Word-level transition system ("word-level netlist").

The transition system is the central intermediate representation of the tool
flow: the Verilog synthesizer produces it, the bit-level flow bit-blasts it to
an AIG, the v2c backend prints it as a software-netlist in ANSI-C, and the
verification engines analyse it directly.
"""

from repro.netlist.transition import (
    SafetyProperty,
    TransitionSystem,
    TransitionSystemError,
)
from repro.netlist.simulate import Simulator, Trace, TraceStep

__all__ = [
    "SafetyProperty",
    "TransitionSystem",
    "TransitionSystemError",
    "Simulator",
    "Trace",
    "TraceStep",
]
