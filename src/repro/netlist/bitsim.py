"""Bit-parallel (bit-plane) packed simulation of a transition system.

The scalar reference simulator (:mod:`repro.netlist.simulate`) evaluates one
input vector per expression-tree walk — a pure-Python interpreter loop that
floors witness replay, random falsification and invariant filtering.  This
module escapes that floor without leaving Python: every signal of width ``w``
is represented *transposed*, as a tuple of ``w`` Python ints (bit planes)
where bit ``i`` of plane ``b`` carries bit ``b`` of lane ``i``'s value.  One
bitwise int operation then advances all lanes at once — 64 by default, or any
wider word for parameter sweeps — and the per-design step function is emitted
once as straight-line Python source (no per-node dispatch, common
subexpressions bound to temporaries) and ``compile()``d.

Lowering follows the classic bit-parallel recipes: ripple carry/borrow for
add/sub/compares, shift-and-add multiplication, barrel shifters muxed on the
shift amount's planes, sign-plane flips for the signed comparisons, and a
per-lane transpose fallback for the (rare) division operators.

The packed tier is gated by the repo's cross-checked-verdict pattern: lanes
are spot-checked against the scalar interpreter and any divergence raises
:class:`SimulationMismatch` — the fast path can never silently change an
answer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exprs import evaluate
from repro.exprs.nodes import Const, Expr, Op, Var, mask, to_unsigned
from repro.netlist.simulate import Simulator
from repro.netlist.transition import TransitionSystem
from repro.v2c.softnetlist import SoftwareNetlist

#: a packed value: one int per bit of the signal, lane ``i`` at bit ``1 << i``
Planes = Tuple[int, ...]

DEFAULT_LANES = 64


class SimulationMismatch(RuntimeError):
    """Packed and scalar simulation disagreed — a hard cross-check failure."""


# ---------------------------------------------------------------------------
# packing / unpacking
# ---------------------------------------------------------------------------


def broadcast(value: int, width: int, lane_mask: int) -> Planes:
    """Pack one scalar value identically into every lane."""
    value = to_unsigned(int(value), width)
    return tuple(lane_mask if (value >> b) & 1 else 0 for b in range(width))


def pack_values(values: Sequence[int], width: int) -> Planes:
    """Transpose per-lane scalar values into bit planes (lane ``i`` = value ``i``)."""
    planes = [0] * width
    for lane, value in enumerate(values):
        value = to_unsigned(int(value), width)
        bit = 1 << lane
        while value:
            b = (value & -value).bit_length() - 1
            planes[b] |= bit
            value &= value - 1
    return tuple(planes)


def unpack_lane(planes: Planes, lane: int) -> int:
    """Read one lane's scalar value back out of a packed value."""
    value = 0
    for b, plane in enumerate(planes):
        if (plane >> lane) & 1:
            value |= 1 << b
    return value


# ---------------------------------------------------------------------------
# plane-level operator kernels
# ---------------------------------------------------------------------------


def _p_not(a: Planes, m: int) -> Planes:
    return tuple((~p) & m for p in a)


def _p_and(a: Planes, b: Planes) -> Planes:
    return tuple(x & y for x, y in zip(a, b))


def _p_or(a: Planes, b: Planes) -> Planes:
    return tuple(x | y for x, y in zip(a, b))


def _p_xor(a: Planes, b: Planes) -> Planes:
    return tuple(x ^ y for x, y in zip(a, b))


def _p_xnor(a: Planes, b: Planes, m: int) -> Planes:
    return tuple((~(x ^ y)) & m for x, y in zip(a, b))


def _p_nand(a: Planes, b: Planes, m: int) -> Planes:
    return tuple((~(x & y)) & m for x, y in zip(a, b))


def _p_nor(a: Planes, b: Planes, m: int) -> Planes:
    return tuple((~(x | y)) & m for x, y in zip(a, b))


def _p_add(a: Planes, b: Planes, m: int) -> Planes:
    out = []
    carry = 0
    for x, y in zip(a, b):
        s = x ^ y ^ carry
        carry = (x & y) | (carry & (x ^ y))
        out.append(s)
    return tuple(out)


def _p_sub(a: Planes, b: Planes, m: int) -> Planes:
    out = []
    borrow = 0
    for x, y in zip(a, b):
        out.append(x ^ y ^ borrow)
        nx = (~x) & m
        borrow = (nx & (y | borrow)) | (y & borrow)
    return tuple(out)


def _p_neg(a: Planes, m: int) -> Planes:
    # two's complement: ~a + 1 (the +1 rides in as an all-lanes initial carry)
    out = []
    carry = m
    for x in a:
        nx = (~x) & m
        out.append(nx ^ carry)
        carry = nx & carry
    return tuple(out)


def _p_mul(a: Planes, b: Planes, m: int) -> Planes:
    width = len(a)
    acc: Planes = (0,) * width
    for j, sel in enumerate(b[:width]):
        if sel == 0:
            continue
        addend = tuple((a[k - j] & sel) if k >= j else 0 for k in range(width))
        acc = _p_add(acc, addend, m)
    return acc


def _p_divmod(a: Planes, b: Planes, m: int, remainder: bool) -> Planes:
    # rare in netlists: transpose back per lane, divide, re-transpose
    width = len(a)
    out = [0] * width
    lanes = m.bit_length()
    for lane in range(lanes):
        av = unpack_lane(a, lane)
        bv = unpack_lane(b, lane)
        if remainder:
            r = av if bv == 0 else av % bv
        else:
            r = mask(width) if bv == 0 else av // bv
        bit = 1 << lane
        for k in range(width):
            if (r >> k) & 1:
                out[k] |= bit
    return tuple(out)


def _p_udiv(a: Planes, b: Planes, m: int) -> Planes:
    return _p_divmod(a, b, m, remainder=False)


def _p_urem(a: Planes, b: Planes, m: int) -> Planes:
    return _p_divmod(a, b, m, remainder=True)


def _p_mux(sel: int, then_v: Planes, else_v: Planes, m: int) -> Planes:
    nsel = (~sel) & m
    return tuple((sel & t) | (nsel & e) for t, e in zip(then_v, else_v))


def _p_shl(a: Planes, b: Planes, m: int) -> Planes:
    width = len(a)
    result = a
    for j, sel in enumerate(b):
        amount = 1 << j
        if amount >= width:
            shifted: Planes = (0,) * width
        else:
            shifted = (0,) * amount + result[: width - amount]
        result = _p_mux(sel, shifted, result, m)
    return result


def _p_lshr(a: Planes, b: Planes, m: int) -> Planes:
    width = len(a)
    result = a
    for j, sel in enumerate(b):
        amount = 1 << j
        if amount >= width:
            shifted: Planes = (0,) * width
        else:
            shifted = result[amount:] + (0,) * amount
        result = _p_mux(sel, shifted, result, m)
    return result


def _p_ashr(a: Planes, b: Planes, m: int) -> Planes:
    width = len(a)
    sign = a[width - 1]
    result = a
    for j, sel in enumerate(b):
        amount = 1 << j
        if amount >= width:
            shifted: Planes = (sign,) * width
        else:
            shifted = result[amount:] + (sign,) * amount
        result = _p_mux(sel, shifted, result, m)
    return result


def _p_ne(a: Planes, b: Planes) -> Planes:
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return (diff,)


def _p_eq(a: Planes, b: Planes, m: int) -> Planes:
    return ((~_p_ne(a, b)[0]) & m,)


def _p_ult(a: Planes, b: Planes, m: int) -> Planes:
    borrow = 0
    for x, y in zip(a, b):
        nx = (~x) & m
        borrow = (nx & (y | borrow)) | (y & borrow)
    return (borrow,)


def _p_ule(a: Planes, b: Planes, m: int) -> Planes:
    return ((~_p_ult(b, a, m)[0]) & m,)


def _p_ugt(a: Planes, b: Planes, m: int) -> Planes:
    return _p_ult(b, a, m)


def _p_uge(a: Planes, b: Planes, m: int) -> Planes:
    return ((~_p_ult(a, b, m)[0]) & m,)


def _p_flip_sign(a: Planes, m: int) -> Planes:
    return a[:-1] + (a[-1] ^ m,)


def _p_slt(a: Planes, b: Planes, m: int) -> Planes:
    return _p_ult(_p_flip_sign(a, m), _p_flip_sign(b, m), m)


def _p_sle(a: Planes, b: Planes, m: int) -> Planes:
    return _p_ule(_p_flip_sign(a, m), _p_flip_sign(b, m), m)


def _p_sgt(a: Planes, b: Planes, m: int) -> Planes:
    return _p_ugt(_p_flip_sign(a, m), _p_flip_sign(b, m), m)


def _p_sge(a: Planes, b: Planes, m: int) -> Planes:
    return _p_uge(_p_flip_sign(a, m), _p_flip_sign(b, m), m)


def _p_redand(a: Planes, m: int) -> Planes:
    acc = m
    for p in a:
        acc &= p
    return (acc,)


def _p_redor(a: Planes) -> Planes:
    acc = 0
    for p in a:
        acc |= p
    return (acc,)


def _p_redxor(a: Planes) -> Planes:
    acc = 0
    for p in a:
        acc ^= p
    return (acc,)


def _p_ite(c: Planes, t: Planes, e: Planes, m: int) -> Planes:
    return _p_mux(c[0], t, e, m)


#: globals visible to the generated step function
_STEP_GLOBALS = {
    "_p_not": _p_not,
    "_p_and": _p_and,
    "_p_or": _p_or,
    "_p_xor": _p_xor,
    "_p_xnor": _p_xnor,
    "_p_nand": _p_nand,
    "_p_nor": _p_nor,
    "_p_add": _p_add,
    "_p_sub": _p_sub,
    "_p_neg": _p_neg,
    "_p_mul": _p_mul,
    "_p_udiv": _p_udiv,
    "_p_urem": _p_urem,
    "_p_shl": _p_shl,
    "_p_lshr": _p_lshr,
    "_p_ashr": _p_ashr,
    "_p_eq": _p_eq,
    "_p_ne": _p_ne,
    "_p_ult": _p_ult,
    "_p_ule": _p_ule,
    "_p_ugt": _p_ugt,
    "_p_uge": _p_uge,
    "_p_slt": _p_slt,
    "_p_sle": _p_sle,
    "_p_sgt": _p_sgt,
    "_p_sge": _p_sge,
    "_p_redand": _p_redand,
    "_p_redor": _p_redor,
    "_p_redxor": _p_redxor,
    "_p_ite": _p_ite,
}


# ---------------------------------------------------------------------------
# generic packed expression evaluation (interpretive; used by the sampler
# screens and as the reference for the generated step code)
# ---------------------------------------------------------------------------


def evaluate_packed(expr: Expr, env: Mapping[str, Planes], lane_mask: int) -> Planes:
    """Evaluate ``expr`` over packed planes, all lanes at once."""
    cache: Dict[int, Planes] = {}

    def rec(node: Expr) -> Planes:
        key = id(node)
        if key in cache:
            return cache[key]
        value = _eval_packed_node(node, env, lane_mask, rec)
        cache[key] = value
        return value

    return rec(expr)


_BINARY_PLAIN = {"and": _p_and, "or": _p_or, "xor": _p_xor, "ne": _p_ne}
_BINARY_MASKED = {
    "xnor": _p_xnor,
    "nand": _p_nand,
    "nor": _p_nor,
    "add": _p_add,
    "sub": _p_sub,
    "mul": _p_mul,
    "udiv": _p_udiv,
    "urem": _p_urem,
    "shl": _p_shl,
    "lshr": _p_lshr,
    "ashr": _p_ashr,
    "eq": _p_eq,
    "ult": _p_ult,
    "ule": _p_ule,
    "ugt": _p_ugt,
    "uge": _p_uge,
    "slt": _p_slt,
    "sle": _p_sle,
    "sgt": _p_sgt,
    "sge": _p_sge,
}


def _eval_packed_node(
    node: Expr, env: Mapping[str, Planes], m: int, rec: Callable[[Expr], Planes]
) -> Planes:
    if isinstance(node, Const):
        return broadcast(node.value, node.width, m)
    if isinstance(node, Var):
        planes = env.get(node.name)
        if planes is None:
            raise KeyError(f"unbound packed variable {node.name!r}")
        return planes
    assert isinstance(node, Op)
    op = node.op
    if op in _BINARY_PLAIN:
        return _BINARY_PLAIN[op](rec(node.args[0]), rec(node.args[1]))
    if op in _BINARY_MASKED:
        return _BINARY_MASKED[op](rec(node.args[0]), rec(node.args[1]), m)
    if op == "not":
        return _p_not(rec(node.args[0]), m)
    if op == "neg":
        return _p_neg(rec(node.args[0]), m)
    if op == "redand":
        return _p_redand(rec(node.args[0]), m)
    if op == "redor":
        return _p_redor(rec(node.args[0]))
    if op == "redxor":
        return _p_redxor(rec(node.args[0]))
    if op == "concat":
        planes: Tuple[int, ...] = ()
        for arg in reversed(node.args):  # last argument is least significant
            planes = planes + rec(arg)
        return planes
    if op == "extract":
        hi, lo = node.params
        return rec(node.args[0])[lo : hi + 1]
    if op == "zext":
        inner = rec(node.args[0])
        return inner + (0,) * (node.width - len(inner))
    if op == "sext":
        inner = rec(node.args[0])
        return inner + (inner[-1],) * (node.width - len(inner))
    if op == "ite":
        return _p_ite(rec(node.args[0]), rec(node.args[1]), rec(node.args[2]), m)
    raise ValueError(f"unhandled packed operator {op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# per-design step compilation
# ---------------------------------------------------------------------------


class _StepCompiler:
    """Emits the straight-line packed step function of one design.

    Shared subtrees are bound to one temporary (memoized by node identity),
    constants are broadcast once at compile time, and width-changing operators
    (extract/zext/sext/concat, constant shifts) become tuple-slicing literals
    — the generated function contains no expression-tree dispatch at all.
    """

    def __init__(self, netlist: SoftwareNetlist, lane_mask: int) -> None:
        self.netlist = netlist
        self.m = lane_mask
        self.lines: List[str] = []
        self.temps: Dict[int, str] = {}
        self.signals: Dict[str, str] = {}  # signal name -> bound temp
        self.consts: Dict[Tuple[int, int], str] = {}
        self.globals: Dict[str, object] = dict(_STEP_GLOBALS)
        self.globals["M"] = lane_mask
        self.counter = 0

    def fresh(self) -> str:
        self.counter += 1
        return f"t{self.counter}"

    def const_name(self, value: int, width: int) -> str:
        key = (value, width)
        if key not in self.consts:
            name = f"K{len(self.consts)}"
            self.consts[key] = name
            self.globals[name] = broadcast(value, width, self.m)
        return self.consts[key]

    def emit(self, expr: Expr) -> str:
        key = id(expr)
        if key in self.temps:
            return self.temps[key]
        name = self._emit_node(expr)
        self.temps[key] = name
        return name

    def _bind(self, code: str) -> str:
        name = self.fresh()
        self.lines.append(f"    {name} = {code}")
        return name

    def _emit_node(self, node: Expr) -> str:
        if isinstance(node, Const):
            return self.const_name(node.value, node.width)
        if isinstance(node, Var):
            temp = self.signals.get(node.name)
            if temp is None:
                raise KeyError(f"unbound signal {node.name!r} in step compilation")
            return temp
        assert isinstance(node, Op)
        op = node.op
        args = node.args
        if op in _BINARY_PLAIN:
            return self._bind(f"_p_{op}({self.emit(args[0])}, {self.emit(args[1])})")
        if op in ("shl", "lshr", "ashr") and isinstance(args[1], Const):
            return self._static_shift(op, args[0], args[1].value)
        if op in _BINARY_MASKED:
            return self._bind(
                f"_p_{op}({self.emit(args[0])}, {self.emit(args[1])}, M)"
            )
        if op in ("not", "neg", "redand"):
            return self._bind(f"_p_{op}({self.emit(args[0])}, M)")
        if op in ("redor", "redxor"):
            return self._bind(f"_p_{op}({self.emit(args[0])})")
        if op == "concat":
            parts = [self.emit(arg) for arg in reversed(args)]
            return self._bind(" + ".join(parts))
        if op == "extract":
            hi, lo = node.params
            return self._bind(f"{self.emit(args[0])}[{lo}:{hi + 1}]")
        if op == "zext":
            extra = node.width - args[0].width
            return self._bind(f"{self.emit(args[0])} + {(0,) * extra!r}")
        if op == "sext":
            extra = node.width - args[0].width
            inner = self.emit(args[0])
            return self._bind(f"{inner} + ({inner}[-1],) * {extra}")
        if op == "ite":
            return self._bind(
                f"_p_ite({self.emit(args[0])}, {self.emit(args[1])}, "
                f"{self.emit(args[2])}, M)"
            )
        raise ValueError(f"cannot compile operator {op!r}")  # pragma: no cover

    def _static_shift(self, op: str, operand: Expr, amount: int) -> str:
        width = operand.width
        inner = self.emit(operand)
        if op == "shl":
            if amount >= width:
                return self._bind(f"{(0,) * width!r}")
            return self._bind(f"{(0,) * amount!r} + {inner}[:{width - amount}]")
        if op == "lshr":
            if amount >= width:
                return self._bind(f"{(0,) * width!r}")
            return self._bind(f"{inner}[{amount}:] + {(0,) * amount!r}")
        # ashr: fill with the sign plane
        fill = min(amount, width)
        return self._bind(f"{inner}[{fill}:] + ({inner}[-1],) * {fill}")

    def compile(self) -> Callable:
        netlist = self.netlist
        self.lines.append("def _step(S, I):")
        for name in netlist.registers:
            temp = self.fresh()
            self.lines.append(f"    {temp} = S[{name!r}]")
            self.signals[name] = temp
        for name in netlist.inputs:
            temp = self.fresh()
            self.lines.append(f"    {temp} = I[{name!r}]")
            self.signals[name] = temp
        for step_assignment in netlist.assignments:
            if step_assignment.kind != "wire":
                continue
            self.signals[step_assignment.target] = self.emit(step_assignment.expr)
        next_temps = {
            name: self.emit(netlist.system.next[name]) for name in netlist.registers
        }
        prop_temps = {a.name: self.emit(a.expr) for a in netlist.assertions}
        cons_temps = [self.emit(expr) for expr in netlist.constraints]
        next_code = ", ".join(f"{n!r}: {t}" for n, t in next_temps.items())
        prop_code = ", ".join(f"{n!r}: {t}" for n, t in prop_temps.items())
        cons_code = ", ".join(cons_temps)
        if cons_temps:
            cons_code += ","
        self.lines.append(f"    return {{{next_code}}}, {{{prop_code}}}, ({cons_code})")
        source = "\n".join(self.lines)
        namespace: Dict[str, object] = {}
        exec(  # noqa: S102 - compiling our own generated step function
            compile(source, f"<bitsim:{netlist.name}>", "exec"), self.globals, namespace
        )
        step = namespace["_step"]
        step._source = source  # kept for debugging and tests
        return step


def _compile_step(netlist: SoftwareNetlist, lane_mask: int) -> Callable:
    return _StepCompiler(netlist, lane_mask).compile()


# ---------------------------------------------------------------------------
# the packed simulator
# ---------------------------------------------------------------------------


@dataclass
class PackedViolation:
    """First property violation observed by a packed run."""

    property_name: str
    cycle: int
    lane: int


@dataclass
class PackedRun:
    """Everything a packed multi-lane run recorded.

    ``states[c]`` is the packed register state *before* cycle ``c``'s step;
    ``prop_values[c]`` maps property name to its packed truth plane at cycle
    ``c`` (bit clear = that lane violates); ``alive[c]`` masks the lanes whose
    environment constraints held through cycle ``c``.
    """

    lanes: int
    inputs: List[Dict[str, Planes]] = field(default_factory=list)
    states: List[Dict[str, Planes]] = field(default_factory=list)
    prop_values: List[Dict[str, int]] = field(default_factory=list)
    alive: List[int] = field(default_factory=list)
    violation: Optional[PackedViolation] = None

    @property
    def cycles(self) -> int:
        return len(self.inputs)

    def lane_inputs(self, lane: int, upto: Optional[int] = None) -> List[Dict[str, int]]:
        """Extract one lane's scalar input sequence (simulator/witness food)."""
        end = self.cycles if upto is None else upto + 1
        return [
            {name: unpack_lane(planes, lane) for name, planes in cycle.items()}
            for cycle in self.inputs[:end]
        ]

    def lane_state(self, cycle: int, lane: int) -> Dict[str, int]:
        return {
            name: unpack_lane(planes, lane) for name, planes in self.states[cycle].items()
        }

    def violated_lanes(self, property_name: str, cycle: int) -> int:
        """Plane of lanes (still alive) violating ``property_name`` at ``cycle``."""
        value = self.prop_values[cycle][property_name]
        return (~value) & self.alive[cycle]


class PackedSimulator:
    """Evaluates 64 (or ``lanes``) independent input vectors per operation.

    The packed simulator shares its evaluation order with the scalar
    :class:`repro.v2c.softnetlist.SoftwareNetlist` (the single scalar oracle of
    the fast tiers): wires in topological order, properties and constraints on
    the pre-update state, registers updated simultaneously.
    """

    def __init__(self, system: TransitionSystem, lanes: int = DEFAULT_LANES) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.system = system
        self.netlist = SoftwareNetlist(system)
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        self.property_names = [a.name for a in self.netlist.assertions]
        self._step_fn = _compile_step(self.netlist, self.mask)
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.state: Dict[str, Planes] = {
            name: broadcast(value, self.netlist.registers[name], self.mask)
            for name, value in self.netlist.initial_values.items()
        }
        self.cycle = 0

    def set_lane_states(self, values: Sequence[Mapping[str, int]]) -> None:
        """Load one scalar state per lane (missing lanes keep the reset state)."""
        for name, width in self.netlist.registers.items():
            defaults = self.netlist.initial_values[name]
            column = [
                int(values[lane].get(name, defaults)) if lane < len(values) else defaults
                for lane in range(self.lanes)
            ]
            self.state[name] = pack_values(column, width)

    # ------------------------------------------------------------------
    def step(
        self, inputs: Optional[Mapping[str, Planes]] = None
    ) -> Tuple[Dict[str, int], int]:
        """Advance every lane one cycle.

        Returns ``(property_value_planes, constraint_ok_plane)`` evaluated on
        the pre-update state, then commits the packed register update.
        """
        packed_inputs = self._input_planes(inputs)
        next_state, prop_planes, cons_planes = self._step_fn(self.state, packed_inputs)
        constraint_ok = self.mask
        for plane in cons_planes:
            constraint_ok &= plane[0]
        self.state = next_state
        self.cycle += 1
        return {name: planes[0] for name, planes in prop_planes.items()}, constraint_ok

    def _input_planes(
        self, inputs: Optional[Mapping[str, Planes]]
    ) -> Dict[str, Planes]:
        packed: Dict[str, Planes] = {}
        inputs = inputs or {}
        for name, width in self.netlist.inputs.items():
            planes = inputs.get(name)
            packed[name] = planes if planes is not None else (0,) * width
        return packed

    def random_inputs(self, rng: random.Random) -> Dict[str, Planes]:
        """One cycle of uniformly random packed inputs (one draw per bit plane)."""
        return {
            name: tuple(rng.getrandbits(self.lanes) for _ in range(width))
            for name, width in self.netlist.inputs.items()
        }

    # ------------------------------------------------------------------
    def run(
        self,
        input_planes: Sequence[Mapping[str, Planes]],
        properties: Optional[Sequence[str]] = None,
        stop_on_violation: bool = True,
        record: bool = True,
    ) -> PackedRun:
        """Run one packed step per element of ``input_planes``.

        Lanes whose environment constraints fail fall out of the ``alive``
        mask from that cycle on; violations are only reported for lanes whose
        constraints held through the violating cycle (matching the frame
        semantics of the SAT engines, which assert the constraints at every
        frame including the violation frame).
        """
        watched = list(properties) if properties is not None else self.property_names
        run = PackedRun(lanes=self.lanes)
        alive = self.mask
        self.reset()
        for cycle, raw in enumerate(input_planes):
            packed_inputs = self._input_planes(raw)
            if record:
                run.inputs.append(packed_inputs)
                run.states.append(dict(self.state))
            prop_planes, constraint_ok = self.step(packed_inputs)
            alive &= constraint_ok
            if record:
                run.prop_values.append(prop_planes)
                run.alive.append(alive)
            if run.violation is None:
                for name in watched:
                    bad = (~prop_planes[name]) & alive
                    if bad:
                        lane = (bad & -bad).bit_length() - 1
                        run.violation = PackedViolation(name, cycle, lane)
                        break
            if run.violation is not None and stop_on_violation:
                break
        return run

    def run_random(
        self,
        cycles: int,
        seed: int = 0,
        properties: Optional[Sequence[str]] = None,
        stop_on_violation: bool = True,
    ) -> PackedRun:
        """Drive every lane with independent uniformly random inputs."""
        rng = random.Random(seed)
        sequence = [self.random_inputs(rng) for _ in range(cycles)]
        return self.run(
            sequence, properties=properties, stop_on_violation=stop_on_violation
        )

    def replay(
        self,
        input_sequence: Sequence[Mapping[str, int]],
        properties: Optional[Sequence[str]] = None,
        record: bool = True,
    ) -> PackedRun:
        """Replay one scalar input sequence, broadcast into every lane."""
        packed = [
            {
                name: broadcast(cycle.get(name, 0), width, self.mask)
                for name, width in self.netlist.inputs.items()
            }
            for cycle in input_sequence
        ]
        return self.run(
            packed, properties=properties, stop_on_violation=False, record=record
        )

    def replay_many(
        self,
        sequences: Sequence[Sequence[Mapping[str, int]]],
        properties: Optional[Sequence[str]] = None,
        record: bool = True,
    ) -> PackedRun:
        """Replay up to ``lanes`` different input sequences, one per lane.

        Shorter sequences pad with all-zero inputs; at most ``lanes``
        sequences are accepted.
        """
        if len(sequences) > self.lanes:
            raise ValueError(f"{len(sequences)} sequences > {self.lanes} lanes")
        cycles = max((len(seq) for seq in sequences), default=0)
        packed: List[Dict[str, Planes]] = []
        for cycle in range(cycles):
            cycle_planes: Dict[str, Planes] = {}
            for name, width in self.netlist.inputs.items():
                column = [
                    int(seq[cycle].get(name, 0)) if cycle < len(seq) else 0
                    for seq in sequences
                ]
                cycle_planes[name] = pack_values(column, width)
            packed.append(cycle_planes)
        return self.run(
            packed, properties=properties, stop_on_violation=False, record=record
        )


# ---------------------------------------------------------------------------
# cross-checking against the scalar oracle
# ---------------------------------------------------------------------------


def crosscheck_lane(
    system: TransitionSystem,
    run: PackedRun,
    lane: int,
    cycles: Optional[int] = None,
) -> int:
    """Replay one lane scalar and compare states + property values per cycle.

    Returns the number of cycles compared; raises :class:`SimulationMismatch`
    on the first divergence.  This is the hard gate of the cross-checked-
    verdict pattern: packed results are only trusted where a lane agrees with
    the scalar interpreter.
    """
    end = run.cycles if cycles is None else min(cycles, run.cycles)
    simulator = Simulator(system)
    for cycle in range(end):
        inputs = {
            name: unpack_lane(planes, lane) for name, planes in run.inputs[cycle].items()
        }
        expected = run.lane_state(cycle, lane)
        for name, value in simulator.state.items():
            if expected[name] != value:
                raise SimulationMismatch(
                    f"{system.name}: lane {lane} register {name!r} diverged at "
                    f"cycle {cycle}: packed {expected[name]}, scalar {value}"
                )
        env = simulator._environment(inputs)
        for prop in system.properties:
            packed_value = (run.prop_values[cycle][prop.name] >> lane) & 1
            scalar_value = 1 if evaluate(prop.expr, env) else 0
            if packed_value != scalar_value:
                raise SimulationMismatch(
                    f"{system.name}: lane {lane} property {prop.name!r} diverged "
                    f"at cycle {cycle}: packed {packed_value}, scalar {scalar_value}"
                )
        simulator.step(inputs)
    return end


# ---------------------------------------------------------------------------
# reachable-state sampling (candidate-invariant screens for kIkI / PDR)
# ---------------------------------------------------------------------------


class ReachabilitySampler:
    """Random reachable states, packed for cheap candidate screening.

    A short packed random run harvests distinct register states from lanes
    whose environment constraints held.  Candidate invariants that evaluate
    false on any sampled state cannot be invariants, so engines drop them
    before paying a SAT call; cubes satisfied by a sampled state are skipped
    during PDR generalization (a pure no-progress query avoided).
    """

    def __init__(
        self,
        system: TransitionSystem,
        lanes: int = DEFAULT_LANES,
        cycles: int = 64,
        seed: int = 2016,
        max_states: int = 256,
    ) -> None:
        self.system = system
        simulator = PackedSimulator(system, lanes=lanes)
        run = simulator.run_random(cycles, seed=seed, stop_on_violation=False)
        widths = dict(simulator.netlist.registers)
        seen: Dict[Tuple[int, ...], Dict[str, int]] = {}
        order = list(widths)
        for cycle in range(run.cycles):
            alive = run.alive[cycle] if cycle else simulator.mask
            if not alive:
                break
            lane_bits = alive
            while lane_bits and len(seen) < max_states:
                lane = (lane_bits & -lane_bits).bit_length() - 1
                lane_bits &= lane_bits - 1
                state = run.lane_state(cycle, lane)
                seen.setdefault(tuple(state[name] for name in order), state)
            if len(seen) >= max_states:
                break
        self.states: List[Dict[str, int]] = list(seen.values())
        self._widths = widths
        # packed batches for 64-way candidate evaluation
        self._batches: List[Tuple[int, Dict[str, Planes]]] = []
        for start in range(0, len(self.states), lanes):
            chunk = self.states[start : start + lanes]
            batch_mask = (1 << len(chunk)) - 1
            planes = {
                name: pack_values([state[name] for state in chunk], width)
                for name, width in widths.items()
            }
            self._batches.append((batch_mask, planes))

    def __len__(self) -> int:
        return len(self.states)

    def screen_invariants(
        self, candidates: Sequence[Expr]
    ) -> Tuple[List[Expr], int]:
        """Partition candidates: (kept, dropped-count).

        A candidate false on any sampled reachable state is dropped — it
        cannot be an invariant, so the SAT certification call it would have
        cost is saved outright.
        """
        kept: List[Expr] = []
        dropped = 0
        for candidate in candidates:
            holds = True
            for batch_mask, planes in self._batches:
                value = evaluate_packed(candidate, planes, batch_mask)
                if value[0] != batch_mask:
                    holds = False
                    break
            if holds:
                kept.append(candidate)
            else:
                dropped += 1
        return kept, dropped

    def satisfies_cube(self, cube: Iterable[Tuple[str, int, bool]]) -> bool:
        """True when some sampled reachable state satisfies every cube literal."""
        literals = list(cube)
        for name, bit, _value in literals:
            width = self._widths.get(name)
            if width is None or bit >= width:
                return False  # unknown signal: cannot certify reachability
        for batch_mask, planes in self._batches:
            matching = batch_mask
            for name, bit, value in literals:
                plane = planes[name][bit]
                matching &= plane if value else (~plane) & batch_mask
                if not matching:
                    break
            if matching:
                return True
        return False
