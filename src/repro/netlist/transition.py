"""Word-level transition system data model.

A :class:`TransitionSystem` describes a synchronous sequential circuit:

* *inputs* — primary inputs, assigned a non-deterministic value every cycle,
* *state variables* — registers with an initial value and a next-state
  function,
* *wires* — named combinational signals (kept for readability of the
  generated software-netlist; they are definitionally equal to their
  expression),
* *constraints* — environment assumptions that hold in every cycle,
* *properties* — safety properties (SVA ``assert property`` of Boolean
  conditions) that must hold in every reachable state.

All expressions are over the IR of :mod:`repro.exprs` and may refer to state
variables, inputs and wires of the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.exprs import (
    Expr,
    bv_const,
    bv_var,
    collect_vars,
    simplify,
    substitute,
)
from repro.exprs.nodes import Var


class TransitionSystemError(Exception):
    """Raised when a transition system is malformed."""


@dataclass(frozen=True)
class SafetyProperty:
    """A named safety property: ``expr`` must be true in every reachable state."""

    name: str
    expr: Expr

    def __post_init__(self):
        if self.expr.width != 1:
            raise TransitionSystemError(
                f"property {self.name!r} must be a 1-bit expression"
            )


class TransitionSystem:
    """A word-level synchronous transition system."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: Dict[str, int] = {}
        self.state_vars: Dict[str, int] = {}
        self.wires: Dict[str, Expr] = {}
        self.init: Dict[str, Expr] = {}
        self.next: Dict[str, Expr] = {}
        self.constraints: List[Expr] = []
        self.properties: List[SafetyProperty] = []
        #: optional provenance note (e.g. source Verilog module / file)
        self.source: Optional[str] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_input(self, name: str, width: int) -> Var:
        """Declare a primary input and return its variable."""
        self._check_fresh(name)
        self.inputs[name] = width
        return bv_var(name, width)

    def add_state_var(
        self,
        name: str,
        width: int,
        init: Optional[Expr | int] = None,
        next_expr: Optional[Expr] = None,
    ) -> Var:
        """Declare a register; ``init`` defaults to 0 and ``next`` to holding its value."""
        self._check_fresh(name)
        self.state_vars[name] = width
        var = bv_var(name, width)
        if init is None:
            init = bv_const(0, width)
        elif isinstance(init, int):
            init = bv_const(init, width)
        self.init[name] = init
        self.next[name] = next_expr if next_expr is not None else var
        return var

    def set_next(self, name: str, expr: Expr) -> None:
        """Set the next-state function of a register."""
        if name not in self.state_vars:
            raise TransitionSystemError(f"unknown state variable {name!r}")
        if expr.width != self.state_vars[name]:
            raise TransitionSystemError(
                f"next({name}): width {expr.width} != declared {self.state_vars[name]}"
            )
        self.next[name] = expr

    def set_init(self, name: str, expr: Expr | int) -> None:
        """Set the initial value of a register."""
        if name not in self.state_vars:
            raise TransitionSystemError(f"unknown state variable {name!r}")
        if isinstance(expr, int):
            expr = bv_const(expr, self.state_vars[name])
        if expr.width != self.state_vars[name]:
            raise TransitionSystemError(
                f"init({name}): width {expr.width} != declared {self.state_vars[name]}"
            )
        self.init[name] = expr

    def add_wire(self, name: str, expr: Expr) -> Var:
        """Declare a named combinational signal defined by ``expr``."""
        self._check_fresh(name)
        self.wires[name] = expr
        return bv_var(name, expr.width)

    def add_constraint(self, expr: Expr) -> None:
        """Add an environment assumption holding in every cycle."""
        self.constraints.append(expr)

    def add_property(self, name: str, expr: Expr) -> SafetyProperty:
        """Add a safety property (must hold in every reachable state)."""
        prop = SafetyProperty(name, expr)
        self.properties.append(prop)
        return prop

    def _check_fresh(self, name: str) -> None:
        if name in self.inputs or name in self.state_vars or name in self.wires:
            raise TransitionSystemError(f"signal {name!r} already declared")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def var(self, name: str) -> Var:
        """Return the variable node for a declared signal."""
        if name in self.inputs:
            return bv_var(name, self.inputs[name])
        if name in self.state_vars:
            return bv_var(name, self.state_vars[name])
        if name in self.wires:
            return bv_var(name, self.wires[name].width)
        raise TransitionSystemError(f"unknown signal {name!r}")

    def width_of(self, name: str) -> int:
        """Return the declared width of a signal."""
        return self.var(name).width

    def signal_widths(self) -> Dict[str, int]:
        """Return a name -> width map covering inputs, registers and wires."""
        widths = dict(self.inputs)
        widths.update(self.state_vars)
        widths.update({name: expr.width for name, expr in self.wires.items()})
        return widths

    def property_by_name(self, name: str) -> SafetyProperty:
        """Look up a property by name."""
        for prop in self.properties:
            if prop.name == name:
                return prop
        raise KeyError(name)

    # ------------------------------------------------------------------
    # wire elimination and flattening
    # ------------------------------------------------------------------
    def wire_free_expr(self, expr: Expr) -> Expr:
        """Return ``expr`` with all wire names substituted by their definitions."""
        if not self.wires:
            return expr
        resolved = self._resolved_wires()
        return substitute(expr, resolved)

    def _resolved_wires(self) -> Dict[str, Expr]:
        """Resolve wire definitions so none refers to another wire."""
        resolved: Dict[str, Expr] = {}
        remaining = dict(self.wires)
        # iterate until fixed point; wire definitions are acyclic by construction
        for _ in range(len(remaining) + 1):
            progressed = False
            for name, expr in list(remaining.items()):
                deps = {v.name for v in collect_vars(expr)}
                if deps & set(remaining) - {name}:
                    unresolved = deps & set(remaining) - {name}
                    if unresolved <= set(resolved):
                        remaining[name] = substitute(expr, resolved)
                        continue
                    continue
                resolved[name] = substitute(expr, resolved)
                del remaining[name]
                progressed = True
            if not remaining:
                break
            if not progressed:
                # substitute what we can and retry; if nothing changes we have a cycle
                changed = False
                for name, expr in list(remaining.items()):
                    new_expr = substitute(expr, resolved)
                    if new_expr is not expr:
                        remaining[name] = new_expr
                        changed = True
                if not changed:
                    raise TransitionSystemError(
                        f"combinational cycle through wires: {sorted(remaining)}"
                    )
        return resolved

    def flattened(self) -> "TransitionSystem":
        """Return an equivalent system whose expressions mention no wires.

        This corresponds to the "flattened software-netlist" synthesis option
        described in the paper (Section III.B): the module hierarchy and
        intermediate signals are folded into the next-state functions.
        """
        flat = TransitionSystem(self.name)
        flat.source = self.source
        flat.inputs = dict(self.inputs)
        flat.state_vars = dict(self.state_vars)
        resolved = self._resolved_wires()
        flat.init = {
            name: simplify(substitute(expr, resolved)) for name, expr in self.init.items()
        }
        flat.next = {
            name: simplify(substitute(expr, resolved)) for name, expr in self.next.items()
        }
        flat.constraints = [
            simplify(substitute(expr, resolved)) for expr in self.constraints
        ]
        flat.properties = [
            SafetyProperty(p.name, simplify(substitute(p.expr, resolved)))
            for p in self.properties
        ]
        return flat

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises :class:`TransitionSystemError`."""
        for name, width in self.state_vars.items():
            if name not in self.init:
                raise TransitionSystemError(f"register {name!r} has no initial value")
            if name not in self.next:
                raise TransitionSystemError(f"register {name!r} has no next-state function")
            if self.init[name].width != width:
                raise TransitionSystemError(f"init({name}) width mismatch")
            if self.next[name].width != width:
                raise TransitionSystemError(f"next({name}) width mismatch")
        known = set(self.inputs) | set(self.state_vars) | set(self.wires)
        for name, expr in list(self.next.items()) + list(self.wires.items()):
            for var in collect_vars(expr):
                if var.name not in known:
                    raise TransitionSystemError(
                        f"expression for {name!r} refers to undeclared signal {var.name!r}"
                    )
                if var.width != self.width_of(var.name):
                    raise TransitionSystemError(
                        f"expression for {name!r} uses {var.name!r} with width "
                        f"{var.width}, declared {self.width_of(var.name)}"
                    )
        for prop in self.properties:
            for var in collect_vars(prop.expr):
                if var.name not in known:
                    raise TransitionSystemError(
                        f"property {prop.name!r} refers to undeclared signal {var.name!r}"
                    )
        # initial values must not depend on inputs or other registers' current values
        for name, expr in self.init.items():
            for var in collect_vars(expr):
                if var.name in self.state_vars or var.name in self.inputs:
                    raise TransitionSystemError(
                        f"init({name}) must be a constant expression, refers to {var.name!r}"
                    )

    # ------------------------------------------------------------------
    # statistics and presentation
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Return basic size statistics of the design."""
        return {
            "inputs": len(self.inputs),
            "input_bits": sum(self.inputs.values()),
            "registers": len(self.state_vars),
            "state_bits": sum(self.state_vars.values()),
            "wires": len(self.wires),
            "properties": len(self.properties),
            "constraints": len(self.constraints),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"TransitionSystem({self.name!r}, state_bits={stats['state_bits']}, "
            f"inputs={stats['inputs']}, properties={stats['properties']})"
        )
