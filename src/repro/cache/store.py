"""On-disk store of validated certificates, one JSON document per key.

The store is deliberately dumb: it maps cache keys to ``repro-cert-v1``
certificate documents (plus provenance metadata) laid out as
``<root>/<key[:2]>/<key>.json``, with atomic writes (temp file + rename) so
a concurrent reader never sees a torn entry.  *It is not trusted*: every
entry is re-validated against the queried design by
:class:`repro.cache.result_cache.ResultCache` before being served, so a
corrupted, tampered or simply wrong entry costs a cache miss, never a wrong
verdict.  Accordingly, any parse failure here degrades to "absent".
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.certs import CertificateError, certificate_from_json, certificate_to_json

#: format tag of a store entry document
ENTRY_FORMAT = "repro-cache-entry-v1"


@dataclass
class CacheEntry:
    """One stored verdict: a validated certificate plus provenance."""

    key: str
    status: str
    property_name: str
    engine: str
    representation: str
    certificate: object
    design: str = ""
    created_s: float = 0.0
    #: invariant-minimization provenance (conjunct counts, see minimize.py)
    minimized: bool = False
    original_size: Optional[int] = None
    size: Optional[int] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "format": ENTRY_FORMAT,
            "key": self.key,
            "status": self.status,
            "property": self.property_name,
            "engine": self.engine,
            "representation": self.representation,
            "design": self.design,
            "created_s": self.created_s,
            "minimized": self.minimized,
            "original_size": self.original_size,
            "size": self.size,
            "extra": self.extra,
            "certificate": certificate_to_json(self.certificate),
        }

    @staticmethod
    def from_json(document: object) -> "CacheEntry":
        if not isinstance(document, dict):
            raise CertificateError("cache entry must be a JSON object")
        if document.get("format") != ENTRY_FORMAT:
            raise CertificateError(
                f"unsupported cache entry format {document.get('format')!r}"
            )
        certificate = certificate_from_json(document.get("certificate"))
        status = document.get("status")
        property_name = document.get("property")
        if not isinstance(status, str) or not isinstance(property_name, str):
            raise CertificateError("cache entry status/property must be strings")
        return CacheEntry(
            key=str(document.get("key", "")),
            status=status,
            property_name=property_name,
            engine=str(document.get("engine", "")),
            representation=str(document.get("representation", "word")),
            certificate=certificate,
            design=str(document.get("design", "")),
            created_s=float(document.get("created_s", 0.0)),
            minimized=bool(document.get("minimized", False)),
            original_size=document.get("original_size"),
            size=document.get("size"),
            extra=dict(document.get("extra", {})),
        )


class CertificateStore:
    """The file-system layer of the result cache."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def load(self, key: str) -> Optional[CacheEntry]:
        """Read one entry; any I/O or parse failure reads as absent."""
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                document = json.load(handle)
            entry = CacheEntry.from_json(document)
        except (OSError, ValueError):  # CertificateError is a ValueError
            return None
        if entry.key != key:
            # a moved/renamed file must not impersonate another query
            return None
        return entry

    def save(self, entry: CacheEntry) -> str:
        """Atomically write one entry; returns its path."""
        path = self.path_for(entry.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        if not entry.created_s:
            entry.created_s = time.time()
        payload = json.dumps(entry.to_json(), indent=2) + "\n"
        fd, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return path

    def delete(self, key: str) -> bool:
        """Drop one entry (used to demote an entry that failed revalidation)."""
        try:
            os.unlink(self.path_for(key))
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_path = os.path.join(self.root, shard)
            if not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                if name.endswith(".json"):
                    yield name[: -len(".json")]

    def entries(self) -> List[CacheEntry]:
        return [
            entry for entry in (self.load(key) for key in self.keys()) if entry
        ]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
