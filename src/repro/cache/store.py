"""On-disk store of validated certificates, one JSON document per key.

The store is deliberately dumb: it maps cache keys to ``repro-cert-v1``
certificate documents (plus provenance metadata) laid out as
``<root>/<key[:2]>/<key>.json``, with atomic writes (temp file + rename) so
a concurrent reader never sees a torn entry.  *It is not trusted*: every
entry is re-validated against the queried design by
:class:`repro.cache.result_cache.ResultCache` before being served, so a
corrupted, tampered or simply wrong entry costs a cache miss, never a wrong
verdict.  Accordingly, any parse failure here degrades to "absent".

Self-healing: an entry that no longer *decodes* (truncated write, bit rot,
tampering) is moved into ``<root>/quarantine/`` instead of being read over
and over — the store never crashes on garbage and keeps the evidence for
``repro-cache fsck``.  Optional ``max_entries``/``max_bytes`` caps turn the
store into an LRU: loads touch the entry file's mtime and :meth:`evict`
drops the least-recently-used entries over the caps.

Concurrency: the atomic per-entry writes already make single mutations safe,
but *compound* mutations — LRU eviction scanning then deleting, quarantine
moves — can race when several server workers and batch runs share one store
root.  Every mutating operation therefore runs under an advisory
inter-process file lock (``<root>/.lock``, ``fcntl.flock``); readers stay
lock-free, so a hot lookup path never serializes on a writer.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.certs import CertificateError, certificate_from_json, certificate_to_json
from repro.faults import injection as _fault_injection

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: degrade to process-local
    fcntl = None

#: format tag of a store entry document
ENTRY_FORMAT = "repro-cache-entry-v1"

#: shard directory quarantined (undecodable) entries are moved into
QUARANTINE_DIR = "quarantine"

#: name of the advisory inter-process lock file at the store root
LOCK_FILENAME = ".lock"


class StoreLock:
    """Advisory inter-process lock on a store root (reentrant per thread).

    ``flock`` locks belong to the open file description, so every
    acquisition opens its own descriptor — two threads of one process
    exclude each other exactly like two processes do.  Reentrancy (``save``
    runs ``evict`` while already holding the lock) is tracked per thread.
    Without :mod:`fcntl` (non-POSIX) the lock degrades to a per-process
    :class:`threading.Lock`, which still serializes server worker threads.
    """

    def __init__(self, root: str) -> None:
        self.path = os.path.join(root, LOCK_FILENAME)
        self._local = threading.local()
        self._fallback = threading.RLock()

    def __enter__(self) -> "StoreLock":
        depth = getattr(self._local, "depth", 0)
        if depth == 0:
            if fcntl is None:
                self._fallback.acquire()
            else:
                fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                except OSError:  # pragma: no cover - exotic filesystem
                    os.close(fd)
                    raise
                self._local.fd = fd
        self._local.depth = depth + 1
        return self

    def __exit__(self, *exc_info) -> bool:
        depth = getattr(self._local, "depth", 1) - 1
        self._local.depth = depth
        if depth == 0:
            if fcntl is None:
                self._fallback.release()
            else:
                fd = self._local.fd
                self._local.fd = None
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                finally:
                    os.close(fd)
        return False


@dataclass
class CacheEntry:
    """One stored verdict: a validated certificate plus provenance."""

    key: str
    status: str
    property_name: str
    engine: str
    representation: str
    certificate: object
    design: str = ""
    created_s: float = 0.0
    #: invariant-minimization provenance (conjunct counts, see minimize.py)
    minimized: bool = False
    original_size: Optional[int] = None
    size: Optional[int] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "format": ENTRY_FORMAT,
            "key": self.key,
            "status": self.status,
            "property": self.property_name,
            "engine": self.engine,
            "representation": self.representation,
            "design": self.design,
            "created_s": self.created_s,
            "minimized": self.minimized,
            "original_size": self.original_size,
            "size": self.size,
            "extra": self.extra,
            "certificate": certificate_to_json(self.certificate),
        }

    @staticmethod
    def from_json(document: object) -> "CacheEntry":
        if not isinstance(document, dict):
            raise CertificateError("cache entry must be a JSON object")
        if document.get("format") != ENTRY_FORMAT:
            raise CertificateError(
                f"unsupported cache entry format {document.get('format')!r}"
            )
        certificate = certificate_from_json(document.get("certificate"))
        status = document.get("status")
        property_name = document.get("property")
        if not isinstance(status, str) or not isinstance(property_name, str):
            raise CertificateError("cache entry status/property must be strings")
        return CacheEntry(
            key=str(document.get("key", "")),
            status=status,
            property_name=property_name,
            engine=str(document.get("engine", "")),
            representation=str(document.get("representation", "word")),
            certificate=certificate,
            design=str(document.get("design", "")),
            created_s=float(document.get("created_s", 0.0)),
            minimized=bool(document.get("minimized", False)),
            original_size=document.get("original_size"),
            size=document.get("size"),
            extra=dict(document.get("extra", {})),
        )


class CertificateStore:
    """The file-system layer of the result cache.

    ``max_entries``/``max_bytes`` (``None`` = unbounded) cap the store;
    :meth:`save` enforces them by LRU eviction, with entry-file mtimes
    (touched on every successful load) as the recency clock.
    """

    def __init__(
        self,
        root: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = root
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.evictions = 0
        self.quarantined = 0
        os.makedirs(root, exist_ok=True)
        self.lock = StoreLock(root)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def quarantine_path_for(self, key: str) -> str:
        return os.path.join(self.root, QUARANTINE_DIR, f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def load_strict(self, key: str) -> Tuple[Optional[CacheEntry], str]:
        """Read one entry, reporting *why* it is unreadable.

        Returns ``(entry, "ok")``, or ``(None, reason)`` with reason
        ``"absent"`` (no file), ``"undecodable"`` (torn/tampered document)
        or ``"key-mismatch"`` (a moved/renamed file must not impersonate
        another query).  Never raises on store garbage.
        """
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError:
            return None, "absent"
        except ValueError:
            return None, "undecodable"
        try:
            entry = CacheEntry.from_json(document)
        except (ValueError, TypeError, KeyError):
            return None, "undecodable"
        if entry.key != key:
            return None, "key-mismatch"
        return entry, "ok"

    def load(self, key: str) -> Optional[CacheEntry]:
        """Read one entry; any failure reads as absent, garbage is quarantined.

        A successful load touches the entry file (its mtime is the LRU
        recency clock used by :meth:`evict`).
        """
        entry, reason = self.load_strict(key)
        if entry is None:
            if reason in ("undecodable", "key-mismatch"):
                self.quarantine(key, reason)
            return None
        try:
            os.utime(self.path_for(key), None)
        except OSError:  # pragma: no cover - entry raced away
            pass
        return entry

    def quarantine(self, key: str, reason: str = "") -> Optional[str]:
        """Move a broken entry into the quarantine shard instead of crashing.

        The file stops being a cache entry (``keys`` skips the quarantine
        shard) but remains on disk as evidence for ``repro-cache fsck``.
        """
        source = self.path_for(key)
        target = self.quarantine_path_for(key)
        with self.lock:
            try:
                os.makedirs(os.path.dirname(target), exist_ok=True)
                os.replace(source, target)
            except OSError:
                return None
        self.quarantined += 1
        return target

    def quarantine_keys(self) -> List[str]:
        shard_path = os.path.join(self.root, QUARANTINE_DIR)
        try:
            names = sorted(os.listdir(shard_path))
        except OSError:
            return []
        return [name[: -len(".json")] for name in names if name.endswith(".json")]

    def save(self, entry: CacheEntry) -> str:
        """Atomically write one entry; returns its path."""
        path = self.path_for(entry.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        if not entry.created_s:
            entry.created_s = time.time()
        payload = json.dumps(entry.to_json(), indent=2) + "\n"
        with self.lock:
            fd, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
            _fault_injection.tamper_saved_entry(path, entry.key, payload)
            self.evict()
        return path

    def delete(self, key: str) -> bool:
        """Drop one entry (used to demote an entry that failed revalidation)."""
        with self.lock:
            try:
                os.unlink(self.path_for(key))
                return True
            except OSError:
                return False

    # ------------------------------------------------------------------
    def _entry_files(self) -> List[Tuple[float, int, str, str]]:
        """``(mtime, size, key, path)`` of every entry file, oldest first."""
        rows: List[Tuple[float, int, str, str]] = []
        for key in self.keys():
            path = self.path_for(key)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            rows.append((stat.st_mtime, stat.st_size, key, path))
        rows.sort()
        return rows

    def total_bytes(self) -> int:
        return sum(size for _, size, _, _ in self._entry_files())

    def evict(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> List[str]:
        """Drop least-recently-used entries until the store fits the caps.

        Defaults to the store's configured caps; explicit arguments allow a
        one-off shrink (``repro-cache evict``).  Returns the evicted keys.
        """
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        if max_entries is None and max_bytes is None:
            return []
        with self.lock:
            rows = self._entry_files()
            total = sum(size for _, size, _, _ in rows)
            evicted: List[str] = []
            while rows and (
                (max_entries is not None and len(rows) > max_entries)
                or (max_bytes is not None and total > max_bytes)
            ):
                _, size, key, _ = rows.pop(0)
                if self.delete(key):
                    self.evictions += 1
                    evicted.append(key)
                total -= size
        return evicted

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_path = os.path.join(self.root, shard)
            # entry shards are two hex characters; anything else (the
            # quarantine shard, stray directories) is not entry space
            if len(shard) != 2 or not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                if name.endswith(".json"):
                    yield name[: -len(".json")]

    def entries(self) -> List[CacheEntry]:
        return [
            entry for entry in (self.load(key) for key in self.keys()) if entry
        ]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
