"""Greedy minimization of SAFE certificates, re-checked by the validator.

Cache hits are served by *re-validating* the stored certificate, so the
latency of a hit is the latency of the validator's SAT queries — which grows
with the size of the stored invariant (PDR fixpoints routinely carry dozens
of frame clauses, interval boxes two conjuncts per register).  Before a SAFE
certificate enters the store we therefore shrink it: conjuncts of an
inductive invariant (respectively auxiliary invariants of a k-inductive
claim) are dropped greedily, and every candidate is re-checked by the
*independent* :class:`repro.certs.CertificateValidator` — a conjunct is only
dropped if the remaining certificate still discharges all obligations.  The
minimized certificate is exactly as trustworthy as the original (it passed
the same validator) and strictly cheaper to re-validate.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.certs import (
    INDUCTIVE,
    K_INDUCTIVE,
    InductiveCertificate,
    KInductiveCertificate,
    validate_certificate,
)
from repro.exprs import TRUE, Expr, bool_and
from repro.exprs.nodes import Const, Op
from repro.netlist import TransitionSystem


@dataclass
class MinimizationResult:
    """Outcome of minimizing one certificate."""

    certificate: object
    kind: str
    #: conjunct counts before/after (aux invariants + the claim for k-induction)
    original_size: int
    size: int
    #: validator passes spent (each is a full obligation discharge)
    checks: int = 0
    runtime_s: float = 0.0

    @property
    def dropped(self) -> int:
        return self.original_size - self.size


def split_conjuncts(expr: Expr) -> List[Expr]:
    """Flatten a (nested) 1-bit conjunction into its conjunct list.

    ``bool_and`` builds left-nested binary ``and`` nodes with a TRUE
    identity; this undoes that shape (iteratively — PDR invariants nest
    deeply) and drops constant-true leaves.
    """
    conjuncts: List[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Op) and node.op == "and" and node.width == 1:
            stack.extend(reversed(node.args))
            continue
        if isinstance(node, Const) and node.width == 1 and node.value == 1:
            continue
        conjuncts.append(node)
    return conjuncts


def join_conjuncts(conjuncts: List[Expr]) -> Expr:
    return bool_and(*conjuncts) if conjuncts else TRUE

def _expr_size(expr: Expr) -> int:
    """Node count used to order drop attempts (largest conjunct first)."""
    seen = set()
    stack = [expr]
    count = 0
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        count += 1
        if isinstance(node, Op):
            stack.extend(node.args)
    return count


def minimize_certificate(
    system: TransitionSystem,
    certificate,
    timeout: Optional[float] = None,
    max_checks: Optional[int] = None,
) -> MinimizationResult:
    """Minimize a SAFE certificate against ``system``.

    Witnesses and unknown kinds are returned unchanged.  The certificate is
    assumed to already validate; minimization never hands back anything the
    validator has not just re-checked, so on any failure the input
    certificate is returned as-is.
    """
    start = time.monotonic()
    kind = getattr(certificate, "kind", None)
    if kind == INDUCTIVE:
        result = _minimize_inductive(system, certificate, timeout, max_checks)
    elif kind == K_INDUCTIVE:
        result = _minimize_k_inductive(system, certificate, timeout, max_checks)
    else:
        size = 1
        result = MinimizationResult(certificate, str(kind), size, size)
    result.runtime_s = time.monotonic() - start
    return result


def _greedy_drop(
    system: TransitionSystem,
    conjuncts: List[Expr],
    rebuild,
    timeout: Optional[float],
    max_checks: Optional[int],
) -> Tuple[List[Expr], int]:
    """Drop conjuncts greedily while ``rebuild(remaining)`` still validates.

    ``rebuild`` turns a conjunct list into a candidate certificate.  Returns
    the surviving conjuncts and the number of validator passes spent.
    Largest conjuncts are attempted first: dropping them buys the biggest
    validation savings, and a large conjunct is often implied by the rest.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    remaining = list(conjuncts)
    checks = 0
    order = sorted(remaining, key=_expr_size, reverse=True)
    for conjunct in order:
        if len(remaining) <= 1:
            break
        if max_checks is not None and checks >= max_checks:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        candidate = [c for c in remaining if c is not conjunct]
        budget = None if deadline is None else max(0.0, deadline - time.monotonic())
        validation = validate_certificate(system, rebuild(candidate), timeout=budget)
        checks += 1
        if validation.ok:
            remaining = candidate
    return remaining, checks


def _minimize_inductive(
    system: TransitionSystem,
    certificate: InductiveCertificate,
    timeout: Optional[float],
    max_checks: Optional[int],
) -> MinimizationResult:
    conjuncts = split_conjuncts(certificate.invariant)
    original_size = max(1, len(conjuncts))
    if len(conjuncts) <= 1:
        return MinimizationResult(
            certificate, INDUCTIVE, original_size, original_size
        )

    def rebuild(remaining: List[Expr]) -> InductiveCertificate:
        return dataclasses.replace(certificate, invariant=join_conjuncts(remaining))

    remaining, checks = _greedy_drop(
        system, conjuncts, rebuild, timeout, max_checks
    )
    minimized = rebuild(remaining) if len(remaining) < len(conjuncts) else certificate
    return MinimizationResult(
        minimized, INDUCTIVE, original_size, max(1, len(remaining)), checks
    )


def _minimize_k_inductive(
    system: TransitionSystem,
    certificate: KInductiveCertificate,
    timeout: Optional[float],
    max_checks: Optional[int],
) -> MinimizationResult:
    invariants = list(certificate.invariants)
    # the k-inductive claim itself counts as one conjunct; the auxiliary
    # strengthening invariants are the droppable part
    original_size = 1 + len(invariants)
    if not invariants:
        return MinimizationResult(
            certificate, K_INDUCTIVE, original_size, original_size
        )

    def rebuild(remaining: List[Expr]) -> KInductiveCertificate:
        return dataclasses.replace(certificate, invariants=tuple(remaining))

    deadline = None if timeout is None else time.monotonic() + timeout
    remaining = invariants
    checks = 0
    # first try dropping *all* auxiliaries at once (the property is often
    # k-inductive on its own once k has been found), then greedily one by one
    validation = validate_certificate(system, rebuild([]), timeout=timeout)
    checks += 1
    if validation.ok:
        remaining = []
    else:
        budget = None if deadline is None else max(0.0, deadline - time.monotonic())
        limit = None if max_checks is None else max(0, max_checks - checks)
        remaining, extra = _greedy_drop(
            system, invariants, rebuild, budget, limit
        )
        # _greedy_drop keeps at least one conjunct; for auxiliaries even the
        # last one may be droppable, and the all-at-once attempt above
        # already covered that case failing, so the floor is correct here
        checks += extra
    minimized = rebuild(remaining) if len(remaining) < len(invariants) else certificate
    return MinimizationResult(
        minimized, K_INDUCTIVE, original_size, 1 + len(remaining), checks
    )
