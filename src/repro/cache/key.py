"""Canonical content keys for verification queries.

A cached verdict may only be served for the *exact* query that produced it:
the same design semantics, the same property and the same frame
representation.  The key is therefore a content hash of the full
``(TransitionSystem, property, representation)`` triple — every declared
signal, initial value, next-state function, environment constraint, wire
definition and the property expression are serialized into one canonical
JSON document (expressions through the stable node format of
:mod:`repro.certs.exprjson`) and digested with SHA-256.

Any semantic mutation of the design — a changed width, a different reset
value, an edited next-state function, an added constraint — changes the key,
so a stale entry can never be looked up.  Renaming-only changes also change
the key: the cache prefers a spurious miss (re-verify) over any risk of a
wrong hit, and a hit is *re-validated* against the queried design anyway
(see :mod:`repro.cache.result_cache`).
"""

from __future__ import annotations

import hashlib
import json

from repro.certs.exprjson import expr_to_json
from repro.netlist import TransitionSystem

#: format tag baked into every key so key-schema changes invalidate old stores
KEY_FORMAT = "repro-cache-key-v1"


def system_to_canonical_json(system: TransitionSystem) -> dict:
    """Serialize a design's verification-relevant content canonically.

    Signal maps are sorted by name so that declaration order does not leak
    into the key; constraint order is kept (it is part of how the design was
    stated, and order sensitivity can only cause a miss, never a wrong hit).
    """
    return {
        "name": system.name,
        "inputs": sorted(system.inputs.items()),
        "state_vars": sorted(system.state_vars.items()),
        "init": sorted(
            (name, expr_to_json(expr)) for name, expr in system.init.items()
        ),
        "next": sorted(
            (name, expr_to_json(expr)) for name, expr in system.next.items()
        ),
        "wires": sorted(
            (name, expr_to_json(expr)) for name, expr in system.wires.items()
        ),
        "constraints": [expr_to_json(expr) for expr in system.constraints],
    }


def cache_key(
    system: TransitionSystem, property_name: str, representation: str = "word"
) -> str:
    """The cache key of one verification query, as a SHA-256 hex digest."""
    prop = system.property_by_name(property_name)
    document = {
        "format": KEY_FORMAT,
        "representation": representation,
        "property": property_name,
        "property_expr": expr_to_json(prop.expr),
        "system": system_to_canonical_json(system),
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: format tag for compiled-kernel cache keys (bumped with the kernel ABI)
KERNEL_KEY_FORMAT = "repro-kernel-key-v1"


def kernel_key(system: TransitionSystem, abi_version: int) -> str:
    """The on-disk build-cache key of one design's compiled step kernel.

    Unlike :func:`cache_key` this covers *all* properties (the kernel checks
    every assertion in one step call) plus the C ABI version, so an ABI bump
    or any semantic change to any property forces a rebuild.
    """
    document = {
        "format": KERNEL_KEY_FORMAT,
        "abi": abi_version,
        "properties": sorted(
            (prop.name, expr_to_json(prop.expr)) for prop in system.properties
        ),
        "system": system_to_canonical_json(system),
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
