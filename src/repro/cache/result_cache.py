"""The certificate-keyed result cache: re-validate instead of re-verify.

:class:`ResultCache` serves repeated verification queries from a store of
validated certificates.  The contract:

* the key is a content hash of ``(design, property, representation)``
  (:func:`repro.cache.key.cache_key`), so any semantic mutation of the query
  misses;
* a lookup *never* trusts the store: the entry's certificate is re-validated
  against the queried design by the independent
  :class:`repro.certs.CertificateValidator` before the verdict is served.  A
  hit is a validated certificate; an entry that fails re-validation (corrupt,
  tampered, or wrong) is deleted and reported as a miss;
* only definitive verdicts carrying certificates that the validator accepts
  are stored, and SAFE certificates are shrunk first
  (:mod:`repro.cache.minimize`) so the re-validation on future hits stays
  fast.

Re-validating is much cheaper than re-verifying: the engine searched for the
invariant or trace, the validator only checks it (a handful of SAT queries
respectively one concrete replay).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.cache.key import cache_key
from repro.cache.minimize import MinimizationResult, minimize_certificate
from repro.cache.store import CacheEntry, CertificateStore
from repro.certs import (
    INDUCTIVE,
    K_INDUCTIVE,
    WITNESS,
    ValidationResult,
    validate_certificate,
)
from repro.engines.result import Status, VerificationResult
from repro.jsonio import write_json_atomic
from repro.netlist import TransitionSystem
from repro.obs import telemetry as _telemetry

#: certificate kinds that can justify each definitive status (a witness can
#: never be served for SAFE, an invariant never for UNSAFE)
_KINDS_FOR_STATUS = {
    Status.UNSAFE: (WITNESS,),
    Status.SAFE: (INDUCTIVE, K_INDUCTIVE),
}


@dataclass
class CacheLookup:
    """Outcome of one cache lookup."""

    hit: bool
    key: str
    reason: str
    result: Optional[VerificationResult] = None
    entry: Optional[CacheEntry] = None
    validation: Optional[ValidationResult] = None
    #: an entry existed but failed re-validation and was dropped
    demoted: bool = False
    runtime_s: float = 0.0


@dataclass
class CacheStoreOutcome:
    """Outcome of offering one result to the cache."""

    stored: bool
    key: str
    reason: str
    path: Optional[str] = None
    minimization: Optional[MinimizationResult] = None
    validate_original_s: Optional[float] = None
    validate_minimized_s: Optional[float] = None


class PersistentCounters:
    """Lifetime cache counters persisted next to the entries.

    The in-memory counters on :class:`ResultCache` reset with every process;
    these survive in ``<root>/counters.json`` (atomic writes, tolerant of a
    missing or corrupt file) so ``repro-cache stats`` can report hit/miss/
    re-validation totals across the cache's whole life, not just the current
    CLI invocation.
    """

    FILENAME = "counters.json"
    FIELDS = (
        "hits",
        "misses",
        "stores",
        "demotions",
        "revalidations_ok",
        "revalidations_failed",
    )

    def __init__(self, root: str) -> None:
        self.path = os.path.join(root, self.FILENAME)
        self.values: Dict[str, int] = {name: 0 for name in self.FIELDS}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            for name in self.FIELDS:
                value = loaded.get(name)
                if isinstance(value, int) and value >= 0:
                    self.values[name] = value
        except (OSError, ValueError):
            pass  # fresh cache or corrupt counter file: start from zero

    def bump(self, **deltas: int) -> None:
        for name, delta in deltas.items():
            if delta:
                self.values[name] = self.values.get(name, 0) + delta
        try:
            write_json_atomic(self.path, self.values)
        except OSError:  # pragma: no cover - read-only cache directory
            pass

    def as_dict(self) -> Dict[str, int]:
        return dict(self.values)


class ResultCache:
    """An on-disk, certificate-keyed verification result cache."""

    def __init__(
        self,
        root: str,
        validation_timeout: Optional[float] = None,
        minimize: bool = True,
        minimize_max_checks: int = 64,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.store_backend = CertificateStore(
            root, max_entries=max_entries, max_bytes=max_bytes
        )
        self.validation_timeout = validation_timeout
        self.minimize = minimize
        self.minimize_max_checks = minimize_max_checks
        # observability counters (per ResultCache instance)
        self.hits = 0
        self.misses = 0
        self.demotions = 0
        self.stores = 0
        # lifetime counters shared by every process using this cache root
        self.persistent = PersistentCounters(self.store_backend.root)

    # ------------------------------------------------------------------
    @property
    def root(self) -> str:
        return self.store_backend.root

    def key_for(
        self, system: TransitionSystem, property_name: str, representation: str = "word"
    ) -> str:
        return cache_key(system, property_name, representation)

    # ------------------------------------------------------------------
    def lookup(
        self,
        system: TransitionSystem,
        property_name: str,
        representation: str = "word",
    ) -> CacheLookup:
        """Look one query up; a hit is served only after re-validation."""
        start = time.monotonic()
        key = self.key_for(system, property_name, representation)
        with _telemetry.span(
            "cache.lookup", key=key, property=property_name
        ) as lookup_span:

            def miss(
                reason: str,
                demoted: bool = False,
                revalidate_failed: bool = False,
                **extra,
            ) -> CacheLookup:
                self.misses += 1
                if demoted:
                    self.demotions += 1
                self.persistent.bump(
                    misses=1,
                    demotions=1 if demoted else 0,
                    revalidations_failed=1 if revalidate_failed else 0,
                )
                _telemetry.counter("cache.miss")
                if demoted:
                    _telemetry.counter("cache.demotion")
                if revalidate_failed:
                    _telemetry.counter("cache.revalidate_fail")
                lookup_span.set_outcome("demoted" if demoted else "miss")
                return CacheLookup(
                    False,
                    key,
                    reason,
                    demoted=demoted,
                    runtime_s=time.monotonic() - start,
                    **extra,
                )

            entry = self.store_backend.load(key)
            if entry is None:
                return miss("absent")
            allowed = _KINDS_FOR_STATUS.get(entry.status)
            certificate_kind = getattr(entry.certificate, "kind", None)
            if (
                allowed is None
                or certificate_kind not in allowed
                or entry.property_name != property_name
                or getattr(entry.certificate, "property_name", None) != property_name
            ):
                # malformed provenance: the certificate cannot justify the claim
                self.store_backend.delete(key)
                return miss(
                    "entry cannot justify its verdict", demoted=True, entry=entry
                )

            validation = validate_certificate(
                system, entry.certificate, timeout=self.validation_timeout
            )
            if not validation.ok:
                self.store_backend.delete(key)
                return miss(
                    f"re-validation failed: {validation.reason}",
                    demoted=True,
                    revalidate_failed=True,
                    entry=entry,
                    validation=validation,
                )

            self.hits += 1
            self.persistent.bump(hits=1, revalidations_ok=1)
            _telemetry.counter("cache.hit")
            lookup_span.set_outcome("hit")
            runtime = time.monotonic() - start
            result = VerificationResult(
                entry.status,
                f"cache:{entry.engine}" if entry.engine else "cache",
                property_name,
                runtime=runtime,
                detail={
                    "cache": {
                        "key": key,
                        "design": entry.design,
                        "engine": entry.engine,
                        "representation": entry.representation,
                        "minimized": entry.minimized,
                        "invariant_size": entry.size,
                    },
                    "validation": validation.to_json(),
                },
                reason="served from the certificate cache after re-validation",
                certificate=entry.certificate,
            )
            return CacheLookup(
                True,
                key,
                "hit (re-validated)",
                result=result,
                entry=entry,
                validation=validation,
                runtime_s=runtime,
            )

    # ------------------------------------------------------------------
    def store(
        self,
        system: TransitionSystem,
        property_name: str,
        representation: str,
        result: VerificationResult,
        design: str = "",
    ) -> CacheStoreOutcome:
        """Offer one engine result to the cache.

        Only definitive verdicts whose certificate the independent validator
        accepts enter the store; SAFE certificates are minimized first.  The
        timing of the original-vs-minimized validator passes is recorded so
        harnesses can report the hit-latency effect of minimization.
        """
        key = self.key_for(system, property_name, representation)
        with _telemetry.span(
            "cache.store", key=key, property=property_name
        ) as store_span:
            certificate = getattr(result, "certificate", None)
            allowed = _KINDS_FOR_STATUS.get(result.status)
            if allowed is None:
                store_span.set_outcome("rejected")
                return CacheStoreOutcome(False, key, "verdict is not definitive")
            if certificate is None:
                store_span.set_outcome("rejected")
                return CacheStoreOutcome(False, key, "result carries no certificate")
            if getattr(certificate, "kind", None) not in allowed:
                store_span.set_outcome("rejected")
                return CacheStoreOutcome(
                    False, key, "certificate kind cannot justify the verdict"
                )

            t0 = time.monotonic()
            validation = validate_certificate(
                system, certificate, timeout=self.validation_timeout
            )
            validate_original_s = time.monotonic() - t0
            if not validation.ok:
                _telemetry.counter("cache.store_rejected")
                store_span.set_outcome("rejected")
                return CacheStoreOutcome(
                    False,
                    key,
                    f"certificate failed validation: {validation.reason}",
                    validate_original_s=validate_original_s,
                )

            minimization: Optional[MinimizationResult] = None
            validate_minimized_s = validate_original_s
            if self.minimize and result.status == Status.SAFE:
                with _telemetry.span("cache.minimize", key=key) as minimize_span:
                    minimization = minimize_certificate(
                        system,
                        certificate,
                        timeout=self.validation_timeout,
                        max_checks=self.minimize_max_checks,
                    )
                    minimize_span.annotate(dropped=minimization.dropped)
                certificate = minimization.certificate
                if minimization.dropped:
                    t1 = time.monotonic()
                    final = validate_certificate(
                        system, certificate, timeout=self.validation_timeout
                    )
                    validate_minimized_s = time.monotonic() - t1
                    if not final.ok:  # pragma: no cover - minimizer re-checks drops
                        certificate = getattr(result, "certificate")
                        minimization = None
                        validate_minimized_s = validate_original_s

            # both single-engine VerificationResults and aggregated
            # PortfolioResults (winner_engine) are storable
            engine = (
                getattr(result, "engine", None)
                or getattr(result, "winner_engine", None)
                or ""
            )
            entry = CacheEntry(
                key=key,
                status=result.status,
                property_name=property_name,
                engine=engine,
                representation=representation,
                certificate=certificate,
                design=design or getattr(system, "name", ""),
                minimized=bool(minimization and minimization.dropped),
                original_size=minimization.original_size if minimization else None,
                size=minimization.size if minimization else None,
                extra={
                    "validate_original_s": round(validate_original_s, 6),
                    "validate_minimized_s": round(validate_minimized_s, 6),
                },
            )
            path = self.store_backend.save(entry)
            self.stores += 1
            self.persistent.bump(stores=1)
            _telemetry.counter("cache.store")
            store_span.set_outcome("stored")
            return CacheStoreOutcome(
                True,
                key,
                "stored",
                path=path,
                minimization=minimization,
                validate_original_s=validate_original_s,
                validate_minimized_s=validate_minimized_s,
            )

    # ------------------------------------------------------------------
    def fsck(
        self,
        resolve: Optional[Callable[[CacheEntry], Optional[TransitionSystem]]] = None,
        prune: bool = True,
    ) -> Dict[str, object]:
        """Re-validate every store entry and heal what fails.

        For each key: an undecodable document is quarantined (by the load
        path), an entry whose certificate cannot justify its verdict or
        fails independent re-validation against its design is pruned
        (``prune=False`` only reports).  ``resolve`` maps an entry to its
        :class:`~repro.netlist.TransitionSystem`; the default resolver
        loads suite benchmarks by the recorded design name — entries whose
        design it cannot resolve get the structural checks only and are
        reported as ``unresolved``.
        """
        if resolve is None:
            resolve = _resolve_benchmark_design

        report: Dict[str, object] = {
            "checked": 0,
            "ok": 0,
            "pruned": [],
            "quarantined": [],
            "unresolved": [],
        }
        for key in list(self.store_backend.keys()):
            report["checked"] += 1
            quarantined_before = self.store_backend.quarantined
            entry = self.store_backend.load(key)
            if entry is None:
                if self.store_backend.quarantined > quarantined_before:
                    report["quarantined"].append(key)
                continue

            def fail(reason: str) -> None:
                if prune:
                    self.store_backend.delete(key)
                report["pruned"].append({"key": key, "reason": reason})

            allowed = _KINDS_FOR_STATUS.get(entry.status)
            kind = getattr(entry.certificate, "kind", None)
            if allowed is None or kind not in allowed:
                fail("certificate kind cannot justify the verdict")
                continue
            if getattr(entry.certificate, "property_name", None) != entry.property_name:
                fail("certificate/property provenance mismatch")
                continue
            system = resolve(entry)
            if system is None:
                report["unresolved"].append(key)
                report["ok"] += 1  # structurally sound; design not at hand
                continue
            validation = validate_certificate(
                system, entry.certificate, timeout=self.validation_timeout
            )
            if not validation.ok:
                fail(f"re-validation failed: {validation.reason}")
                continue
            report["ok"] += 1

        report["entries"] = len(self.store_backend)
        report["bytes"] = self.store_backend.total_bytes()
        report["quarantine_backlog"] = len(self.store_backend.quarantine_keys())
        report["clean"] = not report["pruned"] and not report["quarantined"]
        return report

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "demotions": self.demotions,
            "stores": self.stores,
            "entries": len(self.store_backend),
            "evictions": self.store_backend.evictions,
            "quarantined": self.store_backend.quarantined,
            "lifetime": self.persistent.as_dict(),
        }


def _resolve_benchmark_design(entry: CacheEntry) -> Optional[TransitionSystem]:
    """Default fsck resolver: look the recorded design name up in the suite."""
    if not entry.design:
        return None
    try:
        from repro.benchmarks import load_system_cached

        return load_system_cached(entry.design)
    except Exception:  # noqa: BLE001 - unknown design name
        return None
