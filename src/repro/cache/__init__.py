"""Certificate-keyed verification result cache.

The serving hot path of the reproduction: repeated verification queries are
answered from an on-disk store of validated certificates keyed by a content
hash of ``(design, property, representation)``.  A hit *re-validates* the
stored certificate with the independent checker instead of re-running an
engine — far cheaper, and exactly as trustworthy (an entry that fails
re-validation is demoted to a miss and dropped).  SAFE certificates are
minimized before storage so hit latency stays low.
"""

from repro.cache.key import KEY_FORMAT, cache_key, system_to_canonical_json
from repro.cache.minimize import (
    MinimizationResult,
    join_conjuncts,
    minimize_certificate,
    split_conjuncts,
)
from repro.cache.result_cache import (
    CacheLookup,
    CacheStoreOutcome,
    ResultCache,
)
from repro.cache.store import (
    ENTRY_FORMAT,
    QUARANTINE_DIR,
    CacheEntry,
    CertificateStore,
)

__all__ = [
    "KEY_FORMAT",
    "ENTRY_FORMAT",
    "QUARANTINE_DIR",
    "cache_key",
    "system_to_canonical_json",
    "CacheEntry",
    "CertificateStore",
    "MinimizationResult",
    "minimize_certificate",
    "split_conjuncts",
    "join_conjuncts",
    "CacheLookup",
    "CacheStoreOutcome",
    "ResultCache",
]
