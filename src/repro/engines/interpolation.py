"""Interpolation-based unbounded model checking (McMillan, CAV 2003).

The engine computes an over-approximation of the reachable states by
iterating bounded checks and extracting Craig interpolants from their
refutations:

1. ``R := Init``.
2. Check ``R(s0) ∧ T(s0,s1) ∧ [T(s1..sk) ∧ ¬P somewhere in frames 1..k]``.
   If satisfiable and ``R = Init`` the trace is a real counterexample; if
   satisfiable with ``R ⊃ Init`` the approximation was too coarse, so the
   unrolling depth ``k`` is increased and the iteration restarts from
   ``Init``.
3. If unsatisfiable, the interpolant ``I`` of the partition
   ``A = R(s0) ∧ T(s0,s1)`` / ``B = rest`` is an over-approximation of the
   image of ``R`` expressed over the frame-1 state bits.  If ``I`` implies the
   accumulated reachable-set approximation, a fixpoint is reached and the
   property is proved; otherwise ``I`` (renamed to frame 0) is added to ``R``
   and the loop continues.

This is the algorithm behind ABC's interpolation engine at the bit level and
CPAChecker's interpolation-based analysis at the software level, compared in
Figure 4 of the paper.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.certs import InductiveCertificate, witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import FrameEncoder, frame_name
from repro.engines.result import Budget, Status, VerificationResult
from repro.exprs import (
    Expr,
    FALSE,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    bv_extract,
    bv_var,
    simplify,
)
from repro.netlist import TransitionSystem
from repro.sat.interpolate import Interpolator, ItpNode
from repro.smt import BVResult, BVSolver


class InterpolationEngine(Engine):
    """McMillan-style interpolation model checker."""

    name = "interpolation"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=True, representations=("word", "bit"), complete=True
    )

    def __init__(
        self,
        system: TransitionSystem,
        initial_depth: int = 1,
        max_depth: int = 64,
        max_iterations: int = 200,
        representation: str = "word",
        incremental_template: bool = True,
    ) -> None:
        super().__init__(system)
        self.initial_depth = max(1, initial_depth)
        self.max_depth = max_depth
        self.max_iterations = max_iterations
        self.representation = representation
        self.incremental_template = incremental_template

    # ------------------------------------------------------------------
    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()

        # the iteration below only examines frames >= 1, so the initial state
        # itself is checked once up front
        initial_check = self._check_initial_state(property_name, budget)
        if initial_check is not None:
            return initial_check

        depth = self.initial_depth
        iterations = 0

        while depth <= self.max_depth:
            reached_disjuncts: List[Expr] = []  # approximation beyond Init (frame-0 terms)
            frontier: Optional[Expr] = None  # None means "Init"
            while True:
                iterations += 1
                if budget.expired() or iterations > self.max_iterations:
                    return self._timeout(property_name, budget, depth, iterations)
                outcome, interpolant_expr, cex = self._bounded_check(
                    property_name, frontier, depth, budget
                )
                if outcome == "timeout":
                    return self._timeout(property_name, budget, depth, iterations)
                if outcome == "sat":
                    if frontier is None:
                        return VerificationResult(
                            Status.UNSAFE,
                            self.name,
                            property_name,
                            runtime=time.monotonic() - start,
                            counterexample=cex,
                            detail={"depth": depth},
                            certificate=witness_from_counterexample(
                                self.system, self.name, cex
                            ),
                        )
                    # spurious due to over-approximation: deepen and restart
                    depth += 1
                    break
                # UNSAT: interpolant over-approximates the image of the frontier
                assert interpolant_expr is not None
                if self._implies_reached(interpolant_expr, reached_disjuncts, budget):
                    # the accumulated approximation R = Init ∨ I_1 ∨ ... is an
                    # inductive invariant: each disjunct over-approximates the
                    # image of its predecessor and the new interpolant folded
                    # back into R at the fixpoint
                    invariant = simplify(
                        bool_or(self._init_state_expr(), *reached_disjuncts)
                    )
                    return VerificationResult(
                        Status.SAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        detail={
                            "depth": depth,
                            "iterations": iterations,
                            "disjuncts": len(reached_disjuncts) + 1,
                        },
                        reason="interpolant fixpoint reached",
                        certificate=InductiveCertificate(
                            property_name, self.name, invariant
                        ),
                    )
                reached_disjuncts.append(interpolant_expr)
                frontier = interpolant_expr
        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            detail={"max_depth": self.max_depth},
            reason="maximum interpolation depth exceeded",
        )

    # ------------------------------------------------------------------
    def _init_state_expr(self) -> Expr:
        """The initial state as a predicate over the unstamped state variables."""
        flat = self.system.flattened()
        return bool_and(
            *[
                bv_var(name, width).eq(flat.init[name])
                for name, width in flat.state_vars.items()
            ]
        )

    # ------------------------------------------------------------------
    def _check_initial_state(
        self, property_name: str, budget: Budget
    ) -> Optional[VerificationResult]:
        """Return an UNSAFE/TIMEOUT result if the property already fails at cycle 0."""
        encoder = FrameEncoder(
            self.system,
            representation=self.representation,
            incremental_template=self.incremental_template,
        )
        encoder.solver.set_deadline(budget.deadline)
        encoder.assert_init(0)
        literal = encoder.property_literal(property_name, 0)
        outcome = encoder.solver.check(assumptions=[-literal])
        if outcome == BVResult.SAT:
            cex = encoder.extract_counterexample(property_name, 0)
            return VerificationResult(
                Status.UNSAFE,
                self.name,
                property_name,
                runtime=budget.elapsed(),
                counterexample=cex,
                detail={"depth": 0},
                certificate=witness_from_counterexample(self.system, self.name, cex),
            )
        if outcome == BVResult.UNKNOWN:
            return self._timeout(property_name, budget, 0, 0)
        return None

    # ------------------------------------------------------------------
    def _bounded_check(
        self,
        property_name: str,
        frontier: Optional[Expr],
        depth: int,
        budget: Budget,
    ) -> Tuple[str, Optional[Expr], Optional[object]]:
        """One interpolation query.

        Returns ``(outcome, interpolant, counterexample)`` where outcome is
        ``"sat"``, ``"unsat"`` or ``"timeout"``.  The interpolant is an
        expression over the *unstamped* state variables.
        """
        encoder = FrameEncoder(
            self.system,
            proof=True,
            representation=self.representation,
            incremental_template=self.incremental_template,
        )
        solver = encoder.solver
        solver.set_deadline(budget.deadline)
        sat_solver = solver.solver

        # ---- A part: frontier at frame 0 and the first transition
        a_start = sat_solver.num_clauses
        if frontier is None:
            encoder.assert_init(0)
        else:
            solver.assert_expr(encoder.rename_to_frame(frontier, 0))
        encoder.assert_trans(0)
        a_end = sat_solver.num_clauses

        # barrier: B must not share internal Tseitin/gate nodes with A
        solver.blaster.clear_cache()

        # ---- B part: remaining transitions and the negated property
        b_start = sat_solver.num_clauses
        bad_literals = []
        for frame in range(1, depth):
            encoder.assert_trans(frame)
        for frame in range(1, depth + 1):
            bad_literals.append(-encoder.property_literal(property_name, frame))
        sat_solver.add_clause(bad_literals)
        b_end = sat_solver.num_clauses

        outcome = solver.check()
        if outcome == BVResult.SAT:
            cex = encoder.extract_counterexample(property_name, depth)
            return "sat", None, cex
        if outcome == BVResult.UNKNOWN:
            return "timeout", None, None

        interpolator = Interpolator(
            sat_solver, range(a_start, a_end), range(b_start, b_end)
        )
        node = interpolator.compute()
        interpolant = self._itp_to_state_expr(node, encoder, frame=1)
        return "unsat", simplify(interpolant), None

    # ------------------------------------------------------------------
    def _itp_to_state_expr(self, node: ItpNode, encoder: FrameEncoder, frame: int) -> Expr:
        """Convert an interpolant over frame-``frame`` state bits into an expression
        over the unstamped state variables."""
        bit_map = encoder.solver.blaster.bit_map()
        state_widths = encoder.state_vars()
        suffix = f"@{frame}"

        true_var = abs(encoder.solver.blaster.true_lit)

        def convert(n: ItpNode) -> Expr:
            if n.kind == "const":
                return TRUE if n.value else FALSE
            if n.kind == "lit":
                variable = abs(n.lit)
                if variable == true_var:
                    # the shared constant-true variable
                    return TRUE if n.lit > 0 else FALSE
                mapped = bit_map.get(variable)
                if mapped is None:
                    raise RuntimeError(
                        "interpolant mentions an internal solver variable; "
                        "the A/B sharing barrier was violated"
                    )
                name, bit_index = mapped
                if not name.endswith(suffix):
                    raise RuntimeError(
                        f"interpolant variable {name!r} is not a frame-{frame} state bit"
                    )
                base = name[: -len(suffix)]
                if base not in state_widths:
                    raise RuntimeError(
                        f"interpolant variable {name!r} does not map to a state variable"
                    )
                bit = bv_extract(bv_var(base, state_widths[base]), bit_index, bit_index)
                return bit if n.lit > 0 else bool_not(bit)
            children = [convert(child) for child in n.args]
            if n.kind == "and":
                return bool_and(*children)
            return bool_or(*children)

        return convert(node)

    def _implies_reached(
        self, interpolant: Expr, reached: List[Expr], budget: Budget
    ) -> bool:
        """Check whether the new interpolant is already covered (fixpoint test)."""
        flat = self.system.flattened()
        init_expr = bool_and(
            *[
                bv_var(name, width).eq(flat.init[name])
                for name, width in flat.state_vars.items()
            ]
        )
        covered = bool_or(init_expr, *reached)
        solver = BVSolver()
        solver.set_deadline(budget.deadline)
        solver.assert_expr(interpolant)
        solver.assert_expr(bool_not(covered))
        return solver.check() == BVResult.UNSAT

    def _timeout(
        self, property_name: str, budget: Budget, depth: int, iterations: int
    ) -> VerificationResult:
        return VerificationResult(
            Status.TIMEOUT,
            self.name,
            property_name,
            runtime=budget.elapsed(),
            detail={"depth": depth, "iterations": iterations},
        )
