"""Interpolation-based unbounded model checking (McMillan, CAV 2003).

The engine computes an over-approximation of the reachable states by
iterating bounded checks and extracting Craig interpolants from their
refutations:

1. ``R := Init``.
2. Check ``R(s0) ∧ T(s0,s1) ∧ [T(s1..sk) ∧ ¬P somewhere in frames 1..k]``.
   If satisfiable and ``R = Init`` the trace is a real counterexample; if
   satisfiable with ``R ⊃ Init`` the approximation was too coarse, so the
   unrolling depth ``k`` is increased and the iteration restarts from
   ``Init``.
3. If unsatisfiable, the interpolant ``I`` of the partition
   ``A = R(s0) ∧ T(s0,s1)`` / ``B = rest`` is an over-approximation of the
   image of ``R`` expressed over the frame-1 state bits.  If ``I`` implies the
   accumulated reachable-set approximation, a fixpoint is reached and the
   property is proved; otherwise ``I`` (renamed to frame 0) is added to ``R``
   and the loop continues.

This is the algorithm behind ABC's interpolation engine at the bit level and
CPAChecker's interpolation-based analysis at the software level, compared in
Figure 4 of the paper.

Persistent sessions
-------------------

With ``persistent_session=True`` (the default, requires the template path)
*one* proof-logging solver serves every iteration at every depth: the
unrolled transition frames and property cones are stamped once and only
extended as the depth grows, the frontier ``R`` is asserted under an
activation literal and retracted when replaced, and the per-depth "bad
somewhere" disjunction enters each query as an assumption literal.  The A/B
partition of each query is expressed as clause-id sets over the cumulative
database; unsatisfiability under assumptions yields a resolution chain over
the failed assumptions (:attr:`repro.sat.solver.Solver.assumption_core_chain`)
which the :class:`repro.sat.Interpolator` completes against the assumption
literals' virtual unit clauses.  Learned clauses are implied by the clause
database alone (activation is assumption-based), so everything the solver
learned about the transition relation in earlier iterations keeps pruning
the later ones.  The legacy path (``persistent_session=False``) builds a
fresh solver per bounded check.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.certs import InductiveCertificate, witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import FrameEncoder, flattened_cached, frame_name
from repro.engines.result import Budget, Status, VerificationResult
from repro.exprs import (
    Expr,
    FALSE,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    bv_extract,
    bv_var,
    simplify,
)
from repro.netlist import TransitionSystem
from repro.obs import telemetry as _telemetry
from repro.sat.interpolate import Interpolator, ItpNode
from repro.sat.solver import SolverStats
from repro.smt import BVResult, BVSolver


class _InterpolationSession:
    """One persistent proof-logging solver shared by every bounded check.

    Tracks the cumulative A/B clause-id partition: the frame-0 transition,
    the (guarded) ``Init``/frontier assertions and their retirement units are
    A; the deeper transition frames, the property cones at frames >= 1 and
    the per-depth bad disjunction gates are B.  The property cone at frame 0
    (used only by the initial-state check, which never interpolates) is
    stamped on the A side so the frame-0 bits stay A-local.
    """

    def __init__(self, engine: "InterpolationEngine", property_name: str, budget: Budget) -> None:
        self.encoder = FrameEncoder(
            engine.system,
            proof=True,
            representation=engine.representation,
            incremental_template=True,
        )
        self.solver = self.encoder.solver
        self.solver.set_deadline(budget.deadline)
        self.sat = self.solver.solver
        self.property_name = property_name
        self.a_ids: List[int] = []
        self.b_ids: List[int] = []
        #: frames 0..frames-1 have their transition stamped
        self.frames = 0
        #: per-depth "¬P somewhere in 1..depth" assumption literal
        self.bad_literals: Dict[int, int] = {}
        self.frontier_act: Optional[int] = None

        self._record(self.a_ids, self.encoder.assert_trans(0))
        self.frames = 1
        self.init_act = self.encoder.new_activation()
        self._record(self.a_ids, self.encoder.assert_init(0, guard=self.init_act))

    # ------------------------------------------------------------------
    def _record(self, ids: List[int], clause_range: Tuple[int, int]) -> None:
        start, end = clause_range
        ids.extend(range(start, end))

    def _property(self, frame: int, ids: List[int]) -> int:
        """The property literal at ``frame``; its (lazy) stamp lands in ``ids``."""
        start = self.sat.num_clauses
        literal = self.encoder.property_literal(self.property_name, frame)
        end = self.sat.num_clauses
        if end > start:
            ids.extend(range(start, end))
        return literal

    def ensure_depth(self, depth: int) -> None:
        """Extend the unrolling so frames ``0..depth-1`` are stamped."""
        while self.frames < depth:
            self._record(self.b_ids, self.encoder.assert_trans(self.frames))
            self.frames += 1

    def bad_literal(self, depth: int) -> int:
        """An assumption literal equivalent to "¬P at some frame in 1..depth"."""
        cached = self.bad_literals.get(depth)
        if cached is not None:
            return cached
        bads = [-self._property(frame, self.b_ids) for frame in range(1, depth + 1)]
        start = self.sat.num_clauses
        literal = self.solver.blaster.encoder.or_gate(bads)
        self._record(self.b_ids, (start, self.sat.num_clauses))
        self.bad_literals[depth] = literal
        return literal

    def set_frontier(self, frontier: Optional[Expr]) -> int:
        """Install ``frontier`` (None means Init); returns the assumption literal.

        The previous frontier's activation is retired — its guarded clauses
        and the learned clauses recorded against it are dropped, while
        everything learned about the transition frames survives.
        """
        if self.frontier_act is not None:
            self.a_ids.append(self.encoder.retire(self.frontier_act))
            self.frontier_act = None
        if frontier is None:
            return self.init_act
        act = self.encoder.new_activation()
        self._record(
            self.a_ids,
            self.solver.assert_guarded(self.encoder.rename_to_frame(frontier, 0), act),
        )
        self.frontier_act = act
        return act

    # ------------------------------------------------------------------
    def check_initial(self) -> str:
        """Is the property violated in the initial state itself?"""
        literal = self._property(0, self.a_ids)
        return self.solver.check(assumptions=[self.init_act, -literal])

    def bounded_check(
        self, frontier: Optional[Expr], depth: int
    ) -> Tuple[str, Optional[ItpNode]]:
        """One interpolation query; returns (outcome, interpolant node)."""
        self.ensure_depth(depth)
        bad = self.bad_literal(depth)
        act = self.set_frontier(frontier)
        outcome = self.solver.check(assumptions=[act, bad])
        if outcome != BVResult.UNSAT:
            return outcome, None
        interpolator = Interpolator(
            self.sat,
            self.a_ids,
            self.b_ids,
            assumptions=[(act, "A"), (bad, "B")],
        )
        return outcome, interpolator.compute()


class InterpolationEngine(Engine):
    """McMillan-style interpolation model checker."""

    name = "interpolation"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=True, representations=("word", "bit"), complete=True
    )

    def __init__(
        self,
        system: TransitionSystem,
        initial_depth: int = 1,
        max_depth: int = 64,
        max_iterations: int = 200,
        representation: str = "word",
        incremental_template: bool = True,
        persistent_session: bool = True,
    ) -> None:
        super().__init__(system)
        self.initial_depth = max(1, initial_depth)
        self.max_depth = max_depth
        self.max_iterations = max_iterations
        self.representation = representation
        self.incremental_template = incremental_template
        self.persistent_session = persistent_session

    # ------------------------------------------------------------------
    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()
        self._stats = SolverStats()
        self._fixpoint_solver: Optional[BVSolver] = None
        # the session layer needs the template path (the legacy re-blast has
        # no A/B sharing barrier across queries)
        session: Optional[_InterpolationSession] = None
        if self.persistent_session and self.incremental_template:
            session = _InterpolationSession(self, property_name, budget)

        # the iteration below only examines frames >= 1, so the initial state
        # itself is checked once up front
        initial_check = self._check_initial_state(property_name, budget, session)
        if initial_check is not None:
            self._fold_stats(session)
            return initial_check

        depth = self.initial_depth
        iterations = 0

        while depth <= self.max_depth:
            reached_disjuncts: List[Expr] = []  # approximation beyond Init (frame-0 terms)
            frontier: Optional[Expr] = None  # None means "Init"
            while True:
                iterations += 1
                if budget.expired() or iterations > self.max_iterations:
                    self._fold_stats(session)
                    return self._timeout(property_name, budget, depth, iterations)
                with _telemetry.span(
                    "engine.interpolation.iteration",
                    depth=depth,
                    iteration=iterations,
                ) as iteration_span:
                    outcome, interpolant_expr, cex = self._bounded_check(
                        property_name, frontier, depth, budget, session
                    )
                    iteration_span.set_outcome(outcome)
                if outcome == "timeout":
                    self._fold_stats(session)
                    return self._timeout(property_name, budget, depth, iterations)
                if outcome == "sat":
                    if frontier is None:
                        self._fold_stats(session)
                        return VerificationResult(
                            Status.UNSAFE,
                            self.name,
                            property_name,
                            runtime=time.monotonic() - start,
                            counterexample=cex,
                            detail={"depth": depth, "solver_stats": self._stats.as_dict()},
                            certificate=witness_from_counterexample(
                                self.system, self.name, cex
                            ),
                        )
                    # spurious due to over-approximation: deepen and restart
                    depth += 1
                    break
                # UNSAT: interpolant over-approximates the image of the frontier
                assert interpolant_expr is not None
                if self._implies_reached(interpolant_expr, reached_disjuncts, budget):
                    # the accumulated approximation R = Init ∨ I_1 ∨ ... is an
                    # inductive invariant: each disjunct over-approximates the
                    # image of its predecessor and the new interpolant folded
                    # back into R at the fixpoint
                    invariant = simplify(
                        bool_or(self._init_state_expr(), *reached_disjuncts)
                    )
                    self._fold_stats(session)
                    return VerificationResult(
                        Status.SAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        detail={
                            "depth": depth,
                            "iterations": iterations,
                            "disjuncts": len(reached_disjuncts) + 1,
                            "solver_stats": self._stats.as_dict(),
                        },
                        reason="interpolant fixpoint reached",
                        certificate=InductiveCertificate(
                            property_name, self.name, invariant
                        ),
                    )
                reached_disjuncts.append(interpolant_expr)
                frontier = interpolant_expr
        self._fold_stats(session)
        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            detail={"max_depth": self.max_depth, "solver_stats": self._stats.as_dict()},
            reason="maximum interpolation depth exceeded",
        )

    # ------------------------------------------------------------------
    def _fold_stats(self, session: Optional[_InterpolationSession]) -> None:
        if session is not None:
            self._stats.add(session.sat.stats)
        if self._fixpoint_solver is not None:
            self._stats.add(self._fixpoint_solver.stats)
            self._fixpoint_solver = None

    # ------------------------------------------------------------------
    def _init_state_expr(self) -> Expr:
        """The initial state as a predicate over the unstamped state variables."""
        flat = flattened_cached(self.system)
        return bool_and(
            *[
                bv_var(name, width).eq(flat.init[name])
                for name, width in flat.state_vars.items()
            ]
        )

    # ------------------------------------------------------------------
    def _check_initial_state(
        self,
        property_name: str,
        budget: Budget,
        session: Optional[_InterpolationSession],
    ) -> Optional[VerificationResult]:
        """Return an UNSAFE/TIMEOUT result if the property already fails at cycle 0."""
        if session is not None:
            encoder = session.encoder
            outcome = session.check_initial()
        else:
            encoder = FrameEncoder(
                self.system,
                representation=self.representation,
                incremental_template=self.incremental_template,
            )
            encoder.solver.set_deadline(budget.deadline)
            encoder.assert_init(0)
            literal = encoder.property_literal(property_name, 0)
            outcome = encoder.solver.check(assumptions=[-literal])
        if outcome == BVResult.SAT:
            cex = encoder.extract_counterexample(property_name, 0)
            return VerificationResult(
                Status.UNSAFE,
                self.name,
                property_name,
                runtime=budget.elapsed(),
                counterexample=cex,
                detail={"depth": 0},
                certificate=witness_from_counterexample(self.system, self.name, cex),
            )
        if outcome == BVResult.UNKNOWN:
            return self._timeout(property_name, budget, 0, 0)
        if session is None:
            self._stats.add(encoder.solver.stats)
        return None

    # ------------------------------------------------------------------
    def _bounded_check(
        self,
        property_name: str,
        frontier: Optional[Expr],
        depth: int,
        budget: Budget,
        session: Optional[_InterpolationSession],
    ) -> Tuple[str, Optional[Expr], Optional[object]]:
        """One interpolation query.

        Returns ``(outcome, interpolant, counterexample)`` where outcome is
        ``"sat"``, ``"unsat"`` or ``"timeout"``.  The interpolant is an
        expression over the *unstamped* state variables.
        """
        if session is not None:
            outcome, node = session.bounded_check(frontier, depth)
            if outcome == BVResult.SAT:
                cex = session.encoder.extract_counterexample(property_name, depth)
                return "sat", None, cex
            if outcome == BVResult.UNKNOWN:
                return "timeout", None, None
            interpolant = self._itp_to_state_expr(node, session.encoder, frame=1)
            return "unsat", simplify(interpolant), None
        return self._bounded_check_fresh(property_name, frontier, depth, budget)

    def _bounded_check_fresh(
        self,
        property_name: str,
        frontier: Optional[Expr],
        depth: int,
        budget: Budget,
    ) -> Tuple[str, Optional[Expr], Optional[object]]:
        """The legacy query: a throwaway proof solver per bounded check."""
        encoder = FrameEncoder(
            self.system,
            proof=True,
            representation=self.representation,
            incremental_template=self.incremental_template,
        )
        solver = encoder.solver
        solver.set_deadline(budget.deadline)
        sat_solver = solver.solver

        # ---- A part: frontier at frame 0 and the first transition
        a_start = sat_solver.num_clauses
        if frontier is None:
            encoder.assert_init(0)
        else:
            solver.assert_expr(encoder.rename_to_frame(frontier, 0))
        encoder.assert_trans(0)
        a_end = sat_solver.num_clauses

        # barrier: B must not share internal Tseitin/gate nodes with A
        solver.blaster.clear_cache()

        # ---- B part: remaining transitions and the negated property
        b_start = sat_solver.num_clauses
        bad_literals = []
        for frame in range(1, depth):
            encoder.assert_trans(frame)
        for frame in range(1, depth + 1):
            bad_literals.append(-encoder.property_literal(property_name, frame))
        sat_solver.add_clause(bad_literals)
        b_end = sat_solver.num_clauses

        outcome = solver.check()
        if outcome == BVResult.SAT:
            cex = encoder.extract_counterexample(property_name, depth)
            self._stats.add(sat_solver.stats)
            return "sat", None, cex
        if outcome == BVResult.UNKNOWN:
            self._stats.add(sat_solver.stats)
            return "timeout", None, None

        interpolator = Interpolator(
            sat_solver, range(a_start, a_end), range(b_start, b_end)
        )
        node = interpolator.compute()
        interpolant = self._itp_to_state_expr(node, encoder, frame=1)
        self._stats.add(sat_solver.stats)
        return "unsat", simplify(interpolant), None

    # ------------------------------------------------------------------
    def _itp_to_state_expr(self, node: ItpNode, encoder: FrameEncoder, frame: int) -> Expr:
        """Convert an interpolant over frame-``frame`` state bits into an expression
        over the unstamped state variables."""
        bit_map = encoder.solver.blaster.bit_map()
        state_widths = encoder.state_vars()
        suffix = f"@{frame}"

        true_var = abs(encoder.solver.blaster.true_lit)

        def convert(n: ItpNode) -> Expr:
            if n.kind == "const":
                return TRUE if n.value else FALSE
            if n.kind == "lit":
                variable = abs(n.lit)
                if variable == true_var:
                    # the shared constant-true variable
                    return TRUE if n.lit > 0 else FALSE
                mapped = bit_map.get(variable)
                if mapped is None:
                    raise RuntimeError(
                        "interpolant mentions an internal solver variable; "
                        "the A/B sharing barrier was violated"
                    )
                name, bit_index = mapped
                if not name.endswith(suffix):
                    raise RuntimeError(
                        f"interpolant variable {name!r} is not a frame-{frame} state bit"
                    )
                base = name[: -len(suffix)]
                if base not in state_widths:
                    raise RuntimeError(
                        f"interpolant variable {name!r} does not map to a state variable"
                    )
                bit = bv_extract(bv_var(base, state_widths[base]), bit_index, bit_index)
                return bit if n.lit > 0 else bool_not(bit)
            children = [convert(child) for child in n.args]
            if n.kind == "and":
                return bool_and(*children)
            return bool_or(*children)

        return convert(node)

    def _implies_reached(
        self, interpolant: Expr, reached: List[Expr], budget: Budget
    ) -> bool:
        """Check whether the new interpolant is already covered (fixpoint test).

        Under persistent sessions the cover checks share one solver: each
        query's constraints are guarded by a throwaway activation literal and
        retired immediately, so the blasted predicates (and anything learned
        about them) are reused across the fixpoint tests of a run.
        """
        flat = flattened_cached(self.system)
        init_expr = bool_and(
            *[
                bv_var(name, width).eq(flat.init[name])
                for name, width in flat.state_vars.items()
            ]
        )
        covered = bool_or(init_expr, *reached)
        if self.persistent_session:
            if self._fixpoint_solver is None:
                self._fixpoint_solver = BVSolver()
            solver = self._fixpoint_solver
            solver.set_deadline(budget.deadline)
            activation = solver.new_activation()
            solver.assert_guarded(interpolant, activation)
            solver.assert_guarded(bool_not(covered), activation)
            outcome = solver.check(assumptions=[activation])
            solver.retire(activation)
            return outcome == BVResult.UNSAT
        solver = BVSolver()
        solver.set_deadline(budget.deadline)
        solver.assert_expr(interpolant)
        solver.assert_expr(bool_not(covered))
        outcome = solver.check()
        self._stats.add(solver.stats)
        return outcome == BVResult.UNSAT

    def _timeout(
        self, property_name: str, budget: Budget, depth: int, iterations: int
    ) -> VerificationResult:
        return VerificationResult(
            Status.TIMEOUT,
            self.name,
            property_name,
            runtime=budget.elapsed(),
            detail={
                "depth": depth,
                "iterations": iterations,
                "solver_stats": self._stats.as_dict(),
            },
        )
