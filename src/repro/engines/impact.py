"""Lazy abstraction with interpolants (IMPACT; McMillan CAV 2006).

IMPARA, compared in Figure 4 of the paper, implements the IMPACT algorithm
for software.  The software-netlist has a single program location (the cycle
loop), so the abstract reachability tree degenerates into a chain of nodes
``v_0 → v_1 → ...`` — one per unrolled cycle — each labelled with a formula
over the registers.  The engine

1. expands the chain one node at a time,
2. when a node's label admits a property violation, checks the corresponding
   concrete path with a bounded query; a feasible path is a counterexample,
3. an infeasible path is used to *refine* the labels along the path with
   sequence interpolants,
4. when a new node's label is implied by the union of the previous labels the
   node is *covered*; the accumulated labels then form a candidate invariant
   which is certified inductive before declaring the design safe.

With ``persistent_session=True`` (the default) the engine no longer allocates
throwaway solvers inside its refinement loop: one predicate solver answers
every label/coverage query under per-query activation literals, one
incremental encoder serves all path-feasibility checks (frames are only ever
extended), and one proof-logging encoder hosts every cut interpolant — the
A/B split at a cut is expressed by *recoloring* the cumulative clause-id sets
per query, so the unrolled frames are stamped exactly once per run no matter
how many cuts are interpolated.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.certs import InductiveCertificate, witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import FrameEncoder, flattened_cached
from repro.engines.result import Budget, Status, VerificationResult
from repro.exprs import Expr, TRUE, bool_and, bool_not, bool_or, bv_var, simplify
from repro.netlist import TransitionSystem
from repro.sat.interpolate import Interpolator
from repro.smt import BVResult, BVSolver


class ImpactEngine(Engine):
    """IMPACT-style lazy interpolation on the software-netlist."""

    name = "impact"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=True, representations=("word",)
    )

    def __init__(
        self,
        system: TransitionSystem,
        max_depth: int = 48,
        representation: str = "word",
        persistent_session: bool = True,
    ) -> None:
        super().__init__(system)
        self.flat = flattened_cached(system)
        self.max_depth = max_depth
        self.representation = representation
        self.persistent_session = persistent_session
        self._reset_sessions()

    # ------------------------------------------------------------------
    def _reset_sessions(self) -> None:
        #: predicate queries (labels, coverage, invariant implications)
        self._query_solver: Optional[BVSolver] = None
        #: Init-rooted unrolling for path feasibility (extended, never rebuilt)
        self._path_encoder: Optional[FrameEncoder] = None
        self._path_frames = 0
        #: one-step encoder for inductiveness checks (T(0) stamped once)
        self._step_encoder: Optional[FrameEncoder] = None
        #: proof-logging session for cut interpolants
        self._itp_encoder: Optional[FrameEncoder] = None
        self._itp_init_ids: List[int] = []
        self._itp_frame_ids: Dict[int, List[int]] = {}
        self._itp_prop_ids: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()
        self._reset_sessions()

        init_label = self._init_expr()
        labels: List[Expr] = [init_label]

        for depth in range(0, self.max_depth + 1):
            if budget.expired():
                return self._timeout(property_name, budget, depth)
            if depth >= len(labels):
                labels.append(TRUE)

            # 1. does the node's label admit a property violation?
            if self._label_admits_violation(labels[depth], property_name, budget):
                # 2. concrete feasibility of the error path of this length
                feasible, cex = self._path_feasible(property_name, depth, budget)
                if feasible is None:
                    return self._timeout(property_name, budget, depth)
                if feasible:
                    return VerificationResult(
                        Status.UNSAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        counterexample=cex,
                        detail={"depth": depth, "solver_stats": self._stats_dict()},
                        certificate=witness_from_counterexample(
                            self.system, self.name, cex
                        ),
                    )
                # 3. refine the labels along the infeasible path
                for cut in range(1, depth + 1):
                    interpolant = self._cut_interpolant(property_name, depth, cut, budget)
                    if interpolant is None:
                        return self._timeout(property_name, budget, depth)
                    labels[cut] = simplify(bool_and(labels[cut], interpolant))

            # 4. covering check followed by certification of the candidate invariant
            if depth > 0 and self._covered(labels, depth, budget):
                candidate = bool_or(*labels[: depth + 1])
                if self._certify_invariant(candidate, property_name, budget):
                    return VerificationResult(
                        Status.SAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        detail={
                            "depth": depth,
                            "nodes": depth + 1,
                            "solver_stats": self._stats_dict(),
                        },
                        reason="covered ART with certified invariant",
                        certificate=InductiveCertificate(
                            property_name, self.name, simplify(candidate)
                        ),
                    )

        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            detail={"max_depth": self.max_depth, "solver_stats": self._stats_dict()},
            reason="unwinding limit reached without covering",
        )

    # ------------------------------------------------------------------
    def _stats_dict(self) -> Dict[str, int]:
        from repro.sat.solver import SolverStats

        total = SolverStats()
        for holder in (self._query_solver,):
            if holder is not None:
                total.add(holder.stats)
        for encoder in (self._path_encoder, self._step_encoder, self._itp_encoder):
            if encoder is not None:
                total.add(encoder.solver.stats)
        return total.as_dict()

    # ------------------------------------------------------------------
    def _init_expr(self) -> Expr:
        return bool_and(
            *[
                bv_var(name, width).eq(self.flat.init[name])
                for name, width in self.flat.state_vars.items()
            ]
        )

    def _predicate_query(self, exprs: List[Expr], budget: Budget) -> str:
        """SAT-check a conjunction of state predicates.

        Session mode routes every call through one reused solver (guarded by
        a throwaway activation literal, retired right after); legacy mode
        builds a fresh solver per call.
        """
        if self.persistent_session:
            if self._query_solver is None:
                self._query_solver = BVSolver()
            solver = self._query_solver
            solver.set_deadline(budget.deadline)
            activation = solver.new_activation()
            for expr in exprs:
                solver.assert_guarded(expr, activation)
            outcome = solver.check(assumptions=[activation])
            solver.retire(activation)
            return outcome
        solver = BVSolver()
        solver.set_deadline(budget.deadline)
        for expr in exprs:
            solver.assert_expr(expr)
        return solver.check()

    def _label_admits_violation(self, label: Expr, property_name: str, budget: Budget) -> bool:
        prop = self.flat.property_by_name(property_name)
        return (
            self._predicate_query([label, bool_not(prop.expr)], budget)
            != BVResult.UNSAT
        )

    def _path_feasible(
        self, property_name: str, depth: int, budget: Budget
    ) -> Tuple[Optional[bool], Optional[object]]:
        if self.persistent_session:
            if self._path_encoder is None:
                self._path_encoder = FrameEncoder(
                    self.system, representation=self.representation
                )
                self._path_encoder.assert_init(0)
                self._path_frames = 0
            encoder = self._path_encoder
            encoder.solver.set_deadline(budget.deadline)
            while self._path_frames < depth:
                encoder.assert_trans(self._path_frames)
                self._path_frames += 1
        else:
            encoder = FrameEncoder(self.system, representation=self.representation)
            encoder.solver.set_deadline(budget.deadline)
            encoder.assert_init(0)
            for frame in range(depth):
                encoder.assert_trans(frame)
        literal = encoder.property_literal(property_name, depth)
        outcome = encoder.solver.check(assumptions=[-literal])
        if outcome == BVResult.SAT:
            return True, encoder.extract_counterexample(property_name, depth)
        if outcome == BVResult.UNKNOWN:
            return None, None
        return False, None

    # ------------------------------------------------------------------
    # cut interpolants over one persistent proof session
    # ------------------------------------------------------------------
    def _itp_session(self) -> FrameEncoder:
        if self._itp_encoder is None:
            encoder = FrameEncoder(
                self.system, proof=True, representation=self.representation,
            )
            sat = encoder.solver.solver
            start = sat.num_clauses
            encoder.assert_init(0)
            self._itp_init_ids = list(range(start, sat.num_clauses))
            self._itp_encoder = encoder
        return self._itp_encoder

    def _itp_ensure_depth(self, depth: int) -> None:
        """Stamp transition frames / property cones the query needs (once ever)."""
        encoder = self._itp_encoder
        sat = encoder.solver.solver
        for frame in range(depth):
            if frame not in self._itp_frame_ids:
                start = sat.num_clauses
                encoder.assert_trans(frame)
                self._itp_frame_ids[frame] = list(range(start, sat.num_clauses))

    def _itp_property(self, property_name: str, frame: int) -> int:
        encoder = self._itp_encoder
        sat = encoder.solver.solver
        start = sat.num_clauses
        literal = encoder.property_literal(property_name, frame)
        if sat.num_clauses > start:
            self._itp_prop_ids[frame] = list(range(start, sat.num_clauses))
        return literal

    def _cut_interpolant(
        self, property_name: str, depth: int, cut: int, budget: Budget
    ) -> Optional[Expr]:
        """Interpolant at position ``cut`` of the infeasible error path of length ``depth``.

        Session mode: the A/B partition is *recolored* per query over the
        cumulative clause database — ``Init`` and frames ``< cut`` (and any
        property cone stamped at a frame ``< cut``) are A, everything else is
        B, and the negated property at ``depth`` enters as a B-side
        assumption literal.  Since frames only share the state bits at their
        boundary, the shared variables of the partition are exactly the
        frame-``cut`` state bits.
        """
        if not self.persistent_session:
            return self._cut_interpolant_fresh(property_name, depth, cut, budget)
        encoder = self._itp_session()
        solver = encoder.solver
        solver.set_deadline(budget.deadline)
        sat = solver.solver
        self._itp_ensure_depth(depth)
        literal = self._itp_property(property_name, depth)

        outcome = solver.check(assumptions=[-literal])
        if outcome != BVResult.UNSAT:
            return None
        a_ids: List[int] = list(self._itp_init_ids)
        b_ids: List[int] = []
        for frame, ids in self._itp_frame_ids.items():
            (a_ids if frame < cut else b_ids).extend(ids)
        for frame, ids in self._itp_prop_ids.items():
            (a_ids if frame < cut else b_ids).extend(ids)
        interpolator = Interpolator(
            sat, a_ids, b_ids, assumptions=[(-literal, "B")]
        )
        node = interpolator.compute()
        return simplify(self._itp_to_state_expr(node, encoder, cut))

    def _cut_interpolant_fresh(
        self, property_name: str, depth: int, cut: int, budget: Budget
    ) -> Optional[Expr]:
        """The legacy query: one throwaway proof solver per cut."""
        encoder = FrameEncoder(self.system, proof=True, representation=self.representation)
        solver = encoder.solver
        solver.set_deadline(budget.deadline)
        sat_solver = solver.solver

        a_start = sat_solver.num_clauses
        encoder.assert_init(0)
        for frame in range(cut):
            encoder.assert_trans(frame)
        a_end = sat_solver.num_clauses

        solver.blaster.clear_cache()

        b_start = sat_solver.num_clauses
        for frame in range(cut, depth):
            encoder.assert_trans(frame)
        literal = encoder.property_literal(property_name, depth)
        sat_solver.add_clause([-literal])
        b_end = sat_solver.num_clauses

        outcome = solver.check()
        if outcome != BVResult.UNSAT:
            return None
        interpolator = Interpolator(sat_solver, range(a_start, a_end), range(b_start, b_end))
        node = interpolator.compute()
        return simplify(self._itp_to_state_expr(node, encoder, cut))

    def _itp_to_state_expr(self, node, encoder: FrameEncoder, frame: int) -> Expr:
        from repro.engines.interpolation import InterpolationEngine

        helper = InterpolationEngine(self.system, representation=self.representation)
        return helper._itp_to_state_expr(node, encoder, frame=frame)

    # ------------------------------------------------------------------
    def _covered(self, labels: List[Expr], depth: int, budget: Budget) -> bool:
        """Is the newest label implied by the union of the earlier ones?"""
        return (
            self._predicate_query(
                [labels[depth], bool_not(bool_or(*labels[:depth]))], budget
            )
            == BVResult.UNSAT
        )

    def _certify_invariant(self, candidate: Expr, property_name: str, budget: Budget) -> bool:
        """Check Init => R, R ∧ T => R', and R => P for the candidate invariant."""
        prop = self.flat.property_by_name(property_name)
        # R => P
        if self._predicate_query([candidate, bool_not(prop.expr)], budget) != BVResult.UNSAT:
            return False
        # Init => R  (Init is the first disjunct, so this holds by construction,
        # but check anyway for robustness)
        if self._predicate_query([self._init_expr(), bool_not(candidate)], budget) != BVResult.UNSAT:
            return False
        # R ∧ T => R'
        if self.persistent_session:
            if self._step_encoder is None:
                self._step_encoder = FrameEncoder(
                    self.system, representation=self.representation
                )
                self._step_encoder.assert_trans(0)
            encoder = self._step_encoder
            encoder.solver.set_deadline(budget.deadline)
            activation = encoder.new_activation()
            encoder.solver.assert_guarded(
                encoder.rename_to_frame(candidate, 0), activation
            )
            encoder.solver.assert_guarded(
                encoder.rename_to_frame(bool_not(candidate), 1), activation
            )
            outcome = encoder.solver.check(assumptions=[activation])
            encoder.retire(activation)
            return outcome == BVResult.UNSAT
        encoder = FrameEncoder(self.system, representation=self.representation)
        encoder.solver.set_deadline(budget.deadline)
        encoder.solver.assert_expr(encoder.rename_to_frame(candidate, 0))
        encoder.assert_trans(0)
        encoder.solver.assert_expr(encoder.rename_to_frame(bool_not(candidate), 1))
        return encoder.solver.check() == BVResult.UNSAT

    def _timeout(self, property_name: str, budget: Budget, depth: int) -> VerificationResult:
        return VerificationResult(
            Status.TIMEOUT,
            self.name,
            property_name,
            runtime=budget.elapsed(),
            detail={"depth": depth, "solver_stats": self._stats_dict()},
        )
