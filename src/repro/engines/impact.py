"""Lazy abstraction with interpolants (IMPACT; McMillan CAV 2006).

IMPARA, compared in Figure 4 of the paper, implements the IMPACT algorithm
for software.  The software-netlist has a single program location (the cycle
loop), so the abstract reachability tree degenerates into a chain of nodes
``v_0 → v_1 → ...`` — one per unrolled cycle — each labelled with a formula
over the registers.  The engine

1. expands the chain one node at a time,
2. when a node's label admits a property violation, checks the corresponding
   concrete path with a bounded query; a feasible path is a counterexample,
3. an infeasible path is used to *refine* the labels along the path with
   sequence interpolants,
4. when a new node's label is implied by the union of the previous labels the
   node is *covered*; the accumulated labels then form a candidate invariant
   which is certified inductive before declaring the design safe.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.certs import InductiveCertificate, witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import FrameEncoder
from repro.engines.result import Budget, Status, VerificationResult
from repro.exprs import Expr, TRUE, bool_and, bool_not, bool_or, bv_var, simplify
from repro.netlist import TransitionSystem
from repro.sat.interpolate import Interpolator
from repro.smt import BVResult, BVSolver


class ImpactEngine(Engine):
    """IMPACT-style lazy interpolation on the software-netlist."""

    name = "impact"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=True, representations=("word",)
    )

    def __init__(
        self,
        system: TransitionSystem,
        max_depth: int = 48,
        representation: str = "word",
    ) -> None:
        super().__init__(system)
        self.flat = system.flattened()
        self.max_depth = max_depth
        self.representation = representation

    # ------------------------------------------------------------------
    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()

        init_label = self._init_expr()
        labels: List[Expr] = [init_label]

        for depth in range(0, self.max_depth + 1):
            if budget.expired():
                return self._timeout(property_name, budget, depth)
            if depth >= len(labels):
                labels.append(TRUE)

            # 1. does the node's label admit a property violation?
            if self._label_admits_violation(labels[depth], property_name, budget):
                # 2. concrete feasibility of the error path of this length
                feasible, cex = self._path_feasible(property_name, depth, budget)
                if feasible is None:
                    return self._timeout(property_name, budget, depth)
                if feasible:
                    return VerificationResult(
                        Status.UNSAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        counterexample=cex,
                        detail={"depth": depth},
                        certificate=witness_from_counterexample(
                            self.system, self.name, cex
                        ),
                    )
                # 3. refine the labels along the infeasible path
                for cut in range(1, depth + 1):
                    interpolant = self._cut_interpolant(property_name, depth, cut, budget)
                    if interpolant is None:
                        return self._timeout(property_name, budget, depth)
                    labels[cut] = simplify(bool_and(labels[cut], interpolant))

            # 4. covering check followed by certification of the candidate invariant
            if depth > 0 and self._covered(labels, depth, budget):
                candidate = bool_or(*labels[: depth + 1])
                if self._certify_invariant(candidate, property_name, budget):
                    return VerificationResult(
                        Status.SAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        detail={"depth": depth, "nodes": depth + 1},
                        reason="covered ART with certified invariant",
                        certificate=InductiveCertificate(
                            property_name, self.name, simplify(candidate)
                        ),
                    )

        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            detail={"max_depth": self.max_depth},
            reason="unwinding limit reached without covering",
        )

    # ------------------------------------------------------------------
    def _init_expr(self) -> Expr:
        return bool_and(
            *[
                bv_var(name, width).eq(self.flat.init[name])
                for name, width in self.flat.state_vars.items()
            ]
        )

    def _label_admits_violation(self, label: Expr, property_name: str, budget: Budget) -> bool:
        solver = BVSolver()
        solver.set_deadline(budget.deadline)
        solver.assert_expr(label)
        prop = self.flat.property_by_name(property_name)
        solver.assert_expr(bool_not(prop.expr))
        return solver.check() != BVResult.UNSAT

    def _path_feasible(
        self, property_name: str, depth: int, budget: Budget
    ) -> Tuple[Optional[bool], Optional[object]]:
        encoder = FrameEncoder(self.system, representation=self.representation)
        encoder.solver.set_deadline(budget.deadline)
        encoder.assert_init(0)
        for frame in range(depth):
            encoder.assert_trans(frame)
        literal = encoder.property_literal(property_name, depth)
        outcome = encoder.solver.check(assumptions=[-literal])
        if outcome == BVResult.SAT:
            return True, encoder.extract_counterexample(property_name, depth)
        if outcome == BVResult.UNKNOWN:
            return None, None
        return False, None

    def _cut_interpolant(
        self, property_name: str, depth: int, cut: int, budget: Budget
    ) -> Optional[Expr]:
        """Interpolant at position ``cut`` of the infeasible error path of length ``depth``."""
        from repro.engines.interpolation import InterpolationEngine

        encoder = FrameEncoder(self.system, proof=True, representation=self.representation)
        solver = encoder.solver
        solver.set_deadline(budget.deadline)
        sat_solver = solver.solver

        a_start = sat_solver.num_clauses
        encoder.assert_init(0)
        for frame in range(cut):
            encoder.assert_trans(frame)
        a_end = sat_solver.num_clauses

        solver.blaster.clear_cache()

        b_start = sat_solver.num_clauses
        for frame in range(cut, depth):
            encoder.assert_trans(frame)
        literal = encoder.property_literal(property_name, depth)
        sat_solver.add_clause([-literal])
        b_end = sat_solver.num_clauses

        outcome = solver.check()
        if outcome != BVResult.UNSAT:
            return None
        interpolator = Interpolator(sat_solver, range(a_start, a_end), range(b_start, b_end))
        node = interpolator.compute()
        helper = InterpolationEngine(self.system, representation=self.representation)
        return simplify(helper._itp_to_state_expr(node, encoder, frame=cut))

    def _covered(self, labels: List[Expr], depth: int, budget: Budget) -> bool:
        """Is the newest label implied by the union of the earlier ones?"""
        solver = BVSolver()
        solver.set_deadline(budget.deadline)
        solver.assert_expr(labels[depth])
        solver.assert_expr(bool_not(bool_or(*labels[:depth])))
        return solver.check() == BVResult.UNSAT

    def _certify_invariant(self, candidate: Expr, property_name: str, budget: Budget) -> bool:
        """Check Init => R, R ∧ T => R', and R => P for the candidate invariant."""
        prop = self.flat.property_by_name(property_name)
        # R => P
        solver = BVSolver()
        solver.set_deadline(budget.deadline)
        solver.assert_expr(candidate)
        solver.assert_expr(bool_not(prop.expr))
        if solver.check() != BVResult.UNSAT:
            return False
        # Init => R  (Init is the first disjunct, so this holds by construction,
        # but check anyway for robustness)
        solver = BVSolver()
        solver.set_deadline(budget.deadline)
        solver.assert_expr(self._init_expr())
        solver.assert_expr(bool_not(candidate))
        if solver.check() != BVResult.UNSAT:
            return False
        # R ∧ T => R'
        encoder = FrameEncoder(self.system, representation=self.representation)
        encoder.solver.set_deadline(budget.deadline)
        encoder.solver.assert_expr(encoder.rename_to_frame(candidate, 0))
        encoder.assert_trans(0)
        encoder.solver.assert_expr(
            encoder.rename_to_frame(bool_not(candidate), 1)
        )
        return encoder.solver.check() == BVResult.UNSAT

    def _timeout(self, property_name: str, budget: Budget, depth: int) -> VerificationResult:
        return VerificationResult(
            Status.TIMEOUT,
            self.name,
            property_name,
            runtime=budget.elapsed(),
            detail={"depth": depth},
        )
