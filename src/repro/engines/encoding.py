"""Time-frame encoding of a transition system into the bit-vector solver.

The :class:`FrameEncoder` gives every engine a uniform way to talk about the
design across clock cycles: signal ``x`` at cycle ``k`` becomes the solver
variable ``x@k``.  The encoder offers the usual building blocks — initial
state, transition relation between consecutive frames, property at a frame —
and reads back counterexample traces from satisfying assignments.

Two representations are supported, mirroring the paper's comparison axes:

* ``representation="word"`` (default): the word-level next-state expressions
  are bit-blasted directly (the EBMC/CBMC-style flow),
* ``representation="bit"``: the system is first lowered to the and-inverter
  graph of :mod:`repro.aig` and the AIG gates are encoded clause-by-clause
  (the Yosys/ABC-style bit-level flow).

Template-based incremental unrolling
------------------------------------

Unrolling dominates the run time of every engine in the paper's comparison:
BMC, k-induction, interpolation, kIkI and PDR all instantiate the transition
relation once per time frame.  The historical ("legacy") path rebuilt the
frame-stamped expression tree with :func:`repro.exprs.substitute.rename` and
re-ran the whole Tseitin bit-blast for every frame.

The default path instead bit-blasts the flattened transition relation (and
each property) exactly *once* into a :class:`FrameTemplate` — a normalized CNF
fragment plus a symbol table classifying every template variable as a
current-state bit, next-state bit, input bit or internal gate output.  Frame
``k`` is then instantiated by remapping template literals through a per-frame
offset table (pure integer arithmetic, no expression traversal, no dict-keyed
expression-cache lookups) and bulk-loading the remapped clauses with
:meth:`repro.sat.solver.Solver.add_clauses_mapped`.  Templates are cached per
``(system, representation)`` so repeated encoder constructions (for example
the per-iteration encoders of the interpolation engine) reuse both the
flattened system and the blasted CNF.

The legacy path remains available behind ``incremental_template=False`` for
cross-checking; the two paths are equisatisfiable frame by frame and produce
identical verdicts (asserted by ``tests/test_template_equisat.py`` and by
``python -m repro.tools.bench``).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.aig import AIG, aig_from_transition_system
from repro.aig.graph import aig_is_negated
from repro.exprs import Expr, bv_eq, bv_var, evaluate
from repro.exprs.substitute import rename
from repro.netlist import TransitionSystem
from repro.engines.result import Counterexample
from repro.obs import telemetry as _telemetry
from repro.sat.cnf import CNF
from repro.sat.tseitin import TseitinEncoder
from repro.smt import BitBlaster, BVSolver


def frame_name(name: str, frame: int) -> str:
    """Return the solver variable name of signal ``name`` at time frame ``frame``."""
    return f"{name}@{frame}"


# ---------------------------------------------------------------------------
# frame templates
# ---------------------------------------------------------------------------

#: one named signal of a template: (base name, width, template bit vars LSB-first)
RoleEntry = Tuple[str, int, Tuple[int, ...]]


@dataclass(frozen=True)
class FrameTemplate:
    """A bit-blasted, frame-independent CNF fragment.

    A template is produced once per transition system (per representation) and
    instantiated at any time frame by pure literal remapping.  Template
    variables are classified into four roles:

    * ``cur`` — bits of state variables at the *current* frame ``k``,
    * ``nxt`` — bits of state variables at the *next* frame ``k + 1``,
    * ``inp`` — bits of primary inputs at frame ``k``,
    * ``internal`` — Tseitin/AIG gate outputs, freshly allocated per frame.

    Template variables are canonically renumbered at capture time: the named
    (role) variables and the constant occupy ``1 .. named_count`` and the
    internal gate variables form the contiguous block
    ``named_count + 1 .. num_vars``.  Because the solver allocates each
    frame's internal block contiguously too, internal literals remap by a
    constant offset.  ``clauses`` are normalized (non-empty, duplicate-free,
    tautology-free) and pre-split into ``gate_clauses`` (length >= 2, only
    internal variables — instantiated through the check-free
    :meth:`repro.sat.solver.Solver.add_fresh_clauses` path) and
    ``boundary_clauses`` (everything touching a named bit or the constant —
    instantiated through :meth:`repro.sat.solver.Solver.add_clauses_mapped`).

    ``true_var`` is the template's constant-true variable (if any); it maps to
    the solver's shared constant instead of a fresh variable.  ``output`` is
    an optional distinguished template literal (the truth literal of a
    property template).
    """

    num_vars: int
    named_count: int
    cur: Tuple[RoleEntry, ...]
    nxt: Tuple[RoleEntry, ...]
    inp: Tuple[RoleEntry, ...]
    internal: Tuple[int, ...]
    gate_clauses: Tuple[Tuple[int, ...], ...]
    #: two-literal gate clauses, pre-split so stamping can bulk-register them
    #: in the solver's binary watch lists without per-clause length dispatch
    gate_binary: Tuple[Tuple[int, int], ...]
    boundary_clauses: Tuple[Tuple[int, ...], ...]
    true_var: Optional[int] = None
    #: distinguished output literal (property templates)
    output: Optional[int] = None

    @property
    def num_clauses(self) -> int:
        return (
            len(self.gate_clauses)
            + len(self.gate_binary)
            + len(self.boundary_clauses)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrameTemplate(vars={self.num_vars}, clauses={self.num_clauses}, "
            f"internal={len(self.internal)})"
        )


def _finalize_template(
    clauses: Iterable[Sequence[int]],
    num_vars: int,
    cur: Sequence[RoleEntry],
    nxt: Sequence[RoleEntry],
    inp: Sequence[RoleEntry],
    true_var: Optional[int],
    output: Optional[int],
) -> FrameTemplate:
    """Normalize, canonically renumber and split a captured blast.

    Named variables (and the constant) are packed into ``1 .. named_count``,
    internal gate variables into the trailing contiguous block, and the
    clauses are split into the gate/boundary groups described on
    :class:`FrameTemplate`.
    """
    if true_var is not None:
        # the constant is true in every instantiation: drop satisfied clauses,
        # strip falsified literals (turns many boundary clauses into pure gate
        # clauses and shrinks the template once instead of per frame)
        simplified: List[Sequence[int]] = []
        for clause in clauses:
            if true_var in clause:
                continue
            stripped = [l for l in clause if l != -true_var]
            if not stripped:
                # clause asserted the constant false: template is contradictory
                stripped = [-true_var]
            simplified.append(stripped)
        clauses = simplified

    remap = [0] * (num_vars + 1)
    next_id = 0

    def assign(var: int) -> int:
        nonlocal next_id
        if remap[var] == 0:
            next_id += 1
            remap[var] = next_id
        return remap[var]

    if true_var is not None:
        true_var = assign(true_var)
    for entries in (cur, nxt, inp):
        for _, _, bits in entries:
            for var in bits:
                assign(var)
    named_count = next_id
    for var in range(1, num_vars + 1):
        if remap[var] == 0:
            next_id += 1
            remap[var] = next_id

    def map_roles(entries: Sequence[RoleEntry]) -> Tuple[RoleEntry, ...]:
        return tuple(
            (name, width, tuple(remap[var] for var in bits))
            for name, width, bits in entries
        )

    normalized = _normalize_clauses(clauses)
    mapped_clauses = tuple(
        tuple(remap[l] if l > 0 else -remap[-l] for l in clause)
        for clause in normalized
    )
    gate_clauses = []
    gate_binary = []
    boundary_clauses = []
    for clause in mapped_clauses:
        if len(clause) >= 2 and all(abs(l) > named_count for l in clause):
            if len(clause) == 2:
                gate_binary.append(clause)
            else:
                gate_clauses.append(clause)
        else:
            boundary_clauses.append(clause)
    if output is not None:
        output = remap[output] if output > 0 else -remap[-output]
    return FrameTemplate(
        num_vars=num_vars,
        named_count=named_count,
        cur=map_roles(cur),
        nxt=map_roles(nxt),
        inp=map_roles(inp),
        internal=tuple(range(named_count + 1, num_vars + 1)),
        gate_clauses=tuple(gate_clauses),
        gate_binary=tuple(gate_binary),
        boundary_clauses=tuple(boundary_clauses),
        true_var=true_var,
        output=output,
    )


def _normalize_clauses(
    clauses: Iterable[Sequence[int]],
) -> Tuple[Tuple[int, ...], ...]:
    """Dedupe literals (keeping order) and drop tautological clauses."""
    normalized: List[Tuple[int, ...]] = []
    for clause in clauses:
        if len(clause) > 1:
            clause = tuple(dict.fromkeys(clause))
            literal_set = set(clause)
            if any(-lit in literal_set for lit in literal_set):
                continue
        else:
            clause = tuple(clause)
        if clause:
            normalized.append(clause)
    return tuple(normalized)


def _capture_word_blast(
    flat: TransitionSystem,
    cnf: CNF,
    blaster: BitBlaster,
    output: Optional[int] = None,
) -> FrameTemplate:
    """Classify the variables of a finished scratch blast into a template.

    The blast must have stamped every signal with ``@0`` (current frame) or
    ``@1`` (next frame); anything the blaster did not allocate as a named bit
    is an internal gate output.
    """
    cur: List[RoleEntry] = []
    nxt: List[RoleEntry] = []
    inp: List[RoleEntry] = []
    for full_name, bits in blaster.var_bit_table().items():
        base, _, tag = full_name.rpartition("@")
        frame = int(tag)
        entry = (base, len(bits), bits)
        if base in flat.state_vars:
            if frame == 0:
                cur.append(entry)
            else:
                nxt.append(entry)
        elif base in flat.inputs:
            if frame != 0:
                raise AssertionError(
                    f"input {base!r} blasted at frame {frame} during template capture"
                )
            inp.append(entry)
        else:
            raise AssertionError(
                f"unknown signal {base!r} during template capture"
            )
    return _finalize_template(
        cnf.clauses, cnf.num_vars, cur, nxt, inp, blaster.true_var, output
    )


def _build_word_trans_template(flat: TransitionSystem) -> FrameTemplate:
    """Blast the word-level transition relation (frame 0 -> 1) once."""
    cnf = CNF()
    blaster = BitBlaster(cnf)
    for name, next_expr in flat.next.items():
        stamped = rename(next_expr, lambda n: frame_name(n, 0))
        target = bv_var(frame_name(name, 1), flat.state_vars[name])
        blaster.assert_true(bv_eq(target, stamped))
    for constraint in flat.constraints:
        blaster.assert_true(rename(constraint, lambda n: frame_name(n, 0)))
    return _capture_word_blast(flat, cnf, blaster)


def _build_word_property_template(flat: TransitionSystem, property_name: str) -> FrameTemplate:
    """Blast one property once; ``output`` is its truth literal."""
    prop = flat.property_by_name(property_name)
    cnf = CNF()
    blaster = BitBlaster(cnf)
    literal = blaster.blast_bool(rename(prop.expr, lambda n: frame_name(n, 0)))
    return _capture_word_blast(flat, cnf, blaster, output=literal)


def _aig_cone(aig: AIG, roots: Iterable[int]) -> List[int]:
    """Return the AND nodes feeding ``roots``, in topological (index) order."""
    needed: set = set()
    stack = [root & ~1 for root in roots]
    while stack:
        node = stack.pop()
        if node in needed or node not in aig.ands:
            continue
        needed.add(node)
        left, right = aig.ands[node]
        stack.append(left & ~1)
        stack.append(right & ~1)
    return sorted(needed)


class _AigTemplateBuilder:
    """Shared scaffolding for capturing AIG cones as frame templates."""

    def __init__(self, flat: TransitionSystem, aig: AIG) -> None:
        self.flat = flat
        self.aig = aig

    def _fresh(self) -> Tuple[CNF, TseitinEncoder, Dict[int, int], List[RoleEntry], List[RoleEntry]]:
        """Allocate a scratch CNF with input/latch leaves mapped to fresh vars."""
        cnf = CNF()
        encoder = TseitinEncoder(cnf)
        mapping: Dict[int, int] = {0: encoder.false_lit}
        aig = self.aig
        input_bits: Dict[str, List[int]] = {name: [0] * width for name, width in self.flat.inputs.items()}
        for literal in aig.inputs:
            base, index = aig.input_names[literal].rsplit("[", 1)
            bit_index = int(index[:-1])
            var = encoder.new_var()
            mapping[literal] = var
            input_bits[base][bit_index] = var
        latch_bits: Dict[str, List[int]] = {name: [0] * width for name, width in self.flat.state_vars.items()}
        for latch in aig.latches:
            base, index = latch.name.rsplit("[", 1)
            bit_index = int(index[:-1])
            var = encoder.new_var()
            mapping[latch.literal] = var
            latch_bits[base][bit_index] = var
        cur = [(name, len(bits), tuple(bits)) for name, bits in latch_bits.items()]
        inp = [(name, len(bits), tuple(bits)) for name, bits in input_bits.items()]
        return cnf, encoder, mapping, cur, inp

    def _encode_cone(
        self, encoder: TseitinEncoder, mapping: Dict[int, int], roots: Iterable[int]
    ):
        """Encode the AND cones of ``roots``; returns the literal resolver."""
        aig = self.aig

        def resolved(literal: int) -> int:
            sat = mapping[literal & ~1]
            return -sat if aig_is_negated(literal) else sat

        for node in _aig_cone(aig, roots):
            left, right = aig.ands[node]
            mapping[node] = encoder.and_gate([resolved(left), resolved(right)])
        return resolved

    def trans_template(self) -> FrameTemplate:
        """Capture the latch-update cones plus next-state equalities."""
        cnf, encoder, mapping, cur, inp = self._fresh()
        aig = self.aig
        resolved = self._encode_cone(
            encoder, mapping, [latch.next_literal for latch in aig.latches]
        )
        next_bits: Dict[str, List[int]] = {
            name: [0] * width for name, width in self.flat.state_vars.items()
        }
        for latch in aig.latches:
            base, index = latch.name.rsplit("[", 1)
            bit_index = int(index[:-1])
            next_var = encoder.new_var()
            next_bits[base][bit_index] = next_var
            encoder.assert_equal(next_var, resolved(latch.next_literal))
        nxt = [(name, len(bits), tuple(bits)) for name, bits in next_bits.items()]
        return self._capture(cnf, encoder, cur, nxt, inp, output=None)

    def property_template(self, property_name: str) -> FrameTemplate:
        """Capture the bad-state cone of one property; ``output`` is P itself."""
        cnf, encoder, mapping, cur, inp = self._fresh()
        bad_literal = None
        for name, bad in self.aig.bad:
            if name == property_name:
                bad_literal = bad
                break
        if bad_literal is None:
            raise KeyError(f"property {property_name!r} not found in the AIG")
        resolved = self._encode_cone(encoder, mapping, [bad_literal])
        return self._capture(
            cnf, encoder, cur, [], inp, output=-resolved(bad_literal)
        )

    def _capture(self, cnf, encoder, cur, nxt, inp, output) -> FrameTemplate:
        return _finalize_template(
            cnf.clauses, cnf.num_vars, cur, nxt, inp, encoder.true_var, output
        )


def _system_fingerprint(system: TransitionSystem) -> int:
    """A cheap content hash of a design, used to invalidate cached templates.

    Expression nodes cache their hashes, so this is O(number of declared
    signals), not O(expression size).
    """
    return hash(
        (
            tuple(system.inputs.items()),
            tuple(system.state_vars.items()),
            tuple(sorted((name, system.init[name]) for name in system.init)),
            tuple(sorted((name, system.next[name]) for name in system.next)),
            tuple(system.constraints),
            tuple((prop.name, prop.expr) for prop in system.properties),
            tuple(system.wires.items()),
        )
    )


#: system -> (fingerprint, flattened system); shared by the template library
#: and by the expression-level engines (abstract interpretation, IMPACT,
#: predicate abstraction, kIkI's invariant pruning), so a design is flattened
#: once per process instead of once per engine construction — in a portfolio
#: worker forked after the parent pre-warm, the flatten arrives via
#: copy-on-write exactly like the blasted templates do
_FLAT_SYSTEMS: "weakref.WeakKeyDictionary[TransitionSystem, Tuple[int, TransitionSystem]]" = (
    weakref.WeakKeyDictionary()
)


def flattened_cached(system: TransitionSystem) -> TransitionSystem:
    """Return the (memoized, validated) wire-free flattening of a design.

    The result is shared: callers must treat it as read-only.  A content
    fingerprint invalidates the entry if the design object is mutated
    between calls.
    """
    fingerprint = _system_fingerprint(system)
    entry = _FLAT_SYSTEMS.get(system)
    if entry is not None and entry[0] == fingerprint:
        return entry[1]
    flat = system.flattened()
    flat.validate()
    try:
        _FLAT_SYSTEMS[system] = (fingerprint, flat)
    except TypeError:  # pragma: no cover - non-weakrefable subclass
        pass
    return flat


class TemplateLibrary:
    """The one-time blasting artifacts of a ``(system, representation)`` pair.

    Holds the flattened system, the transition-relation template and lazily
    built per-property templates (plus the AIG for the bit-level flow).
    Obtained through :func:`template_library`, which memoizes per system so
    that every engine and every encoder instance built on the same design
    shares the same blast; a content fingerprint invalidates the cache if
    the design object is mutated between runs.
    """

    def __init__(self, system: TransitionSystem, representation: str) -> None:
        self.representation = representation
        self.fingerprint = _system_fingerprint(system)
        with _telemetry.span(
            "encoding.blast",
            design=getattr(system, "name", "?"),
            representation=representation,
        ):
            self.flat = flattened_cached(system)
            self.aig: Optional[AIG] = None
            self._property_templates: Dict[str, FrameTemplate] = {}
            if representation == "bit":
                self.aig = aig_from_transition_system(system)
                self._builder = _AigTemplateBuilder(self.flat, self.aig)
                self.trans_template = self._builder.trans_template()
            else:
                self._builder = None
                self.trans_template = _build_word_trans_template(self.flat)

    def property_template(self, property_name: str) -> FrameTemplate:
        template = self._property_templates.get(property_name)
        if template is None:
            if self._builder is not None:
                template = self._builder.property_template(property_name)
            else:
                template = _build_word_property_template(self.flat, property_name)
            self._property_templates[property_name] = template
        return template


#: system -> {representation -> TemplateLibrary}; weak keys so that designs
#: built on the fly (tests, benchmarks harness) do not accumulate forever
_TEMPLATE_LIBRARIES: "weakref.WeakKeyDictionary[TransitionSystem, Dict[str, TemplateLibrary]]" = (
    weakref.WeakKeyDictionary()
)


def template_library(system: TransitionSystem, representation: str) -> TemplateLibrary:
    """Return (building and caching if needed) the template library of a design."""
    per_system = _TEMPLATE_LIBRARIES.get(system)
    if per_system is None:
        per_system = {}
        _TEMPLATE_LIBRARIES[system] = per_system
    library = per_system.get(representation)
    if library is None or library.fingerprint != _system_fingerprint(system):
        _telemetry.counter("encoding.template_library.miss")
        library = TemplateLibrary(system, representation)
        per_system[representation] = library
    else:
        _telemetry.counter("encoding.template_library.hit")
    return library


class FrameEncoder:
    """Unrolls a transition system into a :class:`repro.smt.BVSolver`.

    With ``incremental_template=True`` (the default) frames are instantiated
    from cached :class:`FrameTemplate` objects by literal remapping; with
    ``False`` the legacy per-frame expression re-blast is used.  The two paths
    are frame-by-frame equisatisfiable.
    """

    def __init__(
        self,
        system: TransitionSystem,
        solver: Optional[BVSolver] = None,
        proof: bool = False,
        representation: str = "word",
        incremental_template: bool = True,
    ) -> None:
        if representation not in ("word", "bit"):
            raise ValueError("representation must be 'word' or 'bit'")
        self.system = system
        self.representation = representation
        self.incremental_template = bool(incremental_template)
        self.solver = solver if solver is not None else BVSolver(proof=proof)
        self._aig: Optional[AIG] = None
        self._aig_frame_literals: Dict[int, Dict[int, int]] = {}
        self._library: Optional[TemplateLibrary] = None
        self._property_literal_cache: Dict[Tuple[str, int], int] = {}
        if self.incremental_template:
            self._library = template_library(system, representation)
            self.flat = self._library.flat
            self._aig = self._library.aig
        else:
            self.flat = system.flattened()
            self.flat.validate()
            if representation == "bit":
                self._aig = aig_from_transition_system(system)

    # ------------------------------------------------------------------
    # naming helpers
    # ------------------------------------------------------------------
    def var_at(self, name: str, frame: int) -> Expr:
        """Return the frame-stamped variable for a state var or input."""
        width = self.flat.signal_widths().get(name)
        if width is None:
            raise KeyError(f"unknown signal {name!r}")
        return bv_var(frame_name(name, frame), width)

    def rename_to_frame(self, expr: Expr, frame: int) -> Expr:
        """Stamp every variable of ``expr`` (state vars/inputs) with ``@frame``."""
        return rename(expr, lambda name: frame_name(name, frame))

    def state_vars(self) -> Dict[str, int]:
        """State variable name -> width map of the flattened system."""
        return dict(self.flat.state_vars)

    def input_vars(self) -> Dict[str, int]:
        return dict(self.flat.inputs)

    # ------------------------------------------------------------------
    # word-level constraint building
    # ------------------------------------------------------------------
    def init_exprs(self, frame: int = 0) -> List[Expr]:
        """Initial-state constraints at ``frame``."""
        exprs = []
        for name, init in self.flat.init.items():
            exprs.append(bv_eq(self.var_at(name, frame), init))
        return exprs

    def trans_exprs(self, frame: int) -> List[Expr]:
        """Transition constraints from ``frame`` to ``frame + 1``."""
        exprs = []
        for name, next_expr in self.flat.next.items():
            stamped = self.rename_to_frame(next_expr, frame)
            exprs.append(bv_eq(self.var_at(name, frame + 1), stamped))
        for constraint in self.flat.constraints:
            exprs.append(self.rename_to_frame(constraint, frame))
        return exprs

    def property_expr(self, property_name: str, frame: int) -> Expr:
        """The (flattened) property expression stamped at ``frame``."""
        prop = self.flat.property_by_name(property_name)
        return self.rename_to_frame(prop.expr, frame)

    def constraint_exprs(self, frame: int) -> List[Expr]:
        return [self.rename_to_frame(c, frame) for c in self.flat.constraints]

    # ------------------------------------------------------------------
    # template instantiation
    # ------------------------------------------------------------------
    def _stamp(
        self, template: FrameTemplate, frame: int, guard: Optional[int] = None
    ) -> List[int]:
        """Instantiate ``template`` at ``frame``; returns the offset table.

        The table maps template variables to solver variables: named roles go
        through the shared frame-stamped bit allocations of the blaster (so
        consecutive frames connect and models read back normally), internal
        gate outputs get a fresh contiguous block.  Clause loading goes
        through the solver's bulk fast path.

        With ``guard`` (an activation variable) the *boundary* clauses — the
        only ones constraining named bits — carry the ``-guard`` literal, so
        the frame only binds the design signals while ``guard`` is assumed
        and is neutralized by :meth:`retire`.  Gate clauses are definitional
        (they constrain fresh internal variables only, and the cone is
        acyclic), so they stay unguarded: with the boundary disabled they are
        satisfiable for every assignment of the named bits.
        """
        _telemetry.counter("encoding.frames_stamped")
        blaster = self.solver.blaster
        sat = self.solver.solver
        table = [0] * (template.num_vars + 1)
        if template.true_var is not None:
            table[template.true_var] = blaster.encoder.true_lit
        for name, width, template_vars in template.cur:
            bits = blaster.bits_of_var(frame_name(name, frame), width)
            for template_var, bit in zip(template_vars, bits):
                table[template_var] = bit
        for name, width, template_vars in template.inp:
            bits = blaster.bits_of_var(frame_name(name, frame), width)
            for template_var, bit in zip(template_vars, bits):
                table[template_var] = bit
        for name, width, template_vars in template.nxt:
            bits = blaster.bits_of_var(frame_name(name, frame + 1), width)
            for template_var, bit in zip(template_vars, bits):
                table[template_var] = bit
        internal = template.internal
        if internal:
            first = sat.new_vars(len(internal))[0]
            base = internal[0]  # == named_count + 1 after canonical renumbering
            for offset, template_var in enumerate(internal):
                table[template_var] = first + offset
            # gate clauses mention only the fresh contiguous block: remap by
            # constant offset, no table lookups, no assignment checks; the
            # two-literal gates go straight into the binary watch pairs
            sat.add_fresh_binary(template.gate_binary, first - base)
            sat.add_fresh_clauses(template.gate_clauses, first - base)
        sat.add_clauses_mapped(template.boundary_clauses, table, guard=guard)
        return table

    # ------------------------------------------------------------------
    # session lifecycle: activation guards and retraction
    # ------------------------------------------------------------------
    def new_activation(self) -> int:
        """Allocate an activation variable guarding a retractable group.

        Pass it as ``guard`` to :meth:`assert_init` / :meth:`assert_trans`
        (or through the solver's guarded assertion helpers), include it in
        the assumptions of every check that should see the group, and call
        :meth:`retire` to drop the group permanently.  This is how one
        encoder session serves a whole engine run: frames are *extended* by
        stamping new template instances and *retracted* by flipping their
        guard, with the solver's learned clauses, variable activities and
        saved phases surviving across bounds.
        """
        return self.solver.new_activation()

    def retire(self, activation: int) -> int:
        """Permanently retract the constraints guarded by ``activation``.

        Returns the clause id of the retiring unit clause.  The guarded
        learned clauses are garbage-collected by the SAT solver (except under
        proof logging).  Any property literal obtained from a *guarded* stamp
        must not be reused afterwards; the stock engines only guard frame and
        assertion groups, never property cones, so the per-frame property
        literal cache stays valid.
        """
        return self.solver.retire(activation)

    # ------------------------------------------------------------------
    # assertion into the solver
    # ------------------------------------------------------------------
    def assert_init(self, frame: int = 0, guard: Optional[int] = None) -> Tuple[int, int]:
        """Assert the initial state at ``frame``; returns the clause-id range.

        With ``guard`` the constraints are activation-guarded (see
        :meth:`new_activation`).
        """
        if self.representation == "bit" and self.incremental_template:
            start = self.solver.solver.num_clauses
            self._assert_bit_init_direct(frame, guard)
            return start, self.solver.solver.num_clauses
        if self.representation == "bit":
            if guard is not None:
                raise ValueError("guarded init requires incremental_template")
            start = self.solver.solver.num_clauses
            self._assert_aig_init(frame)
            return start, self.solver.solver.num_clauses
        if guard is not None:
            return self.solver.assert_exprs_guarded(self.init_exprs(frame), guard)
        return self.solver.assert_exprs(self.init_exprs(frame))

    def assert_trans(self, frame: int, guard: Optional[int] = None) -> Tuple[int, int]:
        """Assert the transition from ``frame`` to ``frame + 1``; returns clause ids.

        With ``guard`` the frame's boundary clauses are activation-guarded:
        the frame constrains the design signals only while ``guard`` is
        assumed, and :meth:`retire` detaches it permanently (the sliding
        window of k-induction-style loops, spurious-prefix retraction of the
        interpolation engine, and the per-query groups of the refinement
        engines all use this instead of building fresh solvers).

        Deepening a session that has already searched refocuses the branching
        heuristic (:meth:`repro.sat.solver.Solver.reset_activity`): the new
        frame changes the query's shape, and activities tuned to the earlier
        bounds measurably inflate the conflict count of the deeper ones.
        Learned clauses and saved phases are kept.  Fresh solvers (and PDR,
        which stamps its single frame before ever solving) are unaffected —
        the reset is a no-op before the first conflict.
        """
        if self.solver.solver.stats.conflicts:
            self.solver.solver.reset_activity()
        if self.incremental_template:
            assert self._library is not None
            start = self.solver.solver.num_clauses
            self._stamp(self._library.trans_template, frame, guard=guard)
            return start, self.solver.solver.num_clauses
        if self.representation == "bit":
            if guard is not None:
                raise ValueError("guarded frames require incremental_template")
            start = self.solver.solver.num_clauses
            self._assert_aig_trans(frame)
            return start, self.solver.solver.num_clauses
        if guard is not None:
            return self.solver.assert_exprs_guarded(self.trans_exprs(frame), guard)
        return self.solver.assert_exprs(self.trans_exprs(frame))

    def property_literal(self, property_name: str, frame: int) -> int:
        """Return a SAT literal equivalent to the property holding at ``frame``."""
        if self.incremental_template:
            assert self._library is not None
            key = (property_name, frame)
            cached = self._property_literal_cache.get(key)
            if cached is not None:
                return cached
            template = self._library.property_template(property_name)
            table = self._stamp(template, frame)
            output = template.output
            assert output is not None
            literal = table[output] if output > 0 else -table[-output]
            self._property_literal_cache[key] = literal
            return literal
        if self.representation == "bit":
            return self._aig_property_literal(property_name, frame)
        return self.solver.literal_for(self.property_expr(property_name, frame))

    def _assert_bit_init_direct(self, frame: int, guard: Optional[int] = None) -> None:
        """Unit-clause the reset values onto the frame-stamped register bits."""
        blaster = self.solver.blaster
        sat = self.solver.solver
        for name, width in self.flat.state_vars.items():
            value = evaluate(self.flat.init[name], {})
            bits = blaster.bits_of_var(frame_name(name, frame), width)
            for index, bit in enumerate(bits):
                wanted = bit if (value >> index) & 1 else -bit
                if guard is None:
                    sat.add_clause([wanted])
                else:
                    sat.add_clause([-guard, wanted])

    # ------------------------------------------------------------------
    # AIG (bit-level) legacy encoding
    # ------------------------------------------------------------------
    def _aig_frame(self, frame: int) -> Dict[int, int]:
        """Return (creating if needed) the leaf mapping of one time frame.

        The mapping takes AIG node literals (even literals) to SAT literals.
        Inputs and latches are mapped eagerly to frame-stamped bit variables;
        AND gates are encoded lazily, cone by cone, in :meth:`_aig_literal_at`
        so that only the logic actually referenced by an assertion enters the
        clause database (this also keeps the clause partitions of the
        interpolation engine free of accidental sharing).
        """
        cached = self._aig_frame_literals.get(frame)
        if cached is not None:
            return cached
        aig = self._aig
        assert aig is not None
        blaster = self.solver.blaster
        mapping: Dict[int, int] = {0: blaster.encoder.false_lit}
        for literal in aig.inputs:
            name = aig.input_names[literal]
            base, index = name.rsplit("[", 1)
            bit_index = int(index[:-1])
            width = self.flat.inputs[base]
            bits = blaster.bits_of_var(frame_name(base, frame), width)
            mapping[literal] = bits[bit_index]
        for latch in aig.latches:
            base, index = latch.name.rsplit("[", 1)
            bit_index = int(index[:-1])
            width = self.flat.state_vars[base]
            bits = blaster.bits_of_var(frame_name(base, frame), width)
            mapping[latch.literal] = bits[bit_index]
        self._aig_frame_literals[frame] = mapping
        return mapping

    def _aig_literal_at(self, aig_literal: int, frame: int) -> int:
        """Encode (lazily) the cone of an AIG literal at a frame; return its SAT literal."""
        aig = self._aig
        assert aig is not None
        mapping = self._aig_frame(frame)
        encoder = self.solver.blaster.encoder

        def resolved(literal: int) -> Optional[int]:
            base = literal & ~1
            if base == 0:
                sat = encoder.false_lit
            else:
                sat = mapping.get(base)
                if sat is None:
                    return None
            return -sat if aig_is_negated(literal) else sat

        target = aig_literal & ~1
        if target != 0 and target not in mapping:
            # iterative post-order encoding of the AND cone
            stack = [target]
            while stack:
                node = stack[-1]
                if node in mapping:
                    stack.pop()
                    continue
                left, right = aig.ands[node]
                pending = [
                    child & ~1
                    for child in (left, right)
                    if (child & ~1) != 0 and (child & ~1) not in mapping
                ]
                if pending:
                    stack.extend(pending)
                    continue
                stack.pop()
                mapping[node] = encoder.and_gate([resolved(left), resolved(right)])
        result = resolved(aig_literal)
        assert result is not None
        return result

    def _assert_aig_init(self, frame: int) -> None:
        aig = self._aig
        assert aig is not None
        solver = self.solver.solver
        for latch in aig.latches:
            sat_literal = self._aig_literal_at(latch.literal, frame)
            solver.add_clause([sat_literal if latch.reset else -sat_literal])

    def _assert_aig_trans(self, frame: int) -> None:
        aig = self._aig
        assert aig is not None
        encoder = self.solver.blaster.encoder
        for latch in aig.latches:
            next_sat = self._aig_literal_at(latch.next_literal, frame)
            current_next = self._aig_literal_at(latch.literal, frame + 1)
            encoder.assert_equal(current_next, next_sat)

    def _aig_property_literal(self, property_name: str, frame: int) -> int:
        aig = self._aig
        assert aig is not None
        for name, bad_literal in aig.bad:
            if name == property_name:
                return -self._aig_literal_at(bad_literal, frame)
        raise KeyError(f"property {property_name!r} not found in the AIG")

    # ------------------------------------------------------------------
    # model extraction
    # ------------------------------------------------------------------
    def _model_value(self, name: str, frame: int, width: int) -> int:
        """Model value of a frame-stamped signal, defaulting to 0.

        Signals the encoding never blasted at ``frame`` (e.g. inputs outside
        the property cone at the violation frame) are unconstrained; they
        read back as a deterministic 0 *without* allocating fresh solver
        variables as a side effect of extraction.
        """
        stamped = frame_name(name, frame)
        if not self.solver.blaster.has_var(stamped):
            return 0
        return self.solver.value(stamped, width)

    def state_at(self, frame: int) -> Dict[str, int]:
        """Read register values at ``frame`` from the last satisfying assignment."""
        values = {}
        for name, width in self.flat.state_vars.items():
            values[name] = self._model_value(name, frame, width)
        return values

    def inputs_at(self, frame: int) -> Dict[str, int]:
        """Read primary input values at ``frame`` from the last satisfying assignment.

        Every declared input is valuated at every frame (unconstrained bits
        default to 0) so counterexample traces fully determine a concrete
        replay through :func:`repro.netlist.simulate.replay`.
        """
        values = {}
        for name, width in self.flat.inputs.items():
            values[name] = self._model_value(name, frame, width)
        return values

    def extract_counterexample(self, property_name: str, length: int) -> Counterexample:
        """Build a counterexample trace covering frames 0..length (inclusive)."""
        steps = []
        for frame in range(length + 1):
            step = {}
            step.update(self.state_at(frame))
            step.update(self.inputs_at(frame))
            steps.append(step)
        return Counterexample(property_name=property_name, steps=steps)
