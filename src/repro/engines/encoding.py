"""Time-frame encoding of a transition system into the bit-vector solver.

The :class:`FrameEncoder` gives every engine a uniform way to talk about the
design across clock cycles: signal ``x`` at cycle ``k`` becomes the solver
variable ``x@k``.  The encoder offers the usual building blocks — initial
state, transition relation between consecutive frames, property at a frame —
and reads back counterexample traces from satisfying assignments.

Two representations are supported, mirroring the paper's comparison axes:

* ``representation="word"`` (default): the word-level next-state expressions
  are bit-blasted directly (the EBMC/CBMC-style flow),
* ``representation="bit"``: the system is first lowered to the and-inverter
  graph of :mod:`repro.aig` and the AIG gates are encoded clause-by-clause
  (the Yosys/ABC-style bit-level flow).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.aig import AIG, aig_from_transition_system
from repro.aig.graph import aig_is_negated
from repro.exprs import Expr, bv_const, bv_eq, bv_var, substitute
from repro.exprs.substitute import rename
from repro.netlist import TransitionSystem
from repro.engines.result import Counterexample
from repro.smt import BVSolver


def frame_name(name: str, frame: int) -> str:
    """Return the solver variable name of signal ``name`` at time frame ``frame``."""
    return f"{name}@{frame}"


class FrameEncoder:
    """Unrolls a transition system into a :class:`repro.smt.BVSolver`."""

    def __init__(
        self,
        system: TransitionSystem,
        solver: Optional[BVSolver] = None,
        proof: bool = False,
        representation: str = "word",
    ) -> None:
        if representation not in ("word", "bit"):
            raise ValueError("representation must be 'word' or 'bit'")
        self.system = system
        self.flat = system.flattened()
        self.flat.validate()
        self.solver = solver if solver is not None else BVSolver(proof=proof)
        self.representation = representation
        self._aig: Optional[AIG] = None
        self._aig_frame_literals: Dict[int, Dict[int, int]] = {}
        if representation == "bit":
            self._aig = aig_from_transition_system(system)

    # ------------------------------------------------------------------
    # naming helpers
    # ------------------------------------------------------------------
    def var_at(self, name: str, frame: int) -> Expr:
        """Return the frame-stamped variable for a state var or input."""
        width = self.flat.signal_widths().get(name)
        if width is None:
            raise KeyError(f"unknown signal {name!r}")
        return bv_var(frame_name(name, frame), width)

    def rename_to_frame(self, expr: Expr, frame: int) -> Expr:
        """Stamp every variable of ``expr`` (state vars/inputs) with ``@frame``."""
        return rename(expr, lambda name: frame_name(name, frame))

    def state_vars(self) -> Dict[str, int]:
        """State variable name -> width map of the flattened system."""
        return dict(self.flat.state_vars)

    def input_vars(self) -> Dict[str, int]:
        return dict(self.flat.inputs)

    # ------------------------------------------------------------------
    # word-level constraint building
    # ------------------------------------------------------------------
    def init_exprs(self, frame: int = 0) -> List[Expr]:
        """Initial-state constraints at ``frame``."""
        exprs = []
        for name, init in self.flat.init.items():
            exprs.append(bv_eq(self.var_at(name, frame), init))
        return exprs

    def trans_exprs(self, frame: int) -> List[Expr]:
        """Transition constraints from ``frame`` to ``frame + 1``."""
        exprs = []
        for name, next_expr in self.flat.next.items():
            stamped = self.rename_to_frame(next_expr, frame)
            exprs.append(bv_eq(self.var_at(name, frame + 1), stamped))
        for constraint in self.flat.constraints:
            exprs.append(self.rename_to_frame(constraint, frame))
        return exprs

    def property_expr(self, property_name: str, frame: int) -> Expr:
        """The (flattened) property expression stamped at ``frame``."""
        prop = self.flat.property_by_name(property_name)
        return self.rename_to_frame(prop.expr, frame)

    def constraint_exprs(self, frame: int) -> List[Expr]:
        return [self.rename_to_frame(c, frame) for c in self.flat.constraints]

    # ------------------------------------------------------------------
    # assertion into the solver
    # ------------------------------------------------------------------
    def assert_init(self, frame: int = 0) -> Tuple[int, int]:
        """Assert the initial state at ``frame``; returns the clause-id range."""
        if self.representation == "bit":
            start = self.solver.solver.num_clauses
            self._assert_aig_init(frame)
            return start, self.solver.solver.num_clauses
        return self.solver.assert_exprs(self.init_exprs(frame))

    def assert_trans(self, frame: int) -> Tuple[int, int]:
        """Assert the transition from ``frame`` to ``frame + 1``; returns clause ids."""
        if self.representation == "bit":
            start = self.solver.solver.num_clauses
            self._assert_aig_trans(frame)
            return start, self.solver.solver.num_clauses
        return self.solver.assert_exprs(self.trans_exprs(frame))

    def property_literal(self, property_name: str, frame: int) -> int:
        """Return a SAT literal equivalent to the property holding at ``frame``."""
        if self.representation == "bit":
            return self._aig_property_literal(property_name, frame)
        return self.solver.literal_for(self.property_expr(property_name, frame))

    # ------------------------------------------------------------------
    # AIG (bit-level) encoding
    # ------------------------------------------------------------------
    def _aig_frame(self, frame: int) -> Dict[int, int]:
        """Return (creating if needed) the leaf mapping of one time frame.

        The mapping takes AIG node literals (even literals) to SAT literals.
        Inputs and latches are mapped eagerly to frame-stamped bit variables;
        AND gates are encoded lazily, cone by cone, in :meth:`_aig_literal_at`
        so that only the logic actually referenced by an assertion enters the
        clause database (this also keeps the clause partitions of the
        interpolation engine free of accidental sharing).
        """
        cached = self._aig_frame_literals.get(frame)
        if cached is not None:
            return cached
        aig = self._aig
        assert aig is not None
        blaster = self.solver.blaster
        mapping: Dict[int, int] = {0: blaster.encoder.false_lit}
        for literal in aig.inputs:
            name = aig.input_names[literal]
            base, index = name.rsplit("[", 1)
            bit_index = int(index[:-1])
            width = self.flat.inputs[base]
            bits = blaster.bits_of_var(frame_name(base, frame), width)
            mapping[literal] = bits[bit_index]
        for latch in aig.latches:
            base, index = latch.name.rsplit("[", 1)
            bit_index = int(index[:-1])
            width = self.flat.state_vars[base]
            bits = blaster.bits_of_var(frame_name(base, frame), width)
            mapping[latch.literal] = bits[bit_index]
        self._aig_frame_literals[frame] = mapping
        return mapping

    def _aig_literal_at(self, aig_literal: int, frame: int) -> int:
        """Encode (lazily) the cone of an AIG literal at a frame; return its SAT literal."""
        aig = self._aig
        assert aig is not None
        mapping = self._aig_frame(frame)
        encoder = self.solver.blaster.encoder

        def resolved(literal: int) -> Optional[int]:
            base = literal & ~1
            if base == 0:
                sat = encoder.false_lit
            else:
                sat = mapping.get(base)
                if sat is None:
                    return None
            return -sat if aig_is_negated(literal) else sat

        target = aig_literal & ~1
        if target != 0 and target not in mapping:
            # iterative post-order encoding of the AND cone
            stack = [target]
            while stack:
                node = stack[-1]
                if node in mapping:
                    stack.pop()
                    continue
                left, right = aig.ands[node]
                pending = [
                    child & ~1
                    for child in (left, right)
                    if (child & ~1) != 0 and (child & ~1) not in mapping
                ]
                if pending:
                    stack.extend(pending)
                    continue
                stack.pop()
                mapping[node] = encoder.and_gate([resolved(left), resolved(right)])
        result = resolved(aig_literal)
        assert result is not None
        return result

    def _assert_aig_init(self, frame: int) -> None:
        aig = self._aig
        assert aig is not None
        solver = self.solver.solver
        for latch in aig.latches:
            sat_literal = self._aig_literal_at(latch.literal, frame)
            solver.add_clause([sat_literal if latch.reset else -sat_literal])

    def _assert_aig_trans(self, frame: int) -> None:
        aig = self._aig
        assert aig is not None
        encoder = self.solver.blaster.encoder
        for latch in aig.latches:
            next_sat = self._aig_literal_at(latch.next_literal, frame)
            current_next = self._aig_literal_at(latch.literal, frame + 1)
            encoder.assert_equal(current_next, next_sat)

    def _aig_property_literal(self, property_name: str, frame: int) -> int:
        aig = self._aig
        assert aig is not None
        for name, bad_literal in aig.bad:
            if name == property_name:
                return -self._aig_literal_at(bad_literal, frame)
        raise KeyError(f"property {property_name!r} not found in the AIG")

    # ------------------------------------------------------------------
    # model extraction
    # ------------------------------------------------------------------
    def state_at(self, frame: int) -> Dict[str, int]:
        """Read register values at ``frame`` from the last satisfying assignment."""
        values = {}
        for name, width in self.flat.state_vars.items():
            values[name] = self.solver.value(frame_name(name, frame), width)
        return values

    def inputs_at(self, frame: int) -> Dict[str, int]:
        """Read primary input values at ``frame`` from the last satisfying assignment."""
        values = {}
        for name, width in self.flat.inputs.items():
            values[name] = self.solver.value(frame_name(name, frame), width)
        return values

    def extract_counterexample(self, property_name: str, length: int) -> Counterexample:
        """Build a counterexample trace covering frames 0..length (inclusive)."""
        steps = []
        for frame in range(length + 1):
            step = {}
            step.update(self.state_at(frame))
            step.update(self.inputs_at(frame))
            steps.append(step)
        return Counterexample(property_name=property_name, steps=steps)
