"""Batched suite sweeps over one warm process pool.

The serving workload of the ROADMAP is not "one design, one query" but a
*sweep*: many designs × properties verified together, repeatedly.  The
:class:`BatchRunner` turns such a sweep into one warm pipeline:

* items are expanded to one unit of work per ``(design, property)`` — a
  multi-property design is sharded one worker per *property*, so its
  properties verify concurrently while sharing the design's blast;
* the parent pre-blasts every task's frame-template library once and then
  forks the pool, so all workers inherit the warm blasts via copy-on-write
  (same mechanism as the portfolio pre-warm, amortized over the whole
  batch instead of one query);
* each item is first looked up in the certificate-keyed
  :class:`repro.cache.ResultCache` (when one is attached): hits are served
  from the parent after independent re-validation, only misses reach the
  pool;
* pool workers run the *sequential* budget ladder
  (:func:`run_sequential_ladder`): with the pool already saturating the
  cores on batch parallelism, racing engines per item would oversubscribe —
  instead each worker escalates cheap → medium → heavy in-process and stops
  at the first definitive answer;
* definitive results flow back to the parent, are validated, minimized and
  stored into the cache, so the *next* sweep over the same designs is all
  hits.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engines.portfolio import (
    LadderRung,
    VerificationTask,
    default_budget_ladder,
    learn_priors,
    warm_task_templates,
)
from repro.engines.registry import make_engine
from repro.engines.result import Budget, Status, VerificationResult
from repro.engines.supervision import (
    CANCELLED as _UNIT_CANCELLED,
    TIMED_OUT as _UNIT_TIMED_OUT,
    RetryPolicy,
    SupervisedOutcome,
    WorkerSupervisor,
    report_progress,
)
from repro.obs import telemetry as _telemetry


# ---------------------------------------------------------------------------
# the sequential in-process budget ladder (one batch worker = one item)
# ---------------------------------------------------------------------------


def run_sequential_ladder(
    system,
    property_name: Optional[str],
    rungs: Sequence[LadderRung],
    timeout: Optional[float] = None,
    certify: bool = False,
) -> VerificationResult:
    """Escalate through the ladder rungs one engine at a time, in-process.

    Every configuration of a rung runs with the rung's remaining budget
    (clipped to the overall ``timeout``); the first definitive answer wins
    and the attempt log is recorded under ``detail["ladder_attempts"]``.
    Engine crashes are recorded and skipped — the batch counterpart of the
    portfolio's crash category.  With ``certify`` a definitive answer is
    accepted only if its certificate passes independent validation; a claim
    that fails (a lying or fault-injected engine) is recorded as an
    ``uncertified`` attempt and the ladder escalates past it.
    """
    budget = Budget(timeout)
    attempts: List[Dict[str, object]] = []
    saw_unknown = False
    for rung_index, rung in enumerate(rungs):
        rung_deadline = (
            None if rung.budget is None else time.monotonic() + rung.budget
        )
        for config in rung.configs:
            remaining = budget.remaining()
            if remaining is not None and remaining <= 0:
                break
            allowance = remaining
            if rung_deadline is not None:
                rung_left = rung_deadline - time.monotonic()
                if rung_left <= 0:
                    break
                allowance = (
                    rung_left if allowance is None else min(allowance, rung_left)
                )
            t0 = time.monotonic()
            # a rung landing is a liveness milestone: under supervision it
            # streams to the waiting client as a progress frame
            report_progress(
                milestone=True, phase="rung", rung=rung_index, config=config.label
            )
            try:
                with _telemetry.span(
                    "ladder.attempt", config=config.label, rung=rung_index
                ) as attempt_span:
                    engine = make_engine(
                        config.engine,
                        system,
                        ignore_unknown_options=True,
                        **config.options_dict,
                    )
                    result = engine.verify(property_name, timeout=allowance)
                    attempt_span.set_outcome(result.status)
            except Exception as error:  # noqa: BLE001 - crash category
                attempts.append(
                    {
                        "config": config.label,
                        "rung": rung_index,
                        "status": Status.ERROR,
                        "runtime_s": round(time.monotonic() - t0, 6),
                        "reason": f"{type(error).__name__}: {error}",
                    }
                )
                continue
            attempts.append(
                {
                    "config": config.label,
                    "rung": rung_index,
                    "status": result.status,
                    "runtime_s": round(time.monotonic() - t0, 6),
                }
            )
            if result.status == Status.UNKNOWN:
                saw_unknown = True
            if result.is_definitive and certify:
                from repro.certs import validate_result

                validation = validate_result(system, result, timeout=allowance)
                if not validation.ok:
                    attempts[-1]["status"] = "uncertified"
                    attempts[-1]["reason"] = (
                        f"certificate rejected: {validation.reason}"
                    )
                    continue
                result.detail["certified"] = True
            if result.is_definitive:
                result.detail["ladder_rung"] = rung_index
                result.detail["ladder_attempts"] = attempts
                # keep result.runtime as the deciding engine's own time —
                # consumers (learn_priors) attribute it to that engine, so it
                # must not absorb earlier rungs' failed probes; the whole
                # ladder's elapsed time is reported separately
                result.detail["ladder_wall_s"] = round(budget.elapsed(), 6)
                return result
        if budget.expired():
            break
    status = Status.UNKNOWN if saw_unknown else Status.TIMEOUT
    if attempts and all(a["status"] == Status.ERROR for a in attempts):
        status = Status.ERROR
    resolved_property = property_name or (
        system.properties[0].name if system.properties else ""
    )
    return VerificationResult(
        status,
        "ladder",
        resolved_property,
        runtime=budget.elapsed(),
        detail={"ladder_attempts": attempts},
        reason="no ladder configuration reached a definitive answer",
    )


# ---------------------------------------------------------------------------
# batch items and per-item results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchItem:
    """One batch request: a task and (optionally) one of its properties.

    ``property_name=None`` expands to one unit of work per declared
    property of the design.  ``expected`` is the known ground truth used for
    the WRONG classification; for suite benchmarks it defaults to the
    suite's recorded verdict.
    """

    task: VerificationTask
    property_name: Optional[str] = None
    expected: Optional[str] = None

    @staticmethod
    def benchmark(name: str, property_name: Optional[str] = None) -> "BatchItem":
        return BatchItem(VerificationTask.benchmark(name), property_name)


@dataclass
class BatchItemResult:
    """The outcome of one ``(design, property)`` unit of work."""

    design: str
    property_name: str
    status: str
    #: "cache" for hits, the deciding engine name for pool runs
    source: str
    runtime_s: float
    cache_key: Optional[str] = None
    #: True iff the verdict is backed by an independently validated
    #: certificate (always true for cache hits; true for stored results)
    validated: bool = False
    stored: bool = False
    rung: Optional[int] = None
    expected: Optional[str] = None
    reason: str = ""
    minimization: Optional[Dict[str, object]] = None
    #: supervision record of the unit (attempt log, retries, degradation)
    supervision: Optional[Dict[str, object]] = None

    @property
    def correct(self) -> Optional[bool]:
        if self.expected is None or self.status not in Status.DEFINITIVE:
            return None
        return self.status == self.expected

    def to_json(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "property": self.property_name,
            "status": self.status,
            "source": self.source,
            "runtime_s": round(self.runtime_s, 6),
            "cache_key": self.cache_key,
            "validated": self.validated,
            "stored": self.stored,
            "rung": self.rung,
            "expected": self.expected,
            "correct": self.correct,
            "reason": self.reason,
            "minimization": self.minimization,
            "supervision": self.supervision,
        }


@dataclass
class BatchReport:
    """Aggregated outcome of one batch sweep."""

    items: List[BatchItemResult] = field(default_factory=list)
    wall_s: float = 0.0
    workers: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    demotions: int = 0
    #: supervised retries launched across all units
    retries: int = 0
    #: units that ran in-process after the pool went unhealthy
    degraded: int = 0

    @property
    def all_definitive(self) -> bool:
        return all(item.status in Status.DEFINITIVE for item in self.items)

    @property
    def all_correct(self) -> bool:
        return all(item.correct is not False for item in self.items)

    def verdicts(self) -> Dict[Tuple[str, str], str]:
        return {
            (item.design, item.property_name): item.status for item in self.items
        }

    def to_json(self) -> Dict[str, object]:
        return {
            "wall_s": round(self.wall_s, 6),
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "demotions": self.demotions,
            "retries": self.retries,
            "degraded": self.degraded,
            "all_definitive": self.all_definitive,
            "all_correct": self.all_correct,
            "items": [item.to_json() for item in self.items],
        }


# ---------------------------------------------------------------------------
# the pool worker
# ---------------------------------------------------------------------------


def _batch_worker(
    payload: Tuple[int, VerificationTask, Optional[str], Tuple[LadderRung, ...], Optional[float]],
) -> Tuple[int, VerificationResult]:
    """Run one unit of work (sequential ladder) in a pool process."""
    index, task, property_name, rungs, timeout = payload[:5]
    certify = bool(payload[5]) if len(payload) > 5 else False
    start = time.monotonic()
    try:
        with _telemetry.span(
            "batch.unit", design=task.name, property=property_name or ""
        ) as unit_span:
            system = task.load()
            result = run_sequential_ladder(
                system, property_name, rungs, timeout, certify=certify
            )
            unit_span.set_outcome(result.status)
    except Exception as error:  # noqa: BLE001 - loader/ladder crash
        result = VerificationResult(
            Status.ERROR,
            "batch",
            property_name or "",
            runtime=time.monotonic() - start,
            reason=f"{type(error).__name__}: {error}",
        )
    try:
        pickle.dumps(result)
    except Exception:  # pragma: no cover - unpicklable engine detail
        result = VerificationResult(
            result.status,
            result.engine,
            result.property_name,
            runtime=result.runtime,
            reason=result.reason or "detail dropped (not picklable)",
        )
    return index, result


def _result_from_outcome(
    outcome: SupervisedOutcome, property_name: Optional[str]
) -> VerificationResult:
    """Map a supervised unit that never reported into the result taxonomy.

    Used when ``outcome.value`` is ``None`` — the worker crashed, timed out,
    or the unit was cancelled before any attempt answered.  The supervision
    state surfaces through an ordinary :class:`VerificationResult`, never a
    silent skip.
    """
    if outcome.state == _UNIT_TIMED_OUT:
        status = Status.TIMEOUT
    elif outcome.state == _UNIT_CANCELLED:
        status = Status.UNKNOWN
    else:
        status = Status.ERROR
    runtime = sum(a.get("runtime_s", 0.0) for a in outcome.attempts)
    return VerificationResult(
        status,
        "batch",
        property_name or "",
        runtime=runtime,
        reason=(
            f"worker {outcome.state} after {len(outcome.attempts)} attempt(s)"
            + (f": {outcome.reason}" if outcome.reason else "")
        ),
    )


def run_supervised_unit(
    task: VerificationTask,
    property_name: Optional[str],
    rungs: Sequence[LadderRung],
    timeout: Optional[float] = None,
    attempt_timeout: Optional[float] = None,
    certify: bool = False,
    supervisor: Optional[WorkerSupervisor] = None,
    context=None,
    retry: Optional[RetryPolicy] = None,
    abort=None,
    stall=None,
    on_event=None,
) -> Tuple[VerificationResult, SupervisedOutcome]:
    """Run one ``(task, property)`` unit in a supervised worker process.

    This is the single-unit form of the batch pool: one payload through
    :meth:`WorkerSupervisor.run_map` with the same rebudgeting (the attempt
    allowance is threaded into the ladder so engines and solvers arm their
    cooperative deadlines) and the same semantic acceptance test (a ladder
    that returned no definitive verdict is retried under the remaining
    budget).  The serve layer runs every admitted request through here, so
    a server request gets exactly the deadline/kill/retry hygiene of a
    batch unit — plus ``abort`` for client-disconnect cancellation and
    ``stall`` for the wedged-request liveness kill (both settable events,
    see :meth:`WorkerSupervisor.run_map`).
    """
    if supervisor is None:
        if context is None:
            start_methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in start_methods else "spawn"
            )
        supervisor = WorkerSupervisor(context, retry=retry)
    payload = (0, task, property_name, tuple(rungs), timeout, certify)
    outcomes = supervisor.run_map(
        [payload],
        _batch_worker,
        jobs=1,
        timeout=timeout,
        attempt_timeout=attempt_timeout,
        rebudget=lambda p, allowance: p[:4] + (allowance,) + p[5:],
        accept=_accept_definitive,
        abort=abort,
        stall=stall,
        on_event=on_event,
    )
    outcome = outcomes[0]
    if outcome.value is not None:
        _, result = outcome.value
    else:
        result = _result_from_outcome(outcome, property_name)
    return result, outcome


def _accept_definitive(payload, value) -> Optional[str]:
    """Supervision acceptance test for a batch worker's answer.

    A ladder that came back without a definitive verdict (every rung
    crashed, wedged, or had its certificate rejected) is worth retrying
    while the unit still has wall budget — the supervisor keeps the
    rejected answer as the fallback if the retry fares no better.
    """
    try:
        _, result = value
    except (TypeError, ValueError):
        return "malformed worker answer"
    if result.status in Status.DEFINITIVE:
        return None
    return f"no definitive verdict ({result.status}: {result.reason or 'inconclusive'})"


# ---------------------------------------------------------------------------
# the batch runner
# ---------------------------------------------------------------------------


class BatchRunner:
    """Verify many designs × properties through one warm process pool.

    Parameters
    ----------
    cache:
        Optional :class:`repro.cache.ResultCache`.  Hits are served from
        the parent after re-validation; definitive pool results are
        validated, minimized and stored back, so the cache warms up over
        the batch and across batches.
    jobs:
        Pool size (default: CPU count, capped by the number of misses).
    timeout:
        Per-item wall-clock budget in seconds.
    bound:
        Search-depth cap routed to every engine of the ladder.
    ladder:
        The rung schedule each worker escalates through (default: the
        cost-tier ladder of :func:`default_budget_ladder`, ordered by
        priors learned from local ``BENCH_*.json`` reports).
    on_event:
        Optional callback receiving progress dicts (``hit``/``scheduled``/
        ``result``/``stored``/``supervision`` events).
    retry:
        :class:`repro.engines.supervision.RetryPolicy` for crashed or
        timed-out units (default: one retry with backoff).
    attempt_timeout:
        Per-attempt wall cap in seconds (on top of the per-item ``timeout``
        budget); a wedged worker is killed this long after launch.
    certify:
        Accept a definitive ladder answer only when its certificate passes
        independent validation (see :func:`run_sequential_ladder`).
    """

    def __init__(
        self,
        cache=None,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        bound: Optional[int] = None,
        representation: str = "word",
        ladder: Optional[Sequence[LadderRung]] = None,
        priors: Optional[Dict[str, Dict[str, float]]] = None,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        warm_templates: bool = True,
        retry: Optional[RetryPolicy] = None,
        attempt_timeout: Optional[float] = None,
        certify: bool = False,
    ) -> None:
        self.cache = cache
        self.jobs = jobs
        self.timeout = timeout
        self.bound = bound
        self.representation = representation
        if ladder is None:
            if priors is None:
                priors = learn_priors()
            ladder = default_budget_ladder(
                (representation,), bound=bound, timeout=timeout, priors=priors
            )
        self.ladder = tuple(ladder)
        self.on_event = on_event
        self.warm_templates = warm_templates
        self.retry = retry
        self.attempt_timeout = attempt_timeout
        self.certify = certify
        start_methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in start_methods else "spawn"
        )

    # ------------------------------------------------------------------
    def _emit(self, event: str, **payload) -> None:
        if self.on_event is not None:
            self.on_event({"event": event, **payload})

    def _expand(
        self, items: Sequence[BatchItem]
    ) -> List[Tuple[VerificationTask, str, Optional[str]]]:
        """One unit of work per (task, property): the per-property sharding."""
        units: List[Tuple[VerificationTask, str, Optional[str]]] = []
        for item in items:
            expected = item.expected
            if expected is None and item.task.kind == "benchmark":
                from repro.benchmarks import get_benchmark

                expected = get_benchmark(item.task.spec).expected
            if item.property_name is not None:
                units.append((item.task, item.property_name, expected))
                continue
            try:
                system = item.task.load()
            except Exception:  # noqa: BLE001 - loader/parse failures
                # keep the unit: the pool worker re-attempts the load and
                # reports the failure as this item's ERROR result, so one
                # bad target cannot abort the rest of the sweep
                units.append((item.task, "", expected))
                continue
            for prop in system.properties:
                units.append((item.task, prop.name, expected))
        return units

    def _prewarm(self, units: Sequence[Tuple[VerificationTask, str, Optional[str]]]) -> None:
        """Blast every task's template library once, before forking the pool."""
        if not self.warm_templates or self._context.get_start_method() != "fork":
            return
        seen = set()
        for task, _, _ in units:
            key = (task.kind, id(task.spec) if task.kind == "system" else task.spec)
            if key in seen:
                continue
            seen.add(key)
            warm_task_templates(task, (self.representation,))

    # ------------------------------------------------------------------
    def run(self, items: Sequence[BatchItem]) -> BatchReport:
        """Sweep the batch; returns the per-item report."""
        with _telemetry.span("batch.run", items=len(items)) as batch_span:
            report = self._run(items)
            batch_span.annotate(
                units=len(report.items),
                cache_hits=report.cache_hits,
                cache_misses=report.cache_misses,
            )
            return report

    def _run(self, items: Sequence[BatchItem]) -> BatchReport:
        start = time.monotonic()
        units = self._expand(items)
        report = BatchReport(items=[None] * len(units))  # type: ignore[list-item]

        # serve cache hits from the parent (re-validated), queue the misses
        pending: List[int] = []
        for index, (task, property_name, expected) in enumerate(units):
            if self.cache is None:
                pending.append(index)
                continue
            try:
                system = task.load()
            except Exception:  # noqa: BLE001 - loader/parse failures
                pending.append(index)  # the worker reports the load error
                continue
            lookup = self.cache.lookup(system, property_name, self.representation)
            if lookup.hit:
                assert lookup.result is not None
                report.cache_hits += 1
                entry = lookup.entry
                report.items[index] = BatchItemResult(
                    design=task.name,
                    property_name=property_name,
                    status=lookup.result.status,
                    source="cache",
                    runtime_s=lookup.runtime_s,
                    cache_key=lookup.key,
                    validated=True,
                    expected=expected,
                    reason=lookup.result.reason,
                    minimization=(
                        {
                            "minimized": entry.minimized,
                            "original_size": entry.original_size,
                            "size": entry.size,
                        }
                        if entry is not None and entry.size is not None
                        else None
                    ),
                )
                self._emit(
                    "hit",
                    design=task.name,
                    property=property_name,
                    status=lookup.result.status,
                )
            else:
                report.cache_misses += 1
                if lookup.demoted:
                    report.demotions += 1
                    self._emit(
                        "demoted",
                        design=task.name,
                        property=property_name,
                        reason=lookup.reason,
                    )
                pending.append(index)

        if pending:
            self._prewarm([units[index] for index in pending])
            jobs = self.jobs or os.cpu_count() or 1
            jobs = max(1, min(jobs, len(pending)))
            report.workers = jobs
            payloads = [
                (
                    index,
                    units[index][0],
                    units[index][1],
                    self.ladder,
                    self.timeout,
                    self.certify,
                )
                for index in pending
            ]
            for index in pending:
                task, property_name, _ = units[index]
                self._emit("scheduled", design=task.name, property=property_name)
            supervisor = WorkerSupervisor(self._context, retry=self.retry)
            outcomes = supervisor.run_map(
                payloads,
                _batch_worker,
                jobs=jobs,
                timeout=self.timeout,
                attempt_timeout=self.attempt_timeout,
                # thread the attempt's allowance into the payload so the
                # ladder (and its solvers) arm cooperative deadlines; the
                # external kill is only the backstop for wedged workers
                rebudget=lambda payload, allowance: (
                    payload[:4] + (allowance,) + payload[5:]
                ),
                accept=_accept_definitive,
                on_event=lambda event: self._emit(
                    "supervision", **{"kind" if k == "event" else k: v for k, v in event.items()}
                ),
            )
            for payload, outcome in zip(payloads, outcomes):
                index = payload[0]
                task, property_name, expected = units[index]
                if outcome.value is not None:
                    _, result = outcome.value
                else:
                    # the unit never reported: surface the supervision state
                    # through the ordinary result taxonomy, never skip it
                    result = _result_from_outcome(outcome, property_name)
                row = self._finish(task, property_name, expected, result)
                row.supervision = outcome.to_json()
                report.items[index] = row
                report.retries += max(0, len(outcome.attempts) - 1)
                if outcome.degraded:
                    report.degraded += 1

        report.wall_s = time.monotonic() - start
        return report

    # ------------------------------------------------------------------
    def _finish(
        self,
        task: VerificationTask,
        property_name: str,
        expected: Optional[str],
        result: VerificationResult,
    ) -> BatchItemResult:
        """Record one pool result, storing it into the cache when possible."""
        row = BatchItemResult(
            design=task.name,
            property_name=property_name,
            status=result.status,
            source=result.engine,
            runtime_s=result.runtime,
            rung=result.detail.get("ladder_rung"),
            expected=expected,
            reason=result.reason,
        )
        self._emit(
            "result",
            design=task.name,
            property=property_name,
            status=result.status,
            source=result.engine,
            runtime=result.runtime,
        )
        if self.cache is not None and result.is_definitive:
            system = task.load()
            outcome = self.cache.store(
                system, property_name, self.representation, result, design=task.name
            )
            row.cache_key = outcome.key
            row.stored = outcome.stored
            row.validated = outcome.stored
            if outcome.minimization is not None:
                row.minimization = {
                    "minimized": bool(outcome.minimization.dropped),
                    "original_size": outcome.minimization.original_size,
                    "size": outcome.minimization.size,
                    "checks": outcome.minimization.checks,
                    "validate_original_s": round(outcome.validate_original_s or 0.0, 6),
                    "validate_minimized_s": round(outcome.validate_minimized_s or 0.0, 6),
                }
            if outcome.stored:
                self._emit(
                    "stored", design=task.name, property=property_name, key=outcome.key
                )
            else:
                row.reason = (row.reason + "; " if row.reason else "") + (
                    f"not cached: {outcome.reason}"
                )
        return row
