"""IC3 / Property Directed Reachability (Bradley FMCAD 2007, Eén et al. 2011).

The engine maintains a sequence of over-approximating frames
``F_0 = Init, F_1, ..., F_N`` (sets of blocked cubes over the register bits,
delta-encoded) and incrementally strengthens them by blocking predecessors of
property violations with relatively-inductive clauses, generalizing each
learned clause by literal dropping.  When two consecutive frames coincide the
property is proved; when a proof obligation reaches the initial frame the
property is refuted.

This is the technique behind ABC's ``pdr`` command (bit level) and SeaHorn's
Horn-clause PDR (software level) compared in Figure 5 of the paper.  The
SeaHorn configuration of the tools layer runs this engine on an integer
over-approximation of the design, reproducing its documented imprecision on
bit-vector-heavy netlists.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.certs import InductiveCertificate, witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.bmc import BMCEngine
from repro.engines.encoding import FrameEncoder, frame_name
from repro.engines.result import Budget, Counterexample, Status, VerificationResult
from repro.netlist import TransitionSystem
from repro.obs import telemetry as _telemetry
from repro.smt import BVResult
from repro.exprs import bool_and, bool_not, bool_or, bv_var, evaluate, simplify


#: a cube literal: (register name, bit index, value)
CubeLit = Tuple[str, int, bool]
Cube = FrozenSet[CubeLit]


class PDREngine(Engine):
    """Incremental IC3/PDR over the register bits of the design."""

    name = "pdr"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=True, representations=("word", "bit"), complete=True
    )

    def __init__(
        self,
        system: TransitionSystem,
        max_frames: int = 200,
        representation: str = "word",
        generalize_passes: int = 1,
        incremental_template: bool = True,
        sim_filter: bool = True,
    ) -> None:
        super().__init__(system)
        self.max_frames = max_frames
        self.representation = representation
        self.generalize_passes = generalize_passes
        self.incremental_template = incremental_template
        self.sim_filter = sim_filter
        self._sampler = None
        self._sim_skips = 0

    # ------------------------------------------------------------------
    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()
        try:
            return self._run(property_name, budget, start)
        except _PdrTimeout:
            return VerificationResult(
                Status.TIMEOUT,
                self.name,
                property_name,
                runtime=budget.elapsed(),
                detail={"frames": getattr(self, "_frame_count", 0)},
            )

    # ------------------------------------------------------------------
    def _run(self, property_name: str, budget: Budget, start: float) -> VerificationResult:
        encoder = FrameEncoder(
            self.system,
            representation=self.representation,
            incremental_template=self.incremental_template,
        )
        solver = encoder.solver
        solver.set_deadline(budget.deadline)
        self._encoder = encoder
        self._budget = budget

        flat = encoder.flat
        self._state_widths = dict(flat.state_vars)
        self._init_values = {name: evaluate(expr, {}) for name, expr in flat.init.items()}

        self._sim_skips = 0
        self._sampler = None
        if self.sim_filter:
            from repro.netlist.bitsim import ReachabilitySampler

            self._sampler = ReachabilitySampler(self.system)

        # transition relation between frame 0 (current) and frame 1 (next)
        encoder.assert_trans(0)
        self._property_literal_now = encoder.property_literal(property_name, 0)

        # current/next bit literals per register
        self._bits_now: Dict[str, List[int]] = {}
        self._bits_next: Dict[str, List[int]] = {}
        for name, width in self._state_widths.items():
            self._bits_now[name] = solver.blaster.bits_of_var(frame_name(name, 0), width)
            self._bits_next[name] = solver.blaster.bits_of_var(frame_name(name, 1), width)

        # guarded initial-state clauses
        self._init_act = solver.new_bool()
        for name, width in self._state_widths.items():
            value = self._init_values[name]
            for bit in range(width):
                literal = self._bits_now[name][bit]
                wanted = literal if (value >> bit) & 1 else -literal
                solver.solver.add_clause([-self._init_act, wanted])

        # property must hold in the initial state
        if self._solve([self._init_act, -self._property_literal_now]) == BVResult.SAT:
            cex = Counterexample(property_name, [self._model_full_state()])
            return VerificationResult(
                Status.UNSAFE,
                self.name,
                property_name,
                runtime=time.monotonic() - start,
                counterexample=cex,
                detail={"frames": 0},
                certificate=witness_from_counterexample(self.system, self.name, cex),
            )

        # frames: frames[i] is the set of cubes blocked at level exactly i
        self._frames: List[Set[Cube]] = [set(), set()]
        self._acts: List[int] = [solver.new_bool(), solver.new_bool()]
        self._frame_count = 1

        while self._frame_count < self.max_frames:
            with _telemetry.span(
                "engine.pdr.frame", frame=self._frame_count
            ) as frame_span:
                if budget.expired():
                    frame_span.set_outcome("timeout")
                    raise _PdrTimeout()
                # block all bad states reachable in the top frame
                while True:
                    outcome = self._solve(
                        self._frame_assumptions(self._frame_count)
                        + [-self._property_literal_now]
                    )
                    if outcome != BVResult.SAT:
                        break
                    bad_cube = self._model_cube()
                    if not self._block(bad_cube, self._frame_count, property_name):
                        cex = self._extract_counterexample(property_name)
                        frame_span.set_outcome("unsafe")
                        return VerificationResult(
                            Status.UNSAFE,
                            self.name,
                            property_name,
                            runtime=time.monotonic() - start,
                            counterexample=cex,
                            detail={"frames": self._frame_count},
                            certificate=witness_from_counterexample(
                                self.system, self.name, cex
                            ),
                        )

                # open a new frame and propagate clauses forward
                self._frames.append(set())
                self._acts.append(self._encoder.solver.new_bool())
                self._frame_count += 1
                fixpoint_at = self._propagate()
                if fixpoint_at is not None:
                    frame_span.set_outcome("safe")
                    return VerificationResult(
                        Status.SAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        detail={
                            "frames": self._frame_count,
                            "fixpoint_frame": fixpoint_at,
                            "invariant_clauses": sum(
                                len(self._frames[j]) for j in range(fixpoint_at, len(self._frames))
                            ),
                            "sim_generalize_skips": self._sim_skips,
                        },
                        reason="inductive invariant found",
                        certificate=InductiveCertificate(
                            property_name,
                            self.name,
                            self._invariant_expr(fixpoint_at, property_name),
                        ),
                    )

        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            detail={"frames": self._frame_count},
            reason="frame limit exceeded",
        )

    # ------------------------------------------------------------------
    # solver plumbing
    # ------------------------------------------------------------------
    def _solve(self, assumptions: Sequence[int]) -> str:
        if self._budget.expired():
            raise _PdrTimeout()
        outcome = self._encoder.solver.check(assumptions=assumptions)
        if outcome == BVResult.UNKNOWN:
            raise _PdrTimeout()
        return outcome

    def _frame_assumptions(self, level: int) -> List[int]:
        """Activation literals selecting the clauses of frame ``level``."""
        assumptions = [self._acts[j] for j in range(level, len(self._acts))]
        if level == 0:
            assumptions.append(self._init_act)
        return assumptions

    def _cube_lits_now(self, cube: Cube) -> List[int]:
        return [
            self._bits_now[name][bit] if value else -self._bits_now[name][bit]
            for name, bit, value in cube
        ]

    def _cube_lits_next(self, cube: Cube) -> List[int]:
        return [
            self._bits_next[name][bit] if value else -self._bits_next[name][bit]
            for name, bit, value in cube
        ]

    def _model_cube(self) -> Cube:
        """Project the current satisfying assignment onto the register bits."""
        solver = self._encoder.solver
        literals: List[CubeLit] = []
        for name, width in self._state_widths.items():
            value = solver.value(frame_name(name, 0), width)
            for bit in range(width):
                literals.append((name, bit, bool((value >> bit) & 1)))
        return frozenset(literals)

    def _model_full_state(self) -> Dict[str, int]:
        solver = self._encoder.solver
        state = {}
        for name, width in self._state_widths.items():
            state[name] = solver.value(frame_name(name, 0), width)
        for name, width in self._encoder.flat.inputs.items():
            state[name] = solver.value(frame_name(name, 0), width)
        return state

    def _intersects_init(self, cube: Cube) -> bool:
        """True if the single initial state satisfies the cube."""
        for name, bit, value in cube:
            init_bit = bool((self._init_values[name] >> bit) & 1)
            if init_bit != value:
                return False
        return True

    def _add_blocked_cube(self, cube: Cube, level: int) -> None:
        """Record that ``cube`` is unreachable up to frame ``level``."""
        # subsumption within the delta encoding: drop weaker cubes
        for j in range(1, level + 1):
            self._frames[j] = {c for c in self._frames[j] if not cube <= c}
        self._frames[level].add(cube)
        clause = [-self._acts[level]] + [-lit for lit in self._cube_lits_now(cube)]
        self._encoder.solver.solver.add_clause(clause)

    # ------------------------------------------------------------------
    # blocking and generalization
    # ------------------------------------------------------------------
    def _block(self, cube: Cube, level: int, property_name: str) -> bool:
        """Recursively block ``cube`` at ``level``; False means a real counterexample."""
        obligations: List[Tuple[int, Cube]] = [(level, cube)]
        self._cex_chain: List[Cube] = []
        while obligations:
            obligations.sort(key=lambda item: item[0])
            obligation_level, obligation_cube = obligations[0]
            if obligation_level == 0 or self._intersects_init(obligation_cube):
                # the obligation chain reaches the initial state
                return False
            if self._budget.expired():
                raise _PdrTimeout()

            relative = self._relative_induction_query(obligation_cube, obligation_level - 1)
            if relative is None:
                # cube has no predecessor in F_{level-1}: block a generalization
                obligations.pop(0)
                generalized = self._generalize(obligation_cube, obligation_level - 1)
                push_level = obligation_level
                # push the clause as far forward as it stays inductive
                while push_level < self._frame_count and (
                    self._relative_induction_query(generalized, push_level) is None
                ):
                    push_level += 1
                self._add_blocked_cube(generalized, min(push_level, self._frame_count))
            else:
                predecessor = relative
                obligations.insert(0, (obligation_level - 1, predecessor))
        return True

    def _relative_induction_query(self, cube: Cube, level: int) -> Optional[Cube]:
        """Check ``F_level ∧ ¬cube ∧ T ∧ cube'``.

        Returns None when unsatisfiable (the cube is inductive relative to
        ``F_level``); otherwise returns the predecessor cube extracted from
        the model.
        """
        solver = self._encoder.solver
        # temporary activation literal for the ¬cube disjunction
        temp = solver.new_bool()
        clause = [-temp] + [-lit for lit in self._cube_lits_now(cube)]
        solver.solver.add_clause(clause)
        assumptions = self._frame_assumptions(level) + [temp] + self._cube_lits_next(cube)
        outcome = self._solve(assumptions)
        result: Optional[Cube]
        if outcome == BVResult.SAT:
            result = self._model_cube()
        else:
            result = None
        # retire the temporary activation literal
        solver.solver.add_clause([-temp])
        return result

    def _generalize(self, cube: Cube, level: int) -> Cube:
        """Drop literals from the cube while it stays relatively inductive."""
        current = set(cube)
        for _ in range(self.generalize_passes):
            changed = False
            for literal in list(current):
                if len(current) <= 1:
                    break
                candidate = frozenset(current - {literal})
                if self._intersects_init(candidate):
                    continue
                # bit-parallel screen: if a sampled reachable state satisfies
                # the widened cube, blocking it would over-generalize into the
                # reachable set and be repaired later — skip the induction
                # query and keep the literal (purely a query-saving heuristic;
                # the kept cube is strictly stronger, so soundness is
                # unaffected either way)
                if self._sampler is not None and self._sampler.satisfies_cube(candidate):
                    self._sim_skips += 1
                    continue
                if self._relative_induction_query(candidate, level) is None:
                    current.discard(literal)
                    changed = True
            if not changed:
                break
        return frozenset(current)

    # ------------------------------------------------------------------
    # certificates
    # ------------------------------------------------------------------
    def _invariant_expr(self, fixpoint_at: int, property_name: str):
        """The inductive invariant at the fixpoint: the frame clauses.

        Each blocked cube becomes a clause ``⋁ (register bit ≠ cube value)``
        over the word-level state variables.  The conjunction of the clauses
        at levels >= the fixpoint frame is one-step inductive (the relative
        induction queries that admitted the cubes) and excludes every bad
        state for every input valuation (the blocking loop left no
        ``F ∧ ¬P`` model) — exactly the obligations the independent
        certificate validator re-checks with fresh SAT queries.
        """
        clauses = []
        for level in range(fixpoint_at, len(self._frames)):
            for cube in self._frames[level]:
                literals = []
                for name, bit, value in sorted(cube):
                    bit_expr = bv_var(name, self._state_widths[name]).bit(bit)
                    literals.append(bool_not(bit_expr) if value else bit_expr)
                clauses.append(bool_or(*literals))
        return simplify(bool_and(*clauses))

    # ------------------------------------------------------------------
    # propagation and counterexamples
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[int]:
        """Push clauses forward; return the frame index of a fixpoint, if any."""
        for level in range(1, self._frame_count):
            for cube in sorted(self._frames[level], key=len):
                if self._budget.expired():
                    raise _PdrTimeout()
                if self._relative_induction_query(cube, level) is None:
                    self._frames[level].discard(cube)
                    self._add_blocked_cube(cube, level + 1)
            if not self._frames[level]:
                return level
        return None

    def _extract_counterexample(self, property_name: str) -> Optional[Counterexample]:
        """Recover a concrete trace with a bounded check of matching depth."""
        bmc = BMCEngine(
            self.system,
            max_bound=self._frame_count + 1,
            representation=self.representation,
            incremental_template=self.incremental_template,
        )
        result = bmc.verify(property_name, timeout=self._budget.remaining())
        return result.counterexample


class _PdrTimeout(Exception):
    """Internal control-flow exception for budget exhaustion."""
