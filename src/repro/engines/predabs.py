"""Predicate abstraction with CEGAR (the CPAChecker stand-in).

The engine abstracts the software-netlist by a finite set of predicates over
the registers.  Abstract states are truth assignments to the predicates;
abstract successors are enumerated with SAT queries over the concrete
transition relation (Cartesian-free, i.e. Boolean predicate abstraction).
A breadth-first search explores the abstract state space:

* if no abstract state violating the property is reachable, the abstraction
  is a proof and the design is safe;
* if an abstract error path is found it is replayed concretely (a bounded
  model checking query of the same length); a feasible replay is a real
  counterexample, an infeasible one triggers refinement — interpolants along
  the spurious path contribute new predicates (bit-level atoms), and the
  search restarts.

The abstract-state and refinement budgets model the practical limits of
predicate abstraction on bit-level-heavy designs that Figure 5 of the paper
shows (CPAChecker times out on two benchmarks).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.certs import InductiveCertificate, witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import FrameEncoder, flattened_cached
from repro.engines.result import Budget, Counterexample, Status, VerificationResult
from repro.exprs import (
    Expr,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    bv_var,
    collect_vars,
    evaluate,
    simplify,
)
from repro.exprs.nodes import Op
from repro.netlist import TransitionSystem
from repro.smt import BVResult, BVSolver


AbstractState = Tuple[bool, ...]


class PredicateAbstractionEngine(Engine):
    """Boolean predicate abstraction with interpolant-based refinement."""

    name = "predicate-abstraction"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=True, representations=("word",)
    )

    def __init__(
        self,
        system: TransitionSystem,
        max_abstract_states: int = 4000,
        max_refinements: int = 20,
        max_predicates: int = 64,
        representation: str = "word",
        persistent_session: bool = True,
    ) -> None:
        super().__init__(system)
        self.flat = flattened_cached(system)
        self.max_abstract_states = max_abstract_states
        self.max_refinements = max_refinements
        self.max_predicates = max_predicates
        self.representation = representation
        self.persistent_session = persistent_session
        self._reset_sessions()

    # ------------------------------------------------------------------
    def _reset_sessions(self) -> None:
        """Drop the per-run solver sessions (see the class docstring).

        With ``persistent_session`` the engine reuses, across its whole
        exploration: one solver for the "abstract state admits a violation"
        queries (the negated property is asserted once, each state constraint
        comes and goes under an activation literal), one encoder for
        successor enumeration per predicate set (the transition relation is
        stamped once instead of once per abstract state — the hot loop of
        Boolean predicate abstraction), one Init-rooted encoder for
        counterexample replays (frames only ever extend), and one
        :class:`repro.engines.impact.ImpactEngine` helper whose persistent
        interpolation session serves every refinement.
        """
        self._admits_solver: Optional[BVSolver] = None
        self._succ_encoder: Optional[FrameEncoder] = None
        self._succ_literals: List[int] = []
        self._succ_predicates: Tuple[Expr, ...] = ()
        self._replay_encoder: Optional[FrameEncoder] = None
        self._replay_frames = 0
        self._refine_helper = None

    # ------------------------------------------------------------------
    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()
        self._reset_sessions()
        prop = self.flat.property_by_name(property_name)

        predicates: List[Expr] = self._initial_predicates(prop.expr)
        refinements = 0

        while True:
            if budget.expired():
                return self._timeout(property_name, budget, refinements, len(predicates))
            exploration = self._explore(predicates, prop.expr, budget)
            if exploration is None:
                return self._timeout(property_name, budget, refinements, len(predicates))
            status, error_depth = exploration
            if status == "safe":
                # the reachable abstract states form an inductive invariant:
                # their union is closed under the transition relation and no
                # member admits a violation
                invariant = simplify(
                    bool_or(
                        *[
                            self._state_constraint(predicates, state)
                            for state in sorted(self._reached_states)
                        ]
                    )
                )
                return VerificationResult(
                    Status.SAFE,
                    self.name,
                    property_name,
                    runtime=time.monotonic() - start,
                    detail={
                        "predicates": len(predicates),
                        "refinements": refinements,
                        "abstract_states": len(self._reached_states),
                    },
                    reason="abstract reachability proof",
                    certificate=InductiveCertificate(
                        property_name, self.name, invariant
                    ),
                )
            if status == "limit":
                return VerificationResult(
                    Status.UNKNOWN,
                    self.name,
                    property_name,
                    runtime=time.monotonic() - start,
                    detail={
                        "predicates": len(predicates),
                        "refinements": refinements,
                    },
                    reason="abstract state budget exhausted",
                )
            # abstract error path of length error_depth: replay concretely
            feasible, cex = self._replay(property_name, error_depth, budget)
            if feasible is None:
                return self._timeout(property_name, budget, refinements, len(predicates))
            if feasible:
                return VerificationResult(
                    Status.UNSAFE,
                    self.name,
                    property_name,
                    runtime=time.monotonic() - start,
                    counterexample=cex,
                    detail={"depth": error_depth, "predicates": len(predicates)},
                    certificate=witness_from_counterexample(self.system, self.name, cex),
                )
            # spurious: refine
            refinements += 1
            if refinements > self.max_refinements or len(predicates) >= self.max_predicates:
                return VerificationResult(
                    Status.UNKNOWN,
                    self.name,
                    property_name,
                    runtime=time.monotonic() - start,
                    detail={"predicates": len(predicates), "refinements": refinements},
                    reason="refinement budget exhausted",
                )
            new_predicates = self._refine(property_name, error_depth, budget)
            if new_predicates is None:
                return self._timeout(property_name, budget, refinements, len(predicates))
            added = False
            for predicate in new_predicates:
                if predicate not in predicates and len(predicates) < self.max_predicates:
                    predicates.append(predicate)
                    added = True
            if not added:
                return VerificationResult(
                    Status.UNKNOWN,
                    self.name,
                    property_name,
                    runtime=time.monotonic() - start,
                    detail={"predicates": len(predicates), "refinements": refinements},
                    reason="refinement produced no new predicates",
                )

    # ------------------------------------------------------------------
    # predicate discovery
    # ------------------------------------------------------------------
    def _initial_predicates(self, property_expr: Expr) -> List[Expr]:
        """Atoms of the property plus register/initial-value equalities."""
        predicates: List[Expr] = []
        state_names = set(self.flat.state_vars)

        def over_state_only(expr: Expr) -> bool:
            return all(var.name in state_names for var in collect_vars(expr))

        def collect_atoms(expr: Expr) -> None:
            if isinstance(expr, Op) and expr.op in (
                "eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge",
                "redor", "redand",
            ):
                if over_state_only(expr) and expr not in predicates:
                    predicates.append(expr)
                return
            if isinstance(expr, Op):
                for arg in expr.args:
                    collect_atoms(arg)

        collect_atoms(property_expr)
        for name, width in self.flat.state_vars.items():
            equality = bv_var(name, width).eq(self.flat.init[name])
            if equality not in predicates:
                predicates.append(equality)
        return predicates[: self.max_predicates]

    # ------------------------------------------------------------------
    # abstract exploration
    # ------------------------------------------------------------------
    def _abstract_init(self, predicates: List[Expr]) -> AbstractState:
        init_env = {name: evaluate(expr, {}) for name, expr in self.flat.init.items()}
        return tuple(bool(evaluate(p, init_env)) for p in predicates)

    def _state_constraint(self, predicates: List[Expr], state: AbstractState) -> Expr:
        terms = []
        for predicate, value in zip(predicates, state):
            terms.append(predicate if value else bool_not(predicate))
        return bool_and(*terms) if terms else TRUE

    def _explore(
        self, predicates: List[Expr], property_expr: Expr, budget: Budget
    ) -> Optional[Tuple[str, int]]:
        """Breadth-first abstract reachability.

        Returns ("safe", 0), ("error", depth) or ("limit", 0); None on timeout.
        """
        initial = self._abstract_init(predicates)
        visited: Set[AbstractState] = {initial}
        #: reachable abstract states of the last exploration (certificate basis)
        self._reached_states = visited
        frontier: List[AbstractState] = [initial]
        depth = 0
        while frontier:
            if budget.expired():
                return None
            # does any frontier state admit a violation?
            for state in frontier:
                admits = self._admits_violation(predicates, state, property_expr, budget)
                if admits is None:
                    return None
                if admits:
                    return ("error", depth)
            next_frontier: List[AbstractState] = []
            for state in frontier:
                successors = self._abstract_successors(predicates, state, budget)
                if successors is None:
                    return None
                for successor in successors:
                    if successor not in visited:
                        visited.add(successor)
                        next_frontier.append(successor)
                        if len(visited) > self.max_abstract_states:
                            return ("limit", 0)
            frontier = next_frontier
            depth += 1
        return ("safe", 0)

    def _admits_violation(
        self, predicates: List[Expr], state: AbstractState, property_expr: Expr, budget: Budget
    ) -> Optional[bool]:
        if self.persistent_session:
            # one solver for every admits-violation query of the run: ¬P is
            # asserted permanently, the state constraint is guarded per call
            if self._admits_solver is None:
                self._admits_solver = BVSolver()
                self._admits_solver.assert_expr(bool_not(property_expr))
            solver = self._admits_solver
            solver.set_deadline(budget.deadline)
            activation = solver.new_activation()
            solver.assert_guarded(self._state_constraint(predicates, state), activation)
            outcome = solver.check(assumptions=[activation])
            solver.retire(activation)
        else:
            solver = BVSolver()
            solver.set_deadline(budget.deadline)
            solver.assert_expr(self._state_constraint(predicates, state))
            solver.assert_expr(bool_not(property_expr))
            outcome = solver.check()
        if outcome == BVResult.UNKNOWN:
            return None
        return outcome == BVResult.SAT

    def _abstract_successors(
        self, predicates: List[Expr], state: AbstractState, budget: Budget
    ) -> Optional[List[AbstractState]]:
        """Enumerate the abstract successors of one abstract state.

        This is the hot loop of Boolean predicate abstraction: one SAT-based
        image computation per reachable abstract state.  Session mode stamps
        the transition relation and blasts the successor predicates *once per
        predicate set*; each source state then only contributes a guarded
        state constraint and guarded blocking clauses, all retracted when its
        enumeration finishes.  Legacy mode rebuilds encoder + transition per
        state.
        """
        if self.persistent_session:
            key = tuple(predicates)
            if self._succ_encoder is None or self._succ_predicates != key:
                encoder = FrameEncoder(self.system, representation=self.representation)
                encoder.assert_trans(0)
                self._succ_encoder = encoder
                self._succ_literals = [
                    encoder.solver.literal_for(encoder.rename_to_frame(predicate, 1))
                    for predicate in predicates
                ]
                self._succ_predicates = key
            encoder = self._succ_encoder
            solver = encoder.solver
            solver.set_deadline(budget.deadline)
            successor_literals = self._succ_literals
            activation = solver.new_activation()
            solver.assert_guarded(
                encoder.rename_to_frame(self._state_constraint(predicates, state), 0),
                activation,
            )
            assumptions = [activation]
        else:
            encoder = FrameEncoder(self.system, representation=self.representation)
            solver = encoder.solver
            solver.set_deadline(budget.deadline)
            solver.assert_expr(
                encoder.rename_to_frame(self._state_constraint(predicates, state), 0)
            )
            encoder.assert_trans(0)
            successor_literals = [
                solver.literal_for(encoder.rename_to_frame(predicate, 1))
                for predicate in predicates
            ]
            activation = None
            assumptions = []
        successors: List[AbstractState] = []
        while True:
            if budget.expired():
                if activation is not None:
                    solver.retire(activation)
                return None
            outcome = solver.check(assumptions=assumptions)
            if outcome == BVResult.UNKNOWN:
                if activation is not None:
                    solver.retire(activation)
                return None
            if outcome == BVResult.UNSAT:
                if activation is not None:
                    solver.retire(activation)
                return successors
            assignment = tuple(
                solver.solver.model_value(literal) for literal in successor_literals
            )
            successors.append(assignment)
            # block this abstract successor and enumerate the next one; the
            # blocking clauses are scoped to this source state's activation
            blocking = [
                -literal if value else literal
                for literal, value in zip(successor_literals, assignment)
            ]
            if not blocking:
                if activation is not None:
                    solver.retire(activation)
                return successors
            if activation is not None:
                solver.solver.add_clause([-activation] + blocking)
            else:
                solver.solver.add_clause(blocking)

    # ------------------------------------------------------------------
    # concretization and refinement
    # ------------------------------------------------------------------
    def _replay(
        self, property_name: str, depth: int, budget: Budget
    ) -> Tuple[Optional[bool], Optional[Counterexample]]:
        if self.persistent_session:
            # one Init-rooted unrolling for every replay; frames only extend
            # (extra frames beyond this query's depth cannot constrain it —
            # the transition relation is total), the per-depth bad disjunction
            # is guarded and retired after the query
            if self._replay_encoder is None:
                self._replay_encoder = FrameEncoder(
                    self.system, representation=self.representation
                )
                self._replay_encoder.assert_init(0)
                self._replay_frames = 0
            encoder = self._replay_encoder
            encoder.solver.set_deadline(budget.deadline)
            while self._replay_frames < depth:
                encoder.assert_trans(self._replay_frames)
                self._replay_frames += 1
            bad_literals = [
                -encoder.property_literal(property_name, frame)
                for frame in range(depth + 1)
            ]
            activation = encoder.new_activation()
            encoder.solver.solver.add_clause([-activation] + bad_literals)
            outcome = encoder.solver.check(assumptions=[activation])
            result: Tuple[Optional[bool], Optional[Counterexample]]
            if outcome == BVResult.UNKNOWN:
                result = None, None
            elif outcome == BVResult.SAT:
                result = True, encoder.extract_counterexample(property_name, depth)
            else:
                result = False, None
            encoder.retire(activation)
            return result
        encoder = FrameEncoder(self.system, representation=self.representation)
        encoder.solver.set_deadline(budget.deadline)
        encoder.assert_init(0)
        bad_literals = []
        for frame in range(depth):
            bad_literals.append(-encoder.property_literal(property_name, frame))
            encoder.assert_trans(frame)
        bad_literals.append(-encoder.property_literal(property_name, depth))
        encoder.solver.solver.add_clause(bad_literals)
        outcome = encoder.solver.check()
        if outcome == BVResult.UNKNOWN:
            return None, None
        if outcome == BVResult.SAT:
            return True, encoder.extract_counterexample(property_name, depth)
        return False, None

    def _refine(
        self, property_name: str, depth: int, budget: Budget
    ) -> Optional[List[Expr]]:
        """Derive new predicates from the interpolants of the spurious path.

        The IMPACT helper (and with it the persistent proof session hosting
        the cut interpolants) is shared across every refinement of the run.
        """
        from repro.engines.impact import ImpactEngine

        if self._refine_helper is None:
            self._refine_helper = ImpactEngine(
                self.system,
                representation=self.representation,
                persistent_session=self.persistent_session,
            )
        helper = self._refine_helper
        new_predicates: List[Expr] = []
        for cut in range(1, depth + 1):
            interpolant = helper._cut_interpolant(property_name, depth, cut, budget)
            if interpolant is None:
                if budget.expired():
                    return None
                continue
            for atom in self._atoms_of(interpolant):
                if atom not in new_predicates:
                    new_predicates.append(atom)
        return new_predicates

    def _atoms_of(self, expr: Expr) -> List[Expr]:
        """Extract 1-bit atoms (comparisons / bit tests) from an interpolant."""
        atoms: List[Expr] = []

        def walk(node: Expr) -> None:
            if isinstance(node, Op):
                if node.op in ("eq", "ne", "extract", "ult", "ule", "ugt", "uge") and node.width == 1:
                    if node not in atoms:
                        atoms.append(node)
                    return
                for arg in node.args:
                    walk(arg)

        walk(expr)
        return atoms

    def _timeout(
        self, property_name: str, budget: Budget, refinements: int, predicates: int
    ) -> VerificationResult:
        return VerificationResult(
            Status.TIMEOUT,
            self.name,
            property_name,
            runtime=budget.elapsed(),
            detail={"refinements": refinements, "predicates": predicates},
        )
