"""Common result and counterexample types shared by all engines."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Status:
    """Verification outcome constants.

    ``SAFE``/``UNSAFE`` are definitive answers, the others mirror the failure
    categories plotted on the right-hand side of Figures 3–5 of the paper
    (timeout, memory-out, inconclusive, error).  ``WRONG`` is never returned
    by an engine itself; the harness assigns it when an answer contradicts the
    known status of a benchmark, reproducing the paper's "wrong result"
    category.
    """

    SAFE = "safe"
    UNSAFE = "unsafe"
    UNKNOWN = "unknown"
    TIMEOUT = "timeout"
    MEMOUT = "memout"
    ERROR = "error"
    WRONG = "wrong"

    DEFINITIVE = (SAFE, UNSAFE)


@dataclass
class Counterexample:
    """A finite input/state trace demonstrating a property violation.

    ``steps[i]`` holds the signal valuation of cycle ``i``; the violated
    property evaluates to false in the last step.
    """

    property_name: str
    steps: List[Dict[str, int]] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.steps)

    def value(self, cycle: int, name: str) -> int:
        return self.steps[cycle][name]

    def input_sequence(self, input_widths: Dict[str, int]) -> List[Dict[str, int]]:
        """Per-cycle input valuations covering *every* declared input.

        Inputs the trace does not pin default to 0 (and values are truncated
        to the declared width), so replaying the sequence through
        :func:`repro.netlist.simulate.replay` is deterministic.
        """
        sequence = []
        for step in self.steps:
            cycle = {}
            for name, width in input_widths.items():
                cycle[name] = int(step.get(name, 0)) & ((1 << width) - 1)
            sequence.append(cycle)
        return sequence


@dataclass
class VerificationResult:
    """The outcome of running one engine on one verification task."""

    status: str
    engine: str
    property_name: str = ""
    runtime: float = 0.0
    #: CPU seconds consumed by the verify call (``time.process_time`` delta
    #: taken by the engine base-class wrapper; 0.0 for hand-built results)
    cpu_time: float = 0.0
    counterexample: Optional[Counterexample] = None
    #: engine-specific detail: k for k-induction, frame count for PDR, ...
    detail: Dict[str, object] = field(default_factory=dict)
    reason: str = ""
    #: checkable certificate backing a definitive verdict: a
    #: :class:`repro.certs.Witness` for UNSAFE, an inductive or k-inductive
    #: certificate for SAFE (see :mod:`repro.certs`)
    certificate: Optional[object] = None
    #: telemetry attached when recording is on: counter deltas for this
    #: verify call, and — on supervised/portfolio results — the worker's
    #: exported span subtree under the ``"trace"`` key
    telemetry: Optional[Dict[str, object]] = None

    @property
    def is_definitive(self) -> bool:
        return self.status in Status.DEFINITIVE

    def __repr__(self) -> str:
        extra = f", cex_len={self.counterexample.length}" if self.counterexample else ""
        return (
            f"VerificationResult({self.status}, engine={self.engine!r}, "
            f"property={self.property_name!r}, {self.runtime:.3f}s{extra})"
        )


class Budget:
    """Wall-clock budget shared by an engine run.

    Engines poll :meth:`expired` in their outer loops and pass the deadline to
    the SAT layer, which aborts long-running solver calls.  This reproduces
    the per-benchmark resource limit of the paper's experiments (5 h there,
    seconds-scale here).
    """

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self.start = time.monotonic()

    @property
    def deadline(self) -> Optional[float]:
        if self.seconds is None:
            return None
        return self.start + self.seconds

    def elapsed(self) -> float:
        return time.monotonic() - self.start

    def expired(self) -> bool:
        return self.seconds is not None and self.elapsed() >= self.seconds

    def remaining(self) -> Optional[float]:
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())
