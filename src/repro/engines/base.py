"""The unified engine API.

Every verification technique of the reproduction — the eight engines the
paper compares — implements the same contract, :class:`Engine`:

* one constructor shape ``Engine(system, **options)`` where the options are
  the engine's declared keyword parameters,
* one entry point ``verify(property_name, timeout) ->``
  :class:`repro.engines.result.VerificationResult`,
* declared :class:`EngineCapabilities` (can it *prove* safety, can it
  *refute* with a counterexample, which design representations does it
  accept) so that drivers — the registry, the ``repro-verify`` CLI and the
  process-based portfolio of :mod:`repro.engines.portfolio` — can select and
  combine engines without knowing their internals.

This mirrors the architecture of portfolio verifiers such as CPAchecker,
where many analyses sit behind one algorithm interface and a driver races or
sequences them.
"""

from __future__ import annotations

import functools
import inspect
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engines.result import VerificationResult
from repro.faults import injection as _fault_injection
from repro.netlist import TransitionSystem
from repro.obs import telemetry as _telemetry


class EngineOptionError(ValueError):
    """Raised when an engine is instantiated with options it does not accept."""


def _run_verify(self, inner, property_name, timeout):
    """The fault-injection half of the verify wrapper (plan installed)."""
    _fault_injection.on_engine_start(self, property_name)
    try:
        result = inner(self, property_name, timeout)
    finally:
        _fault_injection.on_engine_finish()
    forged = _fault_injection.maybe_forge(self, property_name, result)
    return forged if forged is not None else result


def _instrument_verify(inner):
    """Wrap a concrete ``verify`` with fault-injection and telemetry.

    With no fault plan installed and telemetry off (the production default)
    the wrapper is two global reads, a ``process_time`` delta and a tail
    call.  Under a fault plan it fires start-of-verify faults (slow-start,
    crash, SIGKILL, solver wedge) before the engine runs and may replace
    the result with a forged-certificate lie afterwards.  With telemetry on
    it times the run under an ``engine.verify`` span and attaches the
    counter deltas the run produced to ``result.telemetry``.

    The CPU-time delta is taken unconditionally: engines time their own
    wall clocks per site, but ``VerificationResult.cpu_time`` is sourced
    here so ladder CPU accounting needs no parallel timers.
    """

    @functools.wraps(inner)
    def verify(self, property_name=None, timeout=None):
        faulted = _fault_injection.current() is not None
        recorder = _telemetry.get_recorder()
        cpu0 = time.process_time()
        if recorder is None:
            if faulted:
                result = _run_verify(self, inner, property_name, timeout)
            else:
                result = inner(self, property_name, timeout)
            if isinstance(result, VerificationResult) and not result.cpu_time:
                result.cpu_time = time.process_time() - cpu0
            return result

        counters_before = dict(recorder.counters)
        with _telemetry.span(
            "engine.verify",
            engine=self.name,
            design=getattr(self.system, "name", "?"),
            property=property_name or "",
        ) as verify_span:
            if faulted:
                result = _run_verify(self, inner, property_name, timeout)
            else:
                result = inner(self, property_name, timeout)
            if isinstance(result, VerificationResult):
                if not result.cpu_time:
                    result.cpu_time = time.process_time() - cpu0
                verify_span.set_outcome(result.status)
                deltas = {
                    name: value - counters_before.get(name, 0)
                    for name, value in recorder.counters.items()
                    if value != counters_before.get(name, 0)
                }
                telemetry = dict(result.telemetry or {})
                telemetry["counters"] = deltas
                result.telemetry = telemetry
        return result

    verify._fault_instrumented = True
    return verify


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine can conclude and on which design representations.

    ``can_prove``/``can_refute`` describe the *definitive* answers the engine
    is able to return (``SAFE`` respectively ``UNSAFE``); every engine may
    additionally return ``UNKNOWN``/``TIMEOUT``.  ``representations`` lists
    the frame encodings the engine supports (``"word"`` and/or ``"bit"``,
    see :class:`repro.engines.encoding.FrameEncoder`).  ``complete`` marks
    engines that terminate with a definitive answer on every finite-state
    design given enough resources.

    ``cost`` is the engine's scheduling tier: ``"cheap"`` engines (bounded
    refuters, abstract interpretation) answer or give up within a small
    budget, ``"medium"`` engines (k-induction-family provers) usually settle
    within a moderate one, ``"heavy"`` engines (fixpoint provers) may need
    the full budget.  The budget-ladder scheduler of
    :mod:`repro.engines.portfolio` maps tiers onto rungs: cheap engines run
    first at a small budget and the ladder escalates tier by tier.
    """

    COST_TIERS = ("cheap", "medium", "heavy")

    can_prove: bool
    can_refute: bool
    representations: Tuple[str, ...] = ("word",)
    complete: bool = False
    #: scheduling tier used by the budget ladder ("cheap"/"medium"/"heavy")
    cost: str = "heavy"

    @property
    def cost_rank(self) -> int:
        """The ladder rung index of the engine's cost tier."""
        return self.COST_TIERS.index(self.cost)

    def describe(self) -> str:
        """Short human-readable capability tag, e.g. ``prove+refute [word,bit]``."""
        verbs = [v for v, ok in (("prove", self.can_prove), ("refute", self.can_refute)) if ok]
        return f"{'+'.join(verbs) or 'none'} [{','.join(self.representations)}]"


class Engine(ABC):
    """Abstract base class of all verification engines.

    Subclasses must set the class attributes :attr:`name` (the canonical
    engine name used by the registry) and :attr:`capabilities`, accept the
    design as the first positional constructor argument, and implement
    :meth:`verify`.
    """

    #: canonical engine name (registry key, ``VerificationResult.engine``)
    name: str = ""
    #: what the engine can conclude; see :class:`EngineCapabilities`
    capabilities: EngineCapabilities = EngineCapabilities(False, False)

    def __init__(self, system: TransitionSystem) -> None:
        self.system = system

    def __init_subclass__(cls, **kwargs) -> None:
        """Instrument every concrete ``verify`` with fault-injection + telemetry.

        Threading the injection through the base class means *all* engines —
        registry-made, hand-constructed, future ones — are chaos-testable
        without per-engine changes, and the portfolio/batch/cache layers
        above see injected faults only through the ordinary result taxonomy.
        """
        super().__init_subclass__(**kwargs)
        verify = cls.__dict__.get("verify")
        if verify is not None and not getattr(verify, "_fault_instrumented", False):
            cls.verify = _instrument_verify(verify)

    # ------------------------------------------------------------------
    @abstractmethod
    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        """Verify ``property_name`` (default: the design's first property).

        ``timeout`` is a wall-clock budget in seconds; engines return a
        ``TIMEOUT`` result instead of raising when it expires.
        """

    # ------------------------------------------------------------------
    # uniform option handling
    # ------------------------------------------------------------------
    @classmethod
    def option_names(cls) -> Tuple[str, ...]:
        """The keyword options the engine constructor accepts (besides the design)."""
        parameters = inspect.signature(cls.__init__).parameters
        names = []
        for index, (name, parameter) in enumerate(parameters.items()):
            if index < 2:  # self, system
                continue
            if parameter.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                names.append(name)
        return tuple(names)

    @classmethod
    def validate_options(
        cls, options: Dict[str, object], ignore_unknown: bool = False
    ) -> Dict[str, object]:
        """Return the subset of ``options`` the engine accepts.

        Unknown options raise :class:`EngineOptionError` naming the engine and
        its supported options — unless ``ignore_unknown`` is set, in which
        case they are silently dropped (the *routing* mode used by drivers
        that hand one common option bag to heterogeneous engines).  A
        ``representation`` outside the engine's declared capabilities is
        always an error.
        """
        supported = cls.option_names()
        accepted: Dict[str, object] = {}
        unknown = []
        for key, value in options.items():
            if key in supported:
                accepted[key] = value
            else:
                unknown.append(key)
        if unknown and not ignore_unknown:
            raise EngineOptionError(
                f"engine {cls.name!r} does not accept option(s) "
                f"{', '.join(repr(u) for u in sorted(unknown))}; "
                f"supported: {', '.join(supported) or '(none)'}"
            )
        representation = accepted.get("representation")
        if representation is not None and representation not in cls.capabilities.representations:
            raise EngineOptionError(
                f"engine {cls.name!r} does not support representation "
                f"{representation!r}; supported: "
                f"{', '.join(cls.capabilities.representations)}"
            )
        return accepted

    # ------------------------------------------------------------------
    def default_property(self, property_name: Optional[str] = None) -> str:
        """Resolve ``property_name``, defaulting to the design's first property."""
        if property_name is not None:
            return property_name
        if not self.system.properties:
            raise ValueError(f"design {self.system.name!r} declares no properties")
        return self.system.properties[0].name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.system.name!r})"
