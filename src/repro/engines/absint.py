"""Abstract interpretation with intervals (the Astrée stand-in).

The engine computes, per register, an unsigned interval enclosing all
reachable values: starting from the (singleton) initial state it repeatedly
evaluates the next-state functions in interval arithmetic, joins the result
with the current intervals and applies widening after a few iterations.
Inputs are unconstrained (top).  If the safety property evaluates to
definitely-true under the resulting invariant the design is proved safe;
otherwise the result is ``UNKNOWN`` — a potential false alarm, which is
exactly the behaviour the paper reports for Astrée on the software netlists
("it generates many false alarms for safe benchmarks" due to the numerical
abstraction losing bit-precise information).

The engine can also export its fixpoint as word-level invariant expressions,
which the kIkI combination (:mod:`repro.engines.kiki`) uses to strengthen
k-induction — mirroring how 2LS combines k-induction with k-invariants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.certs import InductiveCertificate
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import flattened_cached
from repro.engines.result import Budget, Status, VerificationResult
from repro.exprs import TRUE, Expr, bv_const, bv_var, bool_and
from repro.exprs.nodes import Const, Op, Var, mask, to_signed
from repro.netlist import TransitionSystem


@dataclass(frozen=True)
class Interval:
    """An unsigned interval ``[lo, hi]`` over ``width`` bits."""

    lo: int
    hi: int
    width: int

    @staticmethod
    def top(width: int) -> "Interval":
        return Interval(0, mask(width), width)

    @staticmethod
    def constant(value: int, width: int) -> "Interval":
        value &= mask(width)
        return Interval(value, value, width)

    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == mask(self.width)

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi), self.width)

    def widen(self, other: "Interval") -> "Interval":
        """Classical interval widening: unstable bounds jump to the type bounds."""
        lo = self.lo if other.lo >= self.lo else 0
        hi = self.hi if other.hi <= self.hi else mask(self.width)
        return Interval(lo, hi, self.width)

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]#{self.width}"


class IntervalEvaluator:
    """Evaluates word-level expressions in interval arithmetic."""

    def __init__(self, env: Dict[str, Interval]) -> None:
        self.env = env

    def eval(self, expr: Expr) -> Interval:
        if isinstance(expr, Const):
            return Interval.constant(expr.value, expr.width)
        if isinstance(expr, Var):
            found = self.env.get(expr.name)
            if found is None:
                return Interval.top(expr.width)
            return found
        assert isinstance(expr, Op)
        handler = getattr(self, f"_eval_{expr.op}", None)
        if handler is None:
            return Interval.top(expr.width)
        return handler(expr)

    # -- helpers -----------------------------------------------------------
    def _args(self, expr: Op) -> List[Interval]:
        return [self.eval(arg) for arg in expr.args]

    def _bool(self, value: Optional[bool]) -> Interval:
        if value is None:
            return Interval(0, 1, 1)
        return Interval.constant(int(value), 1)

    # -- arithmetic --------------------------------------------------------
    def _eval_add(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if a.hi + b.hi <= mask(expr.width):
            return Interval(a.lo + b.lo, a.hi + b.hi, expr.width)
        return Interval.top(expr.width)

    def _eval_sub(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if a.lo - b.hi >= 0:
            return Interval(a.lo - b.hi, a.hi - b.lo, expr.width)
        return Interval.top(expr.width)

    def _eval_mul(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if a.hi * b.hi <= mask(expr.width):
            return Interval(a.lo * b.lo, a.hi * b.hi, expr.width)
        return Interval.top(expr.width)

    def _eval_udiv(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if b.lo > 0:
            return Interval(a.lo // b.hi, a.hi // b.lo, expr.width)
        return Interval.top(expr.width)

    def _eval_urem(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if b.lo > 0:
            return Interval(0, min(a.hi, b.hi - 1), expr.width)
        return Interval(0, a.hi, expr.width)

    def _eval_neg(self, expr: Op) -> Interval:
        (a,) = self._args(expr)
        if a.is_constant:
            return Interval.constant(-a.lo, expr.width)
        return Interval.top(expr.width)

    # -- bitwise -----------------------------------------------------------
    def _eval_and(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if a.is_constant and b.is_constant:
            return Interval.constant(a.lo & b.lo, expr.width)
        return Interval(0, min(a.hi, b.hi), expr.width)

    def _eval_or(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if a.is_constant and b.is_constant:
            return Interval.constant(a.lo | b.lo, expr.width)
        upper_bits = max(a.hi, b.hi).bit_length()
        return Interval(max(a.lo, b.lo), min(mask(expr.width), (1 << upper_bits) - 1), expr.width)

    def _eval_xor(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if a.is_constant and b.is_constant:
            return Interval.constant(a.lo ^ b.lo, expr.width)
        upper_bits = max(a.hi, b.hi).bit_length()
        return Interval(0, min(mask(expr.width), (1 << upper_bits) - 1), expr.width)

    def _eval_not(self, expr: Op) -> Interval:
        (a,) = self._args(expr)
        return Interval(mask(expr.width) - a.hi, mask(expr.width) - a.lo, expr.width)

    def _eval_xnor(self, expr: Op) -> Interval:
        return Interval.top(expr.width)

    def _eval_nand(self, expr: Op) -> Interval:
        return Interval.top(expr.width)

    def _eval_nor(self, expr: Op) -> Interval:
        return Interval.top(expr.width)

    # -- shifts -----------------------------------------------------------
    def _eval_shl(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if b.is_constant:
            shift = b.lo
            if shift >= expr.width:
                return Interval.constant(0, expr.width)
            if a.hi << shift <= mask(expr.width):
                return Interval(a.lo << shift, a.hi << shift, expr.width)
        return Interval.top(expr.width)

    def _eval_lshr(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if b.is_constant:
            shift = b.lo
            if shift >= expr.width:
                return Interval.constant(0, expr.width)
            return Interval(a.lo >> shift, a.hi >> shift, expr.width)
        return Interval(0, a.hi, expr.width)

    def _eval_ashr(self, expr: Op) -> Interval:
        return Interval.top(expr.width)

    # -- comparisons --------------------------------------------------------
    def _eval_eq(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if a.is_constant and b.is_constant:
            return self._bool(a.lo == b.lo)
        if a.hi < b.lo or b.hi < a.lo:
            return self._bool(False)
        return self._bool(None)

    def _eval_ne(self, expr: Op) -> Interval:
        inner = self._eval_eq(expr)
        if inner.is_constant:
            return self._bool(not bool(inner.lo))
        return self._bool(None)

    def _eval_ult(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if a.hi < b.lo:
            return self._bool(True)
        if a.lo >= b.hi:
            return self._bool(False)
        return self._bool(None)

    def _eval_ule(self, expr: Op) -> Interval:
        a, b = self._args(expr)
        if a.hi <= b.lo:
            return self._bool(True)
        if a.lo > b.hi:
            return self._bool(False)
        return self._bool(None)

    def _eval_ugt(self, expr: Op) -> Interval:
        inner = self._eval_ule(expr)
        if inner.is_constant:
            return self._bool(not bool(inner.lo))
        return self._bool(None)

    def _eval_uge(self, expr: Op) -> Interval:
        inner = self._eval_ult(expr)
        if inner.is_constant:
            return self._bool(not bool(inner.lo))
        return self._bool(None)

    def _eval_slt(self, expr: Op) -> Interval:
        return self._bool(None)

    def _eval_sle(self, expr: Op) -> Interval:
        return self._bool(None)

    def _eval_sgt(self, expr: Op) -> Interval:
        return self._bool(None)

    def _eval_sge(self, expr: Op) -> Interval:
        return self._bool(None)

    # -- reductions ---------------------------------------------------------
    def _eval_redand(self, expr: Op) -> Interval:
        (a,) = self._args(expr)
        operand_width = expr.args[0].width
        if a.is_constant:
            return self._bool(a.lo == mask(operand_width))
        if a.hi < mask(operand_width):
            return self._bool(False)
        return self._bool(None)

    def _eval_redor(self, expr: Op) -> Interval:
        (a,) = self._args(expr)
        if a.is_constant:
            return self._bool(a.lo != 0)
        if a.lo > 0:
            return self._bool(True)
        return self._bool(None)

    def _eval_redxor(self, expr: Op) -> Interval:
        (a,) = self._args(expr)
        if a.is_constant:
            return self._bool(bool(bin(a.lo).count("1") & 1))
        return self._bool(None)

    # -- structural -----------------------------------------------------------
    def _eval_concat(self, expr: Op) -> Interval:
        intervals = self._args(expr)
        if all(i.is_constant for i in intervals):
            value = 0
            for interval, arg in zip(intervals, expr.args):
                value = (value << arg.width) | interval.lo
            return Interval.constant(value, expr.width)
        return Interval.top(expr.width)

    def _eval_extract(self, expr: Op) -> Interval:
        hi, lo = expr.params
        (a,) = self._args(expr)
        if a.is_constant:
            return Interval.constant((a.lo >> lo) & mask(hi - lo + 1), expr.width)
        if lo == 0 and a.hi <= mask(hi - lo + 1):
            return Interval(a.lo, a.hi, expr.width)
        return Interval.top(expr.width)

    def _eval_zext(self, expr: Op) -> Interval:
        (a,) = self._args(expr)
        return Interval(a.lo, a.hi, expr.width)

    def _eval_sext(self, expr: Op) -> Interval:
        (a,) = self._args(expr)
        inner_width = expr.args[0].width
        if a.hi < (1 << (inner_width - 1)):
            return Interval(a.lo, a.hi, expr.width)
        return Interval.top(expr.width)

    def _eval_ite(self, expr: Op) -> Interval:
        condition = self.eval(expr.args[0])
        then_interval = self.eval(expr.args[1])
        else_interval = self.eval(expr.args[2])
        if condition.is_constant:
            return then_interval if condition.lo else else_interval
        return then_interval.join(else_interval)


class AbstractInterpretationEngine(Engine):
    """Interval analysis of the software-netlist."""

    name = "abstract-interpretation"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=False, representations=("word",), cost="cheap"
    )

    def __init__(
        self,
        system: TransitionSystem,
        widen_after: int = 8,
        max_iterations: int = 200,
    ) -> None:
        super().__init__(system)
        # shared memoized flatten: portfolio workers forked after the parent
        # pre-warm inherit it copy-on-write instead of re-flattening
        self.flat = flattened_cached(system)
        self.widen_after = widen_after
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    def compute_invariants(self, budget: Optional[Budget] = None) -> Dict[str, Interval]:
        """Run the fixpoint iteration; returns the per-register intervals."""
        from repro.exprs import evaluate

        intervals: Dict[str, Interval] = {
            name: Interval.constant(evaluate(self.flat.init[name], {}), width)
            for name, width in self.flat.state_vars.items()
        }
        for iteration in range(self.max_iterations):
            if budget is not None and budget.expired():
                break
            env: Dict[str, Interval] = dict(intervals)
            for name, width in self.flat.inputs.items():
                env[name] = Interval.top(width)
            evaluator = IntervalEvaluator(env)
            new_intervals: Dict[str, Interval] = {}
            changed = False
            for name, next_expr in self.flat.next.items():
                post = evaluator.eval(next_expr)
                joined = intervals[name].join(post)
                if iteration >= self.widen_after:
                    joined = intervals[name].widen(joined)
                if joined != intervals[name]:
                    changed = True
                new_intervals[name] = joined
            intervals = new_intervals
            if not changed:
                break
        return intervals

    def invariant_exprs(self, intervals: Dict[str, Interval]) -> List[Expr]:
        """Turn non-trivial intervals into word-level invariant expressions."""
        exprs: List[Expr] = []
        for name, interval in intervals.items():
            if interval.is_top:
                continue
            var = bv_var(name, interval.width)
            if interval.lo > 0:
                exprs.append(var.uge(bv_const(interval.lo, interval.width)))
            if interval.hi < mask(interval.width):
                exprs.append(var.ule(bv_const(interval.hi, interval.width)))
        return exprs

    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()
        intervals = self.compute_invariants(budget)
        if budget.expired():
            return VerificationResult(
                Status.TIMEOUT, self.name, property_name, runtime=budget.elapsed()
            )
        env: Dict[str, Interval] = dict(intervals)
        for name, width in self.flat.inputs.items():
            env[name] = Interval.top(width)
        prop = self.flat.property_by_name(property_name)
        verdict = IntervalEvaluator(env).eval(prop.expr)
        runtime = time.monotonic() - start
        detail = {
            "intervals": {name: (iv.lo, iv.hi) for name, iv in intervals.items()},
        }
        if verdict.is_constant and verdict.lo == 1:
            # the interval box is inductive (it is the fixpoint of the
            # interval-arithmetic post) and strong enough to imply P
            constraints = self.invariant_exprs(intervals)
            invariant = bool_and(*constraints) if constraints else TRUE
            return VerificationResult(
                Status.SAFE,
                self.name,
                property_name,
                runtime=runtime,
                detail=detail,
                reason="interval invariant implies the property",
                certificate=InductiveCertificate(property_name, self.name, invariant),
            )
        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=runtime,
            detail=detail,
            reason="interval abstraction too imprecise (possible false alarm)",
        )
