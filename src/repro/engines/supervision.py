"""Supervised worker execution: deadlines, kill escalation, retries, fallback.

The portfolio and batch drivers both delegate their process hygiene to a
:class:`WorkerSupervisor`:

* **spawn health** — process launches go through :meth:`WorkerSupervisor.spawn`,
  which counts consecutive failures; after :data:`~WorkerSupervisor.UNHEALTHY_AFTER`
  of them the pool is declared unhealthy and the drivers degrade to
  in-process sequential execution, so a query always gets an answer;
* **stop escalation** — :meth:`WorkerSupervisor.stop` terminates, waits a
  grace period, then SIGKILLs and reaps, so a SIGTERM-ignoring worker can
  never leak as a zombie past the driver;
* **supervised retries** — :meth:`WorkerSupervisor.run_map` runs a batch of
  payloads with a per-attempt deadline and retries ``crashed``/``timed-out``
  attempts with exponential backoff under the unit's remaining budget.

Attempt states are part of the public outcome taxonomy: ``done``,
``crashed`` (process died without reporting), ``timed-out`` (killed at the
attempt deadline), ``degraded`` (ran in-process after the pool went
unhealthy) — a fault is never a silent skip.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from typing import Callable, Dict, List, Optional, Sequence

from repro.faults import injection as _fault_injection
from repro.obs import telemetry as _telemetry

#: attempt/unit states of the supervision taxonomy
DONE = "done"
CRASHED = "crashed"
TIMED_OUT = "timed-out"
DEGRADED = "degraded"
CANCELLED = "cancelled"


# ---------------------------------------------------------------------------
# progress reporting — the worker-side half of streamed liveness
# ---------------------------------------------------------------------------

#: thread-local progress sink: inside a worker process it forwards over the
#: attempt's result pipe; in degraded in-process execution it forwards to the
#: supervisor's event callback directly.  Thread-local because the serve
#: layer runs several degraded units on different threads of one process.
_PROGRESS = threading.local()

#: floor between forwarded progress reports, so a tight bound loop cannot
#: flood the result pipe
PROGRESS_MIN_INTERVAL_S = 0.05


def set_progress_sink(sink: Optional[Callable[[dict], None]]) -> None:
    """Install (or clear) this thread's progress sink."""
    _PROGRESS.sink = sink
    _PROGRESS.last = 0.0


def report_progress(**fields) -> None:
    """Report one unit of forward progress (ladder rung, bound reached).

    Called from engine/ladder code running under supervision.  A no-op
    without a sink (one thread-local read), so unsupervised execution pays
    nothing.  Reports are rate-limited to one per
    :data:`PROGRESS_MIN_INTERVAL_S` unless marked ``milestone=True`` —
    rung landings are milestones, per-bound ticks are not.
    """
    sink = getattr(_PROGRESS, "sink", None)
    if sink is None:
        return
    now = time.monotonic()
    if not fields.pop("milestone", False):
        if now - getattr(_PROGRESS, "last", 0.0) < PROGRESS_MIN_INTERVAL_S:
            return
    _PROGRESS.last = now
    try:
        sink(dict(fields))
    except Exception:
        # a dead pipe must never crash the computation it reports on
        set_progress_sink(None)


@dataclass(frozen=True)
class RetryPolicy:
    """How supervised attempts are retried.

    ``max_attempts`` counts all attempts of a unit (1 disables retries).
    The backoff before retry ``n`` (1-based) is
    ``backoff_s * backoff_factor ** (n - 1)``; a retry launches only while
    the unit has more than ``min_budget_s`` of its wall budget left — the
    "remaining rung budget" rule: a unit whose first attempt burned the
    whole budget timing out is not retried, one whose worker was killed
    early is.
    """

    max_attempts: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    min_budget_s: float = 0.05
    retry_states: Sequence[str] = (CRASHED, TIMED_OUT)

    def backoff(self, attempt: int) -> float:
        return self.backoff_s * (self.backoff_factor ** max(0, attempt - 1))

    def should_retry(
        self, state: str, attempt: int, remaining: Optional[float]
    ) -> bool:
        if state not in self.retry_states:
            return False
        if attempt + 1 >= self.max_attempts:
            return False
        return remaining is None or remaining > self.min_budget_s


@dataclass
class SupervisedOutcome:
    """Final state of one supervised unit plus its full attempt log."""

    state: str = CRASHED
    value: object = None
    attempts: List[Dict[str, object]] = field(default_factory=list)
    degraded: bool = False
    reason: str = ""

    @property
    def retried(self) -> bool:
        return len(self.attempts) > 1

    def to_json(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "attempts": self.attempts,
            "retried": self.retried,
            "degraded": self.degraded,
            "reason": self.reason,
        }


def _span_progress_hook(name: str, attrs: dict) -> None:
    """Telemetry span hook: engine bound-loop spans double as progress.

    The PR-8 span stream already marks every unit of search progress
    (``engine.bmc.bound``, ``engine.kinduction.k``, …); forwarding those
    span starts through :func:`report_progress` gives liveness for free
    wherever tracing is on, with no per-engine plumbing.
    """
    if not name.startswith("engine."):
        return
    report_progress(
        phase="bound",
        span=name,
        **{
            key: value
            for key, value in attrs.items()
            if isinstance(value, (int, float, str)) and key != "span"
        },
    )


def _run_attempt(worker, payload, attempt, conn) -> None:
    """Child-process entry: run one attempt, send the outcome back.

    Each attempt reports over its *own* pipe — a shared queue's write lock
    dies with whichever worker the supervisor happens to kill mid-send,
    wedging every other worker; per-attempt pipes make kills free of
    cross-worker collateral.

    When the parent was recording telemetry, the forked child swaps in a
    fresh recorder (:func:`repro.obs.telemetry.child_begin`) and ships its
    exported span subtree as the third tuple element; the parent stitches
    it under the attempt's span.  A killed worker ships nothing — the
    parent-side attempt span still records the kill, so the assembled
    trace stays coherent.
    """
    # a fork child inherits the parent's Python signal handlers *and* its
    # asyncio wakeup fd; without a reset, the SIGTERM this supervisor sends
    # to stop the child would be written into the parent's shared wakeup
    # pipe and fire the parent's own SIGTERM callback (observed as a serve
    # driver draining itself every time it stopped a worker)
    signal.set_wakeup_fd(-1)
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, signal.SIG_DFL)
    _fault_injection.set_attempt(attempt)
    _telemetry.child_begin()

    # stream liveness: explicit report_progress() calls plus every engine
    # bound-loop span start are forwarded over the result pipe as
    # ("progress", doc) messages interleaved before the final triple
    def _pipe_progress(doc: dict) -> None:
        conn.send(("progress", doc))

    set_progress_sink(_pipe_progress)
    _telemetry.set_span_hook(_span_progress_hook)
    try:
        with _telemetry.span("worker.attempt", attempt=attempt):
            value = worker(payload)
        status = "ok"
    except BaseException as error:  # noqa: BLE001 - reported, never silent
        value = f"{type(error).__name__}: {error}"
        status = "error"
    finally:
        _telemetry.set_span_hook(None)
        set_progress_sink(None)
    trace = _telemetry.child_export()
    try:
        conn.send((status, value, trace))
    except Exception:  # pragma: no cover - unpicklable worker result
        try:
            conn.send(("error", "worker result not picklable", trace))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Slot:
    payload: object
    budget: Optional[float]  # wall budget across all attempts of the unit
    attempt: int = 0
    started: Optional[float] = None  # first launch (budget anchor)
    launched: Optional[float] = None  # current attempt launch
    deadline: Optional[float] = None  # current attempt kill deadline
    not_before: float = 0.0  # backoff gate for the next launch
    dead_since: Optional[float] = None  # process found dead, result may race
    conn: Optional[object] = None  # parent end of the attempt's result pipe

    def close_conn(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.conn = None

    def remaining(self, now: float) -> Optional[float]:
        if self.budget is None:
            return None
        anchor = self.started if self.started is not None else now
        return self.budget - (now - anchor)


class WorkerSupervisor:
    """Process supervision shared by the portfolio, batch and serve drivers."""

    #: serializes process launches across threads — the serve layer runs one
    #: supervisor per request thread, and concurrent forks from a threaded
    #: parent are where fork-time lock snapshots bite
    _SPAWN_LOCK = threading.Lock()

    #: consecutive spawn failures after which the pool is unhealthy
    UNHEALTHY_AFTER = 3
    #: grace between SIGTERM and SIGKILL when stopping a worker
    GRACE_SECONDS = 2.0
    #: how long a dead worker's in-flight result may still arrive
    REAP_GRACE_SECONDS = 0.25

    def __init__(
        self,
        context,
        retry: Optional[RetryPolicy] = None,
        grace: Optional[float] = None,
    ) -> None:
        self.context = context
        self.retry = retry if retry is not None else RetryPolicy()
        self.grace = self.GRACE_SECONDS if grace is None else grace
        #: consecutive spawn failures (reset by any success)
        self.spawn_failures = 0
        self.spawned = 0
        self.kills = 0
        self.retries_launched = 0
        self.last_spawn_error = ""

    # ------------------------------------------------------------------
    @property
    def pool_healthy(self) -> bool:
        return self.spawn_failures < self.UNHEALTHY_AFTER

    def spawn(self, target, args=(), daemon: bool = True):
        """Start one worker process; ``None`` on failure (health-counted)."""
        try:
            if _fault_injection.fail_spawn(f"spawn:{self.spawned}:{self.spawn_failures}"):
                raise OSError("injected spawn failure")
            process = self.context.Process(target=target, args=args, daemon=daemon)
            with self._SPAWN_LOCK:
                process.start()
        except OSError as error:
            self.spawn_failures += 1
            self.last_spawn_error = f"{type(error).__name__}: {error}"
            _telemetry.counter("supervisor.spawn_failures")
            return None
        self.spawn_failures = 0
        self.spawned += 1
        _telemetry.counter("supervisor.spawns")
        return process

    def stop(self, process, grace: Optional[float] = None) -> None:
        """Terminate → grace → SIGKILL → join: no zombie survives the driver."""
        if process is None:
            return
        grace = self.grace if grace is None else grace
        if process.is_alive():
            process.terminate()
            process.join(grace)
            if process.is_alive():
                self.kills += 1
                _telemetry.counter("supervisor.kills")
                kill = getattr(process, "kill", process.terminate)
                try:
                    kill()
                except Exception:  # pragma: no cover - already exiting
                    pass
        process.join()

    # ------------------------------------------------------------------
    def run_map(
        self,
        payloads: Sequence[object],
        worker: Callable[[object], object],
        jobs: int = 1,
        timeout: Optional[float] = None,
        attempt_timeout: Optional[float] = None,
        rebudget: Optional[Callable[[object, Optional[float]], object]] = None,
        accept: Optional[Callable[[object, object], Optional[str]]] = None,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        poll_interval: float = 0.05,
        kill_grace: float = 2.0,
        abort: Optional[threading.Event] = None,
        stall: Optional[threading.Event] = None,
    ) -> List[SupervisedOutcome]:
        """Run every payload through ``worker`` under supervision.

        Each unit gets a wall budget of ``timeout`` seconds across all its
        attempts; each attempt additionally runs at most ``attempt_timeout``
        seconds.  ``rebudget(payload, allowance)`` lets the caller thread
        the attempt's allowance into the payload (so the worker's engines
        arm their cooperative deadlines); the external kill at
        ``allowance + kill_grace`` is only the backstop for wedged workers.
        ``accept(payload, value)`` vets a worker's answer semantically:
        ``None`` accepts it, a reason string treats the attempt as
        ``timed-out`` (retried under the remaining budget; the rejected
        value is kept as the unit's fallback answer if every retry fails).
        If spawning goes unhealthy, the remaining units run in-process
        (``degraded`` state) so the map always completes.

        ``abort`` (a :class:`threading.Event`, settable from another thread)
        cancels the whole map cooperatively: at the next poll tick every
        active worker is kill-escalated and every unfinished unit is
        finalized in the ``cancelled`` state.  This is how the serve layer
        tears a computation down when its last waiting client disconnects —
        the cancellation is an explicit outcome, never a leaked process.

        ``stall`` (another settable event) declares the *current attempts*
        wedged without cancelling the map: every active worker is
        kill-escalated and its attempt retired as ``timed-out`` (so the
        normal retry budget applies), then the event is cleared.  The serve
        layer sets it when a request's streamed progress goes silent past
        its liveness window.

        Workers stream ``("progress", doc)`` messages over their result
        pipes (see :func:`report_progress`); each is surfaced as a
        ``progress`` event through ``on_event`` with the unit and attempt
        attached.
        """

        def emit(event: str, **fields) -> None:
            if on_event is not None:
                on_event({"event": event, **fields})

        slots = [_Slot(payload, timeout) for payload in payloads]
        outcomes = [SupervisedOutcome() for _ in slots]
        finished = [False] * len(slots)
        pending = deque(range(len(slots)))
        active: Dict[int, object] = {}
        degraded = False

        # parent-side trace assembly: one explicit-parent span per unit, one
        # per attempt (attempts of different units overlap, so the thread
        # stack cannot hold them); a worker's exported subtree is stitched
        # under its attempt span, and kills/timeouts — where the child ships
        # nothing — are recorded by the parent-side span alone
        recorder = _telemetry.get_recorder()
        map_parent = recorder.current_span() if recorder is not None else None
        unit_spans: Dict[int, object] = {}
        attempt_spans: Dict[int, object] = {}

        def unit_span(index: int):
            if recorder is None:
                return None
            span = unit_spans.get(index)
            if span is None:
                span = recorder.start_span(
                    "supervisor.unit", parent=map_parent, unit=index
                )
                unit_spans[index] = span
            return span

        def begin_attempt_span(index: int, attempt: int, pid=None) -> None:
            if recorder is None:
                return
            attempt_spans[index] = recorder.start_span(
                "supervisor.attempt",
                parent=unit_span(index),
                unit=index,
                attempt=attempt,
                **({"worker_pid": pid} if pid is not None else {}),
            )

        def end_attempt_span(index: int, state: str, trace=None) -> None:
            _telemetry.counter(f"supervisor.attempts.{state}")
            if recorder is None:
                return
            span = attempt_spans.pop(index, None)
            if span is None:
                return
            if trace:
                recorder.attach(trace, span)
            span.finish(outcome=state)

        def finalize(index: int, state: str, value=None, reason: str = "") -> None:
            outcomes[index].state = state
            outcomes[index].value = value
            outcomes[index].reason = reason
            finished[index] = True
            span = unit_spans.pop(index, None)
            if span is not None:
                span.finish(outcome=state)

        def record_attempt(index: int, state: str, reason: str = "") -> None:
            slot = slots[index]
            now = time.monotonic()
            runtime = now - (slot.launched if slot.launched is not None else now)
            outcomes[index].attempts.append(
                {
                    "attempt": slot.attempt,
                    "state": state,
                    "runtime_s": round(runtime, 6),
                    **({"reason": reason} if reason else {}),
                }
            )

        def retire_or_retry(index: int, state: str, reason: str = "") -> None:
            """One attempt failed: retry under the remaining budget or retire."""
            slot = slots[index]
            record_attempt(index, state, reason)
            remaining = slot.remaining(time.monotonic())
            if self.retry.should_retry(state, slot.attempt, remaining):
                slot.attempt += 1
                slot.not_before = time.monotonic() + self.retry.backoff(slot.attempt)
                slot.dead_since = None
                self.retries_launched += 1
                _telemetry.counter("supervisor.retries")
                pending.append(index)
                emit("retry", unit=index, attempt=slot.attempt, state=state)
            else:
                # a semantically rejected answer stashed on the outcome
                # survives as the unit's fallback value
                finalize(index, state, value=outcomes[index].value, reason=reason)
                emit("gave-up", unit=index, state=state, attempts=slot.attempt + 1)

        def run_degraded(index: int) -> None:
            """In-process fallback: the unit still gets an answer."""
            slot = slots[index]
            slot.launched = time.monotonic()
            if slot.started is None:
                slot.started = slot.launched
            allowance = slot.remaining(slot.launched)
            if attempt_timeout is not None:
                allowance = (
                    attempt_timeout
                    if allowance is None
                    else min(allowance, attempt_timeout)
                )
            payload = slot.payload if rebudget is None else rebudget(slot.payload, allowance)
            _fault_injection.set_attempt(slot.attempt)
            begin_attempt_span(index, slot.attempt)
            degraded_span = attempt_spans.get(index)
            set_progress_sink(
                lambda doc: emit(
                    "progress", unit=index, attempt=slot.attempt, **doc
                )
            )
            try:
                if recorder is not None and degraded_span is not None:
                    with recorder.under(degraded_span):
                        value = worker(payload)
                else:
                    value = worker(payload)
                record_attempt(index, DEGRADED)
                end_attempt_span(index, DEGRADED)
                finalize(index, DONE, value=value)
                outcomes[index].degraded = True
            except Exception as error:  # noqa: BLE001 - reported, never silent
                reason = f"{type(error).__name__}: {error}"
                record_attempt(index, CRASHED, reason)
                end_attempt_span(index, CRASHED)
                finalize(index, CRASHED, reason=reason)
                outcomes[index].degraded = True
            finally:
                set_progress_sink(None)
                _fault_injection.set_attempt(0)
            emit("degraded", unit=index, state=outcomes[index].state)

        while pending or active:
            if abort is not None and abort.is_set():
                # cooperative cancellation: kill the active attempts, close
                # every unfinished unit as ``cancelled``, and stop launching
                for index, process in list(active.items()):
                    active.pop(index)
                    slots[index].close_conn()
                    self.stop(process)
                    end_attempt_span(index, CANCELLED)
                    record_attempt(index, CANCELLED, "aborted by caller")
                for index in range(len(slots)):
                    if not finished[index]:
                        finalize(
                            index,
                            CANCELLED,
                            value=outcomes[index].value,
                            reason="aborted by caller",
                        )
                pending.clear()
                emit("aborted", units=len(slots))
                break
            if stall is not None and stall.is_set():
                # liveness window expired: the active attempts are wedged.
                # Kill them and retire as timed-out — retries (possibly on
                # another member, via the serve layer) stay available.
                stall.clear()
                stalled = list(active.items())
                for index, process in stalled:
                    active.pop(index)
                    slots[index].close_conn()
                    self.stop(process)
                    end_attempt_span(index, TIMED_OUT)
                    retire_or_retry(
                        index, TIMED_OUT, reason="liveness window expired without progress"
                    )
                if stalled:
                    _telemetry.counter("supervisor.stall_kills", len(stalled))
                    emit("stall-killed", units=[index for index, _ in stalled])
            now = time.monotonic()

            # launch what fits; degrade when the pool is unhealthy
            launched_any = False
            rotations = 0
            while pending and len(active) < jobs and not degraded:
                index = pending[0]
                slot = slots[index]
                if slot.not_before > now:
                    # backoff not elapsed: rotate so others can launch
                    pending.rotate(-1)
                    rotations += 1
                    if rotations >= len(pending):
                        break
                    continue
                pending.popleft()
                if slot.started is None:
                    slot.started = now
                remaining = slot.remaining(now)
                if (
                    slot.attempt > 0
                    and remaining is not None
                    and remaining <= self.retry.min_budget_s
                ):
                    # budget exhausted between backoff and launch
                    finalize(index, outcomes[index].attempts[-1]["state"])
                    continue
                allowance = remaining
                if attempt_timeout is not None:
                    allowance = (
                        attempt_timeout
                        if allowance is None
                        else min(allowance, attempt_timeout)
                    )
                payload = (
                    slot.payload if rebudget is None else rebudget(slot.payload, allowance)
                )
                recv_conn, send_conn = self.context.Pipe(duplex=False)
                process = self.spawn(
                    _run_attempt, (worker, payload, slot.attempt, send_conn)
                )
                send_conn.close()
                if process is None:
                    recv_conn.close()
                    pending.appendleft(index)
                    if not self.pool_healthy:
                        degraded = True
                        emit("pool-unhealthy", error=self.last_spawn_error)
                    break
                slot.conn = recv_conn
                slot.launched = time.monotonic()
                slot.deadline = (
                    None if allowance is None else slot.launched + allowance + kill_grace
                )
                slot.dead_since = None
                active[index] = process
                launched_any = True
                begin_attempt_span(index, slot.attempt, pid=process.pid)
                emit(
                    "attempt",
                    unit=index,
                    attempt=slot.attempt,
                    pid=process.pid,
                )

            if degraded and pending and len(active) == 0:
                # pool is gone: drain the queue in-process, sequentially
                while pending:
                    run_degraded(pending.popleft())
                continue

            if not active:
                if not pending:
                    break
                if not launched_any and not degraded:
                    time.sleep(min(poll_interval, 0.02))
                continue

            # drain results from the per-attempt pipes
            by_conn = {
                slots[index].conn: index
                for index in active
                if slots[index].conn is not None
            }
            ready = (
                _mp_connection.wait(list(by_conn), timeout=poll_interval)
                if by_conn
                else time.sleep(poll_interval)
            )
            for conn in ready or ():
                index = by_conn[conn]
                slot = slots[index]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # the worker died mid-send; the reaper below classifies it
                    slot.close_conn()
                    continue
                if message and message[0] == "progress":
                    # liveness tick: surface it and keep the pipe open — the
                    # worker is still running toward its final report
                    doc = message[1] if isinstance(message[1], dict) else {}
                    emit("progress", unit=index, attempt=slot.attempt, **doc)
                    continue
                slot.close_conn()
                # (status, value) pre-telemetry, (status, value, trace) now
                status, value = message[0], message[1]
                trace = message[2] if len(message) > 2 else None
                process = active.pop(index, None)
                if process is not None:
                    self.stop(process, grace=self.grace)
                if status == "ok":
                    rejection = (
                        accept(slot.payload, value) if accept is not None else None
                    )
                    if rejection is None:
                        record_attempt(index, DONE)
                        end_attempt_span(index, DONE, trace=trace)
                        finalize(index, DONE, value=value)
                        emit("done", unit=index, attempt=slot.attempt)
                    else:
                        outcomes[index].value = value
                        end_attempt_span(index, TIMED_OUT, trace=trace)
                        retire_or_retry(index, TIMED_OUT, reason=rejection)
                else:
                    end_attempt_span(index, CRASHED, trace=trace)
                    retire_or_retry(index, CRASHED, reason=str(value))

            # reap deaths and enforce attempt deadlines
            now = time.monotonic()
            for index, process in list(active.items()):
                slot = slots[index]
                if slot.deadline is not None and now > slot.deadline:
                    active.pop(index)
                    slot.close_conn()
                    self.stop(process)
                    end_attempt_span(index, TIMED_OUT)
                    retire_or_retry(
                        index, TIMED_OUT, reason="attempt deadline exceeded"
                    )
                    continue
                if not process.is_alive():
                    if slot.dead_since is None:
                        slot.dead_since = now
                        continue
                    if now - slot.dead_since < self.REAP_GRACE_SECONDS:
                        continue  # an in-flight result may still arrive
                    active.pop(index)
                    slot.close_conn()
                    process.join()
                    end_attempt_span(index, CRASHED)
                    retire_or_retry(
                        index, CRASHED, reason="worker died without reporting"
                    )

        # defense in depth: nothing this map started may outlive it
        for index, process in active.items():  # pragma: no cover - loop drains
            slots[index].close_conn()
            self.stop(process)
            end_attempt_span(index, CRASHED)
        for index in list(unit_spans):  # pragma: no cover - finalize closes these
            finalize(
                index,
                outcomes[index].state,
                value=outcomes[index].value,
                reason=outcomes[index].reason,
            )
        return outcomes
