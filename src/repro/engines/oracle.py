"""Fault-injection engine: claims a configured verdict with a forged certificate.

The certification layer must be exercised against engines that *lie* — the
"wrong result" category of the paper's figures.  ``OracleEngine`` claims
whatever verdict it is configured with, backed by a deliberately weak
certificate (the trivial ``TRUE`` invariant for SAFE, an all-zero input trace
for UNSAFE).  On designs where the claim is wrong the certificate fails
independent validation, which is exactly what the portfolio's cross-check
adjudication and the certification tests rely on to tell the liar from the
honest engines.  The engine is registered but excluded from the default
portfolio.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.certs import InductiveCertificate, Witness
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.result import Counterexample, Status, VerificationResult
from repro.exprs import TRUE
from repro.netlist import TransitionSystem


class OracleEngine(Engine):
    """Returns a fixed verdict — for certification and cross-check testing."""

    name = "oracle"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=True, representations=("word", "bit"), cost="cheap"
    )

    def __init__(
        self,
        system: TransitionSystem,
        claim: str = Status.SAFE,
        trace_length: int = 1,
        representation: str = "word",
    ) -> None:
        super().__init__(system)
        if claim not in Status.DEFINITIVE:
            raise ValueError(f"claim must be 'safe' or 'unsafe', got {claim!r}")
        self.claim = claim
        self.trace_length = max(1, trace_length)
        self.representation = representation

    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        start = time.monotonic()
        property_name = self.default_property(property_name)
        if self.claim == Status.SAFE:
            certificate = InductiveCertificate(property_name, self.name, TRUE)
            counterexample = None
        else:
            inputs = tuple(
                {name: 0 for name in self.system.inputs}
                for _ in range(self.trace_length)
            )
            certificate = Witness(property_name, self.name, inputs)
            counterexample = Counterexample(
                property_name, [dict(step) for step in inputs]
            )
        return VerificationResult(
            self.claim,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            counterexample=counterexample,
            reason=f"oracle claims {self.claim!r} unconditionally",
            certificate=certificate,
        )
