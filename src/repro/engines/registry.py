"""Registry of engines by name, used by the CLI, portfolio and bench harness.

Each engine is registered once, as an :class:`EngineRegistration` carrying
its canonical name, accepted aliases, capabilities and a one-line summary.
Drivers look engines up with :func:`get_registration` / :func:`make_engine`
and enumerate them with :func:`list_engines`; options are validated against
the engine's declared constructor signature so a typo'd or misrouted option
produces a targeted :class:`repro.engines.base.EngineOptionError` instead of
an opaque ``TypeError`` from deep inside a constructor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.engines.absint import AbstractInterpretationEngine
from repro.engines.base import Engine, EngineCapabilities, EngineOptionError
from repro.engines.bmc import BMCEngine
from repro.engines.impact import ImpactEngine
from repro.engines.interpolation import InterpolationEngine
from repro.engines.kiki import KikiEngine
from repro.engines.kinduction import KInductionEngine
from repro.engines.oracle import OracleEngine
from repro.engines.pdr import PDREngine
from repro.engines.predabs import PredicateAbstractionEngine
from repro.engines.rsim import RandomSimulationEngine
from repro.netlist import TransitionSystem


@dataclass(frozen=True)
class EngineRegistration:
    """Metadata for one registered engine.

    The registration is callable with the constructor signature of the engine
    (``registration(system, **options)``), so code that used to treat the
    registry as a name -> constructor map keeps working.
    """

    name: str
    engine_class: Type[Engine]
    aliases: Tuple[str, ...] = ()
    summary: str = ""
    #: included in the default process-parallel portfolio
    portfolio: bool = False
    #: scheduled by the default budget ladder (None: same as ``portfolio``)
    ladder: Optional[bool] = None

    @property
    def in_ladder(self) -> bool:
        return self.portfolio if self.ladder is None else self.ladder

    @property
    def capabilities(self) -> EngineCapabilities:
        return self.engine_class.capabilities

    @property
    def option_names(self) -> Tuple[str, ...]:
        return self.engine_class.option_names()

    def __call__(self, system: TransitionSystem, **options) -> Engine:
        return self.engine_class(system, **options)


_REGISTRATIONS: List[EngineRegistration] = [
    EngineRegistration(
        "bmc",
        BMCEngine,
        summary="incremental bounded model checking (refutation only)",
        portfolio=True,
    ),
    EngineRegistration(
        "k-induction",
        KInductionEngine,
        aliases=("kind", "kinduction"),
        summary="k-induction with optional simple-path constraints",
        portfolio=True,
    ),
    EngineRegistration(
        "interpolation",
        InterpolationEngine,
        aliases=("itp",),
        summary="McMillan-style interpolation-based reachability",
        portfolio=True,
    ),
    EngineRegistration(
        "pdr",
        PDREngine,
        aliases=("ic3",),
        summary="IC3/PDR over the register bits",
        portfolio=True,
    ),
    EngineRegistration(
        "kiki",
        KikiEngine,
        summary="kIkI: BMC + k-induction + interval k-invariants (2LS)",
        portfolio=True,
    ),
    EngineRegistration(
        "impact",
        ImpactEngine,
        summary="lazy abstraction with interpolants (IMPACT/IMPARA)",
    ),
    EngineRegistration(
        "predabs",
        PredicateAbstractionEngine,
        aliases=("predicate-abstraction",),
        summary="Boolean predicate abstraction with CEGAR",
    ),
    EngineRegistration(
        "absint",
        AbstractInterpretationEngine,
        aliases=("abstract-interpretation", "intervals"),
        summary="interval abstract interpretation (may raise false alarms)",
        # not raced by the all-at-once portfolio (too incomplete to spend a
        # process on), but a near-free first rung for the budget ladder
        ladder=True,
    ),
    EngineRegistration(
        "rsim",
        RandomSimulationEngine,
        aliases=("random-sim", "random-simulation"),
        summary="bit-parallel random-simulation falsification (refutation only)",
        # not worth a portfolio process (BMC subsumes it there), but the
        # cheapest first rung of the budget ladder: milliseconds to a real
        # scalar-confirmed witness on the shallow-bug designs
        ladder=True,
    ),
    EngineRegistration(
        "oracle",
        OracleEngine,
        summary="fault injection: claims a fixed verdict with a forged certificate",
    ),
]


#: every engine name and alias -> its registration (case-insensitive keys)
ENGINE_REGISTRY: Dict[str, EngineRegistration] = {}
for _registration in _REGISTRATIONS:
    for _key in (_registration.name, *_registration.aliases):
        if _key in ENGINE_REGISTRY:  # pragma: no cover - registration-time guard
            raise ValueError(f"duplicate engine registration {_key!r}")
        ENGINE_REGISTRY[_key] = _registration


def list_engines(
    portfolio_only: bool = False, ladder_only: bool = False
) -> List[EngineRegistration]:
    """Return the deduplicated registrations, in registration order.

    Each entry carries the canonical name and its aliases; with
    ``portfolio_only`` the list is restricted to the engines raced by the
    default portfolio, with ``ladder_only`` to the engines scheduled by the
    default budget ladder.
    """
    return [
        registration
        for registration in _REGISTRATIONS
        if (not portfolio_only or registration.portfolio)
        and (not ladder_only or registration.in_ladder)
    ]


def get_registration(name: str) -> EngineRegistration:
    """Look up an engine registration by (case-insensitive) name or alias."""
    key = name.lower()
    if key not in ENGINE_REGISTRY:
        canonical = ", ".join(registration.name for registration in _REGISTRATIONS)
        raise KeyError(f"unknown engine {name!r}; available: {canonical}")
    return ENGINE_REGISTRY[key]


def make_engine(
    name: str,
    system: TransitionSystem,
    ignore_unknown_options: bool = False,
    **options,
) -> Engine:
    """Instantiate an engine by (case-insensitive) name.

    Options are validated against the engine's declared constructor
    signature: unknown options raise
    :class:`repro.engines.base.EngineOptionError` naming the supported ones,
    unless ``ignore_unknown_options`` routes them away (used by drivers that
    pass one shared option bag to heterogeneous engines, keeping only what
    each engine understands).
    """
    registration = get_registration(name)
    accepted = registration.engine_class.validate_options(
        options, ignore_unknown=ignore_unknown_options
    )
    return registration.engine_class(system, **accepted)


__all__ = [
    "ENGINE_REGISTRY",
    "EngineRegistration",
    "EngineOptionError",
    "get_registration",
    "list_engines",
    "make_engine",
]
