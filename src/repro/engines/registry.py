"""Registry of engines by name, used by the CLI and the benchmark harness."""

from __future__ import annotations

from typing import Callable, Dict

from repro.engines.absint import AbstractInterpretationEngine
from repro.engines.bmc import BMCEngine
from repro.engines.impact import ImpactEngine
from repro.engines.interpolation import InterpolationEngine
from repro.engines.kiki import KikiEngine
from repro.engines.kinduction import KInductionEngine
from repro.engines.pdr import PDREngine
from repro.engines.predabs import PredicateAbstractionEngine
from repro.netlist import TransitionSystem


#: engine name -> constructor accepting (system, **options)
ENGINE_REGISTRY: Dict[str, Callable] = {
    "bmc": BMCEngine,
    "k-induction": KInductionEngine,
    "kind": KInductionEngine,
    "interpolation": InterpolationEngine,
    "itp": InterpolationEngine,
    "pdr": PDREngine,
    "ic3": PDREngine,
    "impact": ImpactEngine,
    "predabs": PredicateAbstractionEngine,
    "absint": AbstractInterpretationEngine,
    "kiki": KikiEngine,
}


def make_engine(name: str, system: TransitionSystem, **options):
    """Instantiate an engine by (case-insensitive) name."""
    key = name.lower()
    if key not in ENGINE_REGISTRY:
        raise KeyError(
            f"unknown engine {name!r}; available: {', '.join(sorted(set(ENGINE_REGISTRY)))}"
        )
    return ENGINE_REGISTRY[key](system, **options)
