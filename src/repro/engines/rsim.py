"""Random-simulation falsification over the bit-parallel packed simulator.

The cheapest refutation engine in the portfolio: drive the design with
uniformly random inputs, 64 (or more) independent vectors per packed step,
and report UNSAFE with a real :class:`~repro.certs.certificate.Witness` when
any lane violates a property.  The paper's unsafe designs (DAIO at cycle 64,
the traffic-light controller at cycle 65) fall to this engine in a few
milliseconds — before any SAT machinery is even constructed — which is why it
sits on the budget ladder's cheap rung.

Trust: a packed hit is never reported directly.  The violating lane's input
sequence is re-replayed through the scalar reference interpreter and must
violate the same property at the same cycle; disagreement raises
:class:`~repro.netlist.bitsim.SimulationMismatch` (the cross-checked-verdict
pattern), so a packed-simulation bug surfaces as a hard error, not a wrong
verdict.  Runs that find nothing return UNKNOWN — random simulation can
never prove safety.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.certs import witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.result import Budget, Counterexample, Status, VerificationResult
from repro.netlist import TransitionSystem
from repro.netlist.bitsim import PackedSimulator, SimulationMismatch
from repro.netlist.simulate import Simulator


class RandomSimulationEngine(Engine):
    """Bit-parallel random-input falsification.

    Parameters
    ----------
    system:
        The design under verification.
    cycles:
        Depth of each random run (default 96: past both paper bug cycles).
    rounds:
        How many independently seeded runs to try before giving up.
    lanes:
        Vectors evaluated per packed operation (wider words trade Python int
        cost for fewer runs; 64 matches the native word).
    seed:
        Base seed; round ``i`` uses ``seed + i`` so sweeps are reproducible.
    """

    name = "rsim"
    capabilities = EngineCapabilities(
        can_prove=False, can_refute=True, representations=("word",), cost="cheap"
    )

    def __init__(
        self,
        system: TransitionSystem,
        cycles: int = 96,
        rounds: int = 8,
        lanes: int = 64,
        seed: int = 2016,
    ) -> None:
        super().__init__(system)
        self.cycles = cycles
        self.rounds = rounds
        self.lanes = lanes
        self.seed = seed

    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()
        simulator = PackedSimulator(self.system, lanes=self.lanes)
        vectors = 0
        for round_index in range(self.rounds):
            if budget.expired():
                return VerificationResult(
                    Status.TIMEOUT,
                    self.name,
                    property_name,
                    runtime=budget.elapsed(),
                    detail={"rounds": round_index, "vectors": vectors},
                )
            run = simulator.run_random(
                self.cycles,
                seed=self.seed + round_index,
                properties=[property_name],
            )
            vectors += self.lanes
            if run.violation is None:
                continue
            violation = run.violation
            inputs = run.lane_inputs(violation.lane, upto=violation.cycle)
            self._scalar_confirm(property_name, inputs, violation.cycle)
            cex = Counterexample(property_name, [dict(step) for step in inputs])
            return VerificationResult(
                Status.UNSAFE,
                self.name,
                property_name,
                runtime=time.monotonic() - start,
                counterexample=cex,
                detail={
                    "rounds": round_index + 1,
                    "vectors": vectors,
                    "violation_cycle": violation.cycle,
                    "lane": violation.lane,
                    "scalar_confirmed": True,
                },
                certificate=witness_from_counterexample(self.system, self.name, cex),
            )
        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            detail={"rounds": self.rounds, "vectors": vectors},
            reason=(
                f"no violation in {self.rounds} random runs x {self.lanes} lanes "
                f"x {self.cycles} cycles"
            ),
        )

    # ------------------------------------------------------------------
    def _scalar_confirm(self, property_name, inputs, cycle) -> None:
        """Replay the violating lane through the reference interpreter.

        The packed hit must reproduce exactly — the *claimed* property first
        fails at the *claimed* cycle — before it is allowed to become a
        verdict (cross-checked-verdict pattern: the fast path cannot change
        an answer, only find it faster).
        """
        from repro.exprs import evaluate

        prop = self.system.property_by_name(property_name)
        simulator = Simulator(self.system)
        first_failure: Optional[int] = None
        for index, step_inputs in enumerate(inputs):
            env = simulator._environment(step_inputs)
            if evaluate(prop.expr, env) == 0:
                first_failure = index
                break
            simulator.step(step_inputs)
        if first_failure != cycle:
            raise SimulationMismatch(
                f"{self.system.name}: packed violation of {property_name!r} at "
                f"cycle {cycle} did not reproduce in the scalar interpreter "
                f"(scalar first failure: {first_failure})"
            )
