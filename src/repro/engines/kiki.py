"""kIkI: combined k-induction, BMC and k-invariants (2LS; Brain et al. SAS 2015).

2LS, one of the software verifiers evaluated in the paper (Figures 3 and 5),
interleaves three ingredients in one incremental loop:

* incremental BMC refutes the property if a counterexample exists,
* invariant inference over a template domain (here: intervals per register,
  from :mod:`repro.engines.absint`) provides auxiliary facts,
* k-induction, strengthened with those invariants, proves the property.

The combination solves designs whose properties are not k-inductive on their
own but become so once the interval invariants prune unreachable states — the
behaviour that lets 2LS solve more benchmarks than plain k-induction in the
paper's Figure 5.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

from repro.engines.absint import AbstractInterpretationEngine
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import FrameEncoder, flattened_cached
from repro.engines.kinduction import KInductionEngine
from repro.engines.result import Budget, Status, VerificationResult
from repro.exprs import Expr
from repro.netlist import TransitionSystem
from repro.obs import telemetry as _telemetry
from repro.smt import BVResult


class KikiEngine(Engine):
    """BMC + k-induction + k-invariant combination."""

    name = "kiki"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=True, representations=("word", "bit"), complete=True, cost="medium"
    )

    def __init__(
        self,
        system: TransitionSystem,
        max_k: int = 64,
        simple_path: bool = False,
        representation: str = "word",
        use_intervals: bool = True,
        incremental_template: bool = True,
        persistent_session: bool = True,
        sim_filter: bool = True,
    ) -> None:
        super().__init__(system)
        self.max_k = max_k
        self.simple_path = simple_path
        self.representation = representation
        self.use_intervals = use_intervals
        self.incremental_template = incremental_template
        self.persistent_session = persistent_session
        self.sim_filter = sim_filter
        self._sim_dropped = 0

    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()
        self._certification_stats = None
        self._sim_dropped = 0

        # phase 1: infer interval invariants (cheap, template-based)
        invariants: List[Expr] = []
        interval_detail = {}
        if self.use_intervals:
            with _telemetry.span("engine.kiki.intervals"):
                analysis = AbstractInterpretationEngine(self.system)
                intervals = analysis.compute_invariants(budget)
                invariants = analysis.invariant_exprs(intervals)
            interval_detail = {
                "interval_invariants": len(invariants),
            }
            if budget.expired():
                return VerificationResult(
                    Status.TIMEOUT,
                    self.name,
                    property_name,
                    runtime=budget.elapsed(),
                    detail=interval_detail,
                )

        # phase 2: the invariants must themselves be inductive to be assumed
        # in the step case; the interval fixpoint guarantees this, but a
        # defensive check keeps the engine sound even if widening was applied.
        with _telemetry.span(
            "engine.kiki.certify", candidates=len(invariants)
        ) as certify_span:
            invariants = self._certified_invariants(invariants, budget)
            certify_span.annotate(certified=len(invariants))

        # phase 3: k-induction strengthened with the certified invariants,
        # interleaved with BMC through the shared base case
        engine = KInductionEngine(
            self.system,
            max_k=self.max_k,
            simple_path=self.simple_path,
            representation=self.representation,
            strengthening_invariants=invariants,
            incremental_template=self.incremental_template,
            persistent_session=self.persistent_session,
        )
        result = engine.verify(property_name, timeout=budget.remaining())
        # the inner engine's certificate (witness or k-inductive claim with
        # the strengthening invariants) is re-tagged as ours
        certificate = result.certificate
        if certificate is not None:
            certificate = dataclasses.replace(certificate, engine=self.name)
        detail = {
            **result.detail,
            **interval_detail,
            "certified_invariants": len(invariants),
            "sim_filtered_invariants": self._sim_dropped,
        }
        if self._certification_stats is not None:
            # fold the certification session's counters into the inner run's
            from repro.sat.solver import SolverStats

            merged = SolverStats(**detail.get("solver_stats", {}))
            merged.add(self._certification_stats)
            detail["solver_stats"] = merged.as_dict()
        result = VerificationResult(
            status=result.status,
            engine=self.name,
            property_name=result.property_name,
            runtime=time.monotonic() - start,
            counterexample=result.counterexample,
            detail=detail,
            reason=result.reason,
            certificate=certificate,
        )
        return result

    # ------------------------------------------------------------------
    def _certified_invariants(self, invariants: List[Expr], budget: Budget) -> List[Expr]:
        """Keep only invariants that hold initially and are jointly inductive.

        With ``persistent_session`` the whole pruning loop runs on *one*
        solver: the transition relation is stamped once, each iteration's
        candidate set is asserted under a fresh activation literal, and
        dropping invariants retracts the group instead of rebuilding the
        solver — the learned clauses about the (unchanging) transition
        relation survive every iteration.  The legacy path rebuilds a fresh
        encoder per iteration.
        """
        if not invariants:
            return []
        certified = list(invariants)
        from repro.exprs import bool_and, bool_not, evaluate

        flat = flattened_cached(self.system)
        init_env = {name: evaluate(expr, {}) for name, expr in flat.init.items()}
        certified = [inv for inv in certified if evaluate(inv, init_env) == 1]

        # cheap bit-parallel screen: a candidate false on any *sampled*
        # reachable state cannot be an invariant, so drop it before the SAT
        # loop pays induction queries for it (strictly sound — the screen can
        # only remove candidates the solver would have had to drop anyway)
        if self.sim_filter and certified:
            from repro.netlist.bitsim import ReachabilitySampler

            sampler = ReachabilitySampler(self.system)
            certified, self._sim_dropped = sampler.screen_invariants(certified)

        session: Optional[FrameEncoder] = None
        if self.persistent_session and certified:
            session = FrameEncoder(
                self.system,
                representation=self.representation,
                incremental_template=self.incremental_template,
            )
            session.solver.set_deadline(budget.deadline)
            session.assert_trans(0)

        try:
            while certified:
                if budget.expired():
                    return []
                if session is not None:
                    encoder = session
                    activation = encoder.new_activation()
                    solver = encoder.solver
                    for invariant in certified:
                        solver.assert_guarded(
                            encoder.rename_to_frame(invariant, 0), activation
                        )
                    conjunction = bool_and(
                        *[encoder.rename_to_frame(inv, 1) for inv in certified]
                    )
                    solver.assert_guarded(bool_not(conjunction), activation)
                    outcome = solver.check(assumptions=[activation])
                else:
                    encoder = FrameEncoder(
                        self.system,
                        representation=self.representation,
                        incremental_template=self.incremental_template,
                    )
                    encoder.solver.set_deadline(budget.deadline)
                    for invariant in certified:
                        encoder.solver.assert_expr(encoder.rename_to_frame(invariant, 0))
                    encoder.assert_trans(0)
                    conjunction = bool_and(
                        *[encoder.rename_to_frame(inv, 1) for inv in certified]
                    )
                    encoder.solver.assert_expr(bool_not(conjunction))
                    outcome = encoder.solver.check()
                if outcome == BVResult.UNSAT:
                    return certified
                if outcome == BVResult.UNKNOWN:
                    return []
                # drop the invariants violated in the counterexample to induction
                surviving = []
                for invariant in certified:
                    value = encoder.solver.value_of_expr(
                        encoder.rename_to_frame(invariant, 1)
                    )
                    if value == 1:
                        surviving.append(invariant)
                if session is not None:
                    encoder.retire(activation)
                if len(surviving) == len(certified):
                    # no progress (should not happen); give up on strengthening
                    return []
                certified = surviving
            return certified
        finally:
            if session is not None:
                self._certification_stats = session.solver.stats
