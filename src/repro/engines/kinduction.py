"""k-induction (Sheeran, Singh, Stålmarck FMCAD 2000).

The engine interleaves the base case (BMC of depth ``k``) and the inductive
step (``P`` holding in ``k`` consecutive states implies ``P`` in the next),
increasing ``k`` until one of them concludes.  Optionally the step case is
strengthened with *simple path* constraints (all states in the induction
window pairwise distinct), which makes the method complete for finite-state
systems — this is what the hardware k-induction engines (ABC, EBMC) do, while
the software implementations (CBMC, 2LS) typically run without it, one of the
behavioural differences visible in Figure 3 of the paper.

The engine can also be strengthened with externally supplied invariants
(used by the kIkI combination of :mod:`repro.engines.kiki`).

With ``persistent_session=True`` (the default) the base and step solvers live
for the whole run: bound ``k + 1`` extends the unrollings of bound ``k``, so
the conflict clauses, VSIDS activities and saved phases learned at earlier
bounds keep working at the deeper ones.  The legacy path
(``persistent_session=False``) rebuilds both solvers from scratch at every
``k`` — what a non-incremental implementation does — and is kept for
cross-checking and as the benchmark baseline.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Tuple

from repro.certs import KInductiveCertificate, witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import FrameEncoder
from repro.engines.result import Budget, Status, VerificationResult
from repro.exprs import Expr, bool_or, bv_ne
from repro.netlist import TransitionSystem
from repro.obs import telemetry as _telemetry
from repro.sat.solver import SolverStats
from repro.smt import BVResult


class KInductionEngine(Engine):
    """Incremental k-induction engine."""

    name = "k-induction"
    capabilities = EngineCapabilities(
        can_prove=True, can_refute=True, representations=("word", "bit"), complete=True, cost="medium"
    )

    def __init__(
        self,
        system: TransitionSystem,
        max_k: int = 64,
        simple_path: bool = True,
        representation: str = "word",
        strengthening_invariants: Optional[Iterable[Expr]] = None,
        incremental_template: bool = True,
        persistent_session: bool = True,
    ) -> None:
        super().__init__(system)
        self.max_k = max_k
        self.simple_path = simple_path
        self.representation = representation
        self.incremental_template = incremental_template
        self.persistent_session = persistent_session
        #: extra invariants over (unstamped) state variables assumed in every frame
        self.strengthening_invariants: List[Expr] = list(strengthening_invariants or [])

    # ------------------------------------------------------------------
    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()
        self._stats = SolverStats()

        base: Optional[FrameEncoder] = None
        step: Optional[FrameEncoder] = None
        if self.persistent_session:
            base, step = self._fresh_pair(budget)

        for k in range(self.max_k + 1):
            with _telemetry.span("engine.kinduction.k", k=k) as bound_span:
                if budget.expired():
                    self._retire_pair(base, step)
                    bound_span.set_outcome("timeout")
                    return self._timeout(property_name, budget, k)

                if not self.persistent_session:
                    # legacy: rebuild both solvers from scratch and re-unroll the
                    # whole prefix — identical queries, no learned-clause reuse
                    self._retire_pair(base, step)
                    base, step = self._fresh_pair(budget)
                    for frame in range(k):
                        base.assert_trans(frame)
                    self._extend_step(step, k, property_name)

                # ---- base case: a violation within k steps of the initial state?
                base_property = base.property_literal(property_name, k)
                outcome = base.solver.check(assumptions=[-base_property])
                if outcome == BVResult.SAT:
                    self._retire_pair(base, step)
                    cex = base.extract_counterexample(property_name, k)
                    bound_span.set_outcome("unsafe")
                    return VerificationResult(
                        Status.UNSAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        counterexample=cex,
                        detail={"k": k, "solver_stats": self._stats.as_dict()},
                        certificate=witness_from_counterexample(self.system, self.name, cex),
                    )
                if outcome == BVResult.UNKNOWN:
                    self._retire_pair(base, step)
                    bound_span.set_outcome("timeout")
                    return self._timeout(property_name, budget, k)

                # ---- step case: P in frames 0..k implies P in frame k+1
                if self.persistent_session:
                    self._extend_step_frame(step, k, property_name)
                step_property_next = step.property_literal(property_name, k + 1)
                outcome = step.solver.check(assumptions=[-step_property_next])
                if outcome == BVResult.UNSAT:
                    self._retire_pair(base, step)
                    bound_span.set_outcome("safe")
                    return VerificationResult(
                        Status.SAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        detail={
                            "k": k + 1,
                            "simple_path": self.simple_path,
                            "solver_stats": self._stats.as_dict(),
                        },
                        reason=f"property is {k + 1}-inductive",
                        certificate=KInductiveCertificate(
                            property_name,
                            self.name,
                            k=k + 1,
                            simple_path=self.simple_path,
                            invariants=tuple(self.strengthening_invariants),
                        ),
                    )
                if outcome == BVResult.UNKNOWN:
                    self._retire_pair(base, step)
                    bound_span.set_outcome("timeout")
                    return self._timeout(property_name, budget, k)

                # neither case concluded: deepen the unrolling
                if self.persistent_session:
                    base.assert_trans(k)

        self._retire_pair(base, step)
        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            detail={"max_k": self.max_k, "solver_stats": self._stats.as_dict()},
            reason=f"property is not k-inductive for k <= {self.max_k}",
        )

    # ------------------------------------------------------------------
    # session plumbing
    # ------------------------------------------------------------------
    def _fresh_pair(self, budget: Budget) -> Tuple[FrameEncoder, FrameEncoder]:
        """Build the base-case and step-case encoders."""
        base = FrameEncoder(
            self.system,
            representation=self.representation,
            incremental_template=self.incremental_template,
        )
        base.solver.set_deadline(budget.deadline)
        base.assert_init(0)
        step = FrameEncoder(
            self.system,
            representation=self.representation,
            incremental_template=self.incremental_template,
        )
        step.solver.set_deadline(budget.deadline)
        self._assert_invariants(step, 0)
        return base, step

    def _retire_pair(self, base: Optional[FrameEncoder], step: Optional[FrameEncoder]) -> None:
        """Fold the encoders' solver counters into the run totals."""
        for encoder in (base, step):
            if encoder is not None:
                self._stats.add(encoder.solver.stats)

    def _extend_step_frame(self, step: FrameEncoder, k: int, property_name: str) -> None:
        """Grow the step-case window by one frame (frame ``k`` -> ``k + 1``)."""
        step.assert_trans(k)
        self._assert_invariants(step, k + 1)
        if self.simple_path:
            self._assert_simple_path(step, k + 1)
        step_property_now = step.property_literal(property_name, k)
        step.solver.solver.add_clause([step_property_now])  # assume P at frame k

    def _extend_step(self, step: FrameEncoder, k: int, property_name: str) -> None:
        """Build the whole step-case window 0..k+1 (legacy per-k rebuild)."""
        for frame in range(k + 1):
            self._extend_step_frame(step, frame, property_name)

    # ------------------------------------------------------------------
    def _assert_invariants(self, encoder: FrameEncoder, frame: int) -> None:
        for invariant in self.strengthening_invariants:
            encoder.solver.assert_expr(encoder.rename_to_frame(invariant, frame))

    def _assert_simple_path(self, encoder: FrameEncoder, new_frame: int) -> None:
        """Require the new frame's state to differ from every earlier frame."""
        state_vars = encoder.state_vars()
        for other in range(new_frame):
            differences = []
            for name, width in state_vars.items():
                differences.append(
                    bv_ne(encoder.var_at(name, other), encoder.var_at(name, new_frame))
                )
            encoder.solver.assert_expr(bool_or(*differences))

    def _timeout(self, property_name: str, budget: Budget, k: int) -> VerificationResult:
        return VerificationResult(
            Status.TIMEOUT,
            self.name,
            property_name,
            runtime=budget.elapsed(),
            detail={"k_reached": k, "solver_stats": self._stats.as_dict()},
        )
