"""Process-based parallel portfolio over engine×representation configurations.

The paper's headline observation is that no single technique wins everywhere:
BMC refutes quickly, k-induction/interpolation/kIkI/PDR prove, and which
prover is fastest varies per design (Figures 3–5).  A *portfolio* exploits
exactly that: run several engine configurations concurrently on the same
verification task and take the first definitive answer.

:class:`PortfolioRunner` fans the configurations out as worker *processes*
(``multiprocessing``; the engines are CPU-bound pure Python, so threads would
serialize on the GIL), streams per-worker lifecycle events and statistics
back over a queue, cancels the losers as soon as one worker returns a
definitive SAFE/UNSAFE answer, and aggregates everything into a
:class:`PortfolioResult`.  A *cross-check* mode instead lets every worker
finish and reports :data:`repro.engines.result.Status.WRONG` when two
definitive answers disagree — the "wrong result" category of the paper's
figures, applied to our own engines.

Workers receive a picklable :class:`VerificationTask` (a suite benchmark
name, a Verilog/AIGER file path, or a transition system) and rebuild the
design in the child process, so nothing non-picklable ever crosses the
process boundary under any start method.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engines.registry import list_engines, make_engine
from repro.engines.result import Counterexample, Status, VerificationResult
from repro.engines.supervision import RetryPolicy, WorkerSupervisor
from repro.faults import injection as _fault_injection
from repro.netlist import TransitionSystem
from repro.obs import telemetry as _telemetry


# ---------------------------------------------------------------------------
# task and configuration descriptions (picklable)
# ---------------------------------------------------------------------------


#: (kind, spec) -> (file stamp, built transition system) for the file-based
#: task kinds; suite benchmarks have their own memo (``load_system_cached``).
#: Sharing one instance per task means every load within a process — the
#: CLI's verify / certify / save-certificate steps, the portfolio parent's
#: pre-warm and adjudication, every batch item on the same file — resolves
#: to the same object, so the template library (keyed by instance) is
#: blasted once instead of once per load.  The (mtime, size) stamp
#: invalidates the entry when the file changes on disk: a long-lived serving
#: process must never answer for stale file contents (the result cache keys
#: off whatever system this loader returns).
_TASK_SYSTEMS: Dict[Tuple[str, object], Tuple[object, TransitionSystem]] = {}

#: memo cap: a pinned TransitionSystem also pins its blasted template
#: libraries, so a long-lived serving process sweeping many distinct files
#: must not grow without bound; eviction is oldest-first (dict order)
_TASK_SYSTEMS_MAX = 64


def _file_stamp(path: str) -> Optional[Tuple[int, int]]:
    try:
        stat = os.stat(path)
        return (stat.st_mtime_ns, stat.st_size)
    except OSError:
        return None


@dataclass(frozen=True)
class VerificationTask:
    """A picklable description of *what* to verify.

    ``kind`` selects the loader: a suite ``"benchmark"`` by name, a
    ``"verilog"`` or ``"aiger"`` file by path, or a ``"system"`` carried
    directly (requires the transition system itself to pickle, which holds
    under the default ``fork`` start method on POSIX).
    """

    kind: str
    spec: object
    name: str = ""

    @staticmethod
    def benchmark(name: str) -> "VerificationTask":
        return VerificationTask("benchmark", name, name)

    @staticmethod
    def verilog(path: str, top: Optional[str] = None) -> "VerificationTask":
        return VerificationTask("verilog", (path, top), os.path.basename(path))

    @staticmethod
    def aiger(path: str) -> "VerificationTask":
        return VerificationTask("aiger", path, os.path.basename(path))

    @staticmethod
    def system(system: TransitionSystem) -> "VerificationTask":
        return VerificationTask("system", system, system.name)

    def load(self, fresh: bool = False) -> TransitionSystem:
        """Build (or fetch the memoized) transition system of this task.

        Every kind resolves through a per-process memo: suite benchmarks via
        :func:`repro.benchmarks.load_system_cached`, Verilog/AIGER files via
        a ``(kind, spec)`` table here.  Repeated loads therefore return the
        *same instance*, so the blasted frame templates (cached per system
        object) are built once per process — and under the ``fork`` start
        method a worker's load returns the very object the parent
        pre-warmed, so the templates arrive via copy-on-write memory
        instead of being rebuilt per worker.  Pass ``fresh=True`` to force
        a cold rebuild (timing harnesses).
        """
        if self.kind == "system":
            return self.spec
        if self.kind == "benchmark":
            from repro.benchmarks import load_system, load_system_cached

            return load_system(self.spec) if fresh else load_system_cached(self.spec)
        key = (self.kind, self.spec)
        path = self.spec[0] if self.kind == "verilog" else self.spec
        stamp = _file_stamp(path)
        if not fresh:
            cached = _TASK_SYSTEMS.get(key)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        if self.kind == "verilog":
            from repro.synth import synthesize_file

            path, top = self.spec
            system = synthesize_file(path, top=top)
        elif self.kind == "aiger":
            from repro.aig.bitblast import transition_system_from_aig
            from repro.aig.formats import read_aiger

            with open(self.spec, "r", encoding="utf-8") as handle:
                system = transition_system_from_aig(read_aiger(handle.read()))
        else:
            raise ValueError(f"unknown task kind {self.kind!r}")
        if not fresh:
            while len(_TASK_SYSTEMS) >= _TASK_SYSTEMS_MAX:
                _TASK_SYSTEMS.pop(next(iter(_TASK_SYSTEMS)))
            _TASK_SYSTEMS[key] = (stamp, system)
        return system


def warm_task_templates(
    task: "VerificationTask", representations: Sequence[str]
) -> None:
    """Blast a task's frame-template libraries in the calling process.

    The template cache is keyed by system instance, and every task kind
    resolves repeated loads to the same instance (benchmarks via the
    memoized suite loader, files via the stamped per-task memo, systems by
    identity) — so workers forked after this call find the parent's warm
    blast in copy-on-write memory.  Shared by the portfolio fan-out, the
    ladder and the batch pool.  Best-effort: failures are ignored, a worker
    that cannot build templates reports its own error through the normal
    result channel.
    """
    try:
        from repro.engines.encoding import template_library

        system = task.load()
        for representation in sorted(set(map(str, representations))):
            library = template_library(system, representation)
            for prop in library.flat.properties:
                library.property_template(prop.name)
    except Exception:  # noqa: BLE001 - warm-up is best effort
        pass


@dataclass(frozen=True)
class PortfolioConfig:
    """One engine configuration raced by the portfolio."""

    engine: str
    options: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def of(engine: str, **options) -> "PortfolioConfig":
        return PortfolioConfig(engine, tuple(sorted(options.items())))

    @property
    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    @property
    def label(self) -> str:
        representation = self.options_dict.get("representation", "word")
        return f"{self.engine}[{representation}]"


def bound_options(bound: int) -> Dict[str, object]:
    """The shared depth-cap option bag, routed per engine by the drivers.

    Each engine keeps only the key it understands (``max_bound`` for BMC,
    ``max_k`` for k-induction/kIkI, ``max_depth`` for interpolation/IMPACT,
    ``max_frames`` for PDR).
    """
    return {
        "max_bound": bound,
        "max_k": bound,
        "max_depth": bound,
        "max_frames": max(bound, 2),
    }


def default_portfolio_configs(
    representations: Sequence[str] = ("word",),
    bound: Optional[int] = None,
) -> List[PortfolioConfig]:
    """The default engine×representation fan-out.

    Takes every portfolio-flagged engine of the registry crossed with the
    requested representations (filtered by each engine's declared
    capabilities).  ``bound`` caps the search depth of the bounded/iterative
    engines through the shared option bag (routed per engine, see
    :func:`repro.engines.registry.make_engine`).
    """
    configs: List[PortfolioConfig] = []
    for representation in representations:
        for registration in list_engines(portfolio_only=True):
            if representation not in registration.capabilities.representations:
                continue
            options: Dict[str, object] = {"representation": representation}
            if bound is not None:
                options.update(bound_options(bound))
            configs.append(PortfolioConfig.of(registration.name, **options))
    return configs


# ---------------------------------------------------------------------------
# budget-ladder scheduling
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LadderRung:
    """One rung of a budget ladder: a config group and its wall-clock budget.

    ``budget`` is the rung's wall-clock allowance in seconds (``None``:
    whatever remains of the overall portfolio budget — the usual choice for
    the final rung).  Rungs run in order; each is raced as its own
    mini-portfolio with per-rung cancellation, and the ladder escalates only
    when a rung ends without a definitive answer.
    """

    configs: Tuple[PortfolioConfig, ...]
    budget: Optional[float] = None
    tier: str = ""

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(config.label for config in self.configs)


#: fraction of the overall budget granted to the non-final tiers; the final
#: tier always receives whatever remains
DEFAULT_RUNG_FRACTIONS = {"cheap": 0.10, "medium": 0.30}

#: floor (seconds) under which a rung budget is not worth a process launch
MIN_RUNG_BUDGET = 0.5


def learn_priors(paths: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Learn engine priors from past ``BENCH_*.json`` reports.

    Scans benchmark reports (portfolio singles, certification sweeps,
    incremental verdict sweeps, serve sweeps) for per-engine run outcomes
    and aggregates them into ``{engine: {runs, definitive_rate,
    mean_runtime_s, score}}``.  ``score`` orders engines within a ladder
    rung — lower is better: historically fast engines that actually reach
    verdicts launch first.  Missing or unreadable reports contribute
    nothing; with no data the returned dict is empty and the ladder keeps
    registration order.
    """
    import glob as glob_module
    import json

    if paths is None:
        paths = sorted(glob_module.glob("BENCH_*.json"))
    samples: Dict[str, List[Tuple[float, bool]]] = {}

    from repro.engines.registry import ENGINE_REGISTRY

    def record(engine: str, runtime: object, status: object) -> None:
        if not isinstance(runtime, (int, float)):
            return
        engine = str(engine).split("[", 1)[0]
        # canonicalize through the registry: batch sweeps record the engine
        # *class* name ("abstract-interpretation"), ladder configs look
        # priors up by registry name ("absint") — both must hit one bucket
        registration = ENGINE_REGISTRY.get(engine)
        if registration is not None:
            engine = registration.name
        samples.setdefault(engine, []).append(
            (float(runtime), status in Status.DEFINITIVE)
        )

    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                report = json.load(handle)
        except (OSError, ValueError) as error:
            warnings.warn(
                f"learn_priors: skipping unreadable benchmark report "
                f"{path}: {error}",
                stacklevel=2,
            )
            continue
        if not isinstance(report, dict):
            warnings.warn(
                f"learn_priors: skipping malformed benchmark report "
                f"{path}: top level is not an object",
                stacklevel=2,
            )
            continue
        # a torn or hand-mangled report may hold any shape under these
        # keys; one bad report must not poison prior learning for the rest
        try:
            for row in report.get("portfolio", []) or []:
                for label, single in (row.get("singles") or {}).items():
                    record(label, single.get("runtime_s"), single.get("status"))
            for row in report.get("certification", []) or []:
                for engine, outcome in (row.get("engines") or {}).items():
                    record(engine, outcome.get("runtime_s"), outcome.get("status"))
            for row in report.get("verdict_sweep", []) or []:
                for engine, outcome in (row.get("engines") or {}).items():
                    session = outcome.get("session") or {}
                    record(engine, session.get("runtime_s"), session.get("status"))
            sweeps = report.get("sweeps") or {}
            for sweep in sweeps.values():
                for item in (sweep or {}).get("items", []) or []:
                    engine = str(item.get("source", ""))
                    if engine.startswith("cache"):
                        continue
                    record(engine, item.get("runtime_s"), item.get("status"))
        except (AttributeError, TypeError, ValueError) as error:
            warnings.warn(
                f"learn_priors: skipping malformed benchmark report "
                f"{path}: {error}",
                stacklevel=2,
            )
            continue

    priors: Dict[str, Dict[str, float]] = {}
    for engine, runs in samples.items():
        total = sum(runtime for runtime, _ in runs)
        definitive = sum(1 for _, ok in runs if ok)
        rate = definitive / len(runs)
        mean = total / len(runs)
        priors[engine] = {
            "runs": len(runs),
            "definitive_rate": round(rate, 4),
            "mean_runtime_s": round(mean, 6),
            # fast deciders first; an engine that rarely decides is heavily
            # discounted but never excluded (the rung still runs it)
            "score": round(mean / max(rate, 0.05), 6),
        }
    return priors


def default_budget_ladder(
    representations: Sequence[str] = ("word",),
    bound: Optional[int] = None,
    timeout: Optional[float] = None,
    priors: Optional[Dict[str, Dict[str, float]]] = None,
) -> List[LadderRung]:
    """Build the default budget ladder from the engines' declared cost tiers.

    Ladder-flagged engines are grouped by
    :attr:`repro.engines.base.EngineCapabilities.cost` — cheap refuters
    (BMC, abstract interpretation) first at a small slice of the budget,
    the k-induction-family provers next, the fixpoint provers last with
    everything that remains.  ``priors`` (see :func:`learn_priors`) order
    the configurations within each rung by historical score; empty tiers
    are skipped.
    """
    from repro.engines.base import EngineCapabilities

    tiers: Dict[str, List[PortfolioConfig]] = {
        tier: [] for tier in EngineCapabilities.COST_TIERS
    }
    order: Dict[str, int] = {}
    for representation in representations:
        for registration in list_engines(ladder_only=True):
            if representation not in registration.capabilities.representations:
                continue
            options: Dict[str, object] = {"representation": representation}
            if bound is not None:
                options.update(bound_options(bound))
            config = PortfolioConfig.of(registration.name, **options)
            tiers[registration.capabilities.cost].append(config)
            order[config.label] = len(order)

    def sort_key(config: PortfolioConfig) -> Tuple[float, int]:
        prior = (priors or {}).get(config.engine)
        score = prior["score"] if prior else float("inf")
        return (score, order[config.label])

    populated = [
        (tier, configs) for tier, configs in tiers.items() if configs
    ]
    rungs: List[LadderRung] = []
    for index, (tier, configs) in enumerate(populated):
        final = index == len(populated) - 1
        budget: Optional[float] = None
        if not final and timeout is not None:
            fraction = DEFAULT_RUNG_FRACTIONS.get(tier, 0.2)
            budget = max(MIN_RUNG_BUDGET, timeout * fraction)
        rungs.append(
            LadderRung(tuple(sorted(configs, key=sort_key)), budget, tier)
        )
    return rungs


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


#: worker states in a finished portfolio
DONE = "done"  # posted a result
CANCELLED = "cancelled"  # terminated after another worker won
TIMED_OUT = "timed-out"  # terminated at the portfolio deadline
SKIPPED = "skipped"  # never started (a winner emerged first)
CRASHED = "crashed"  # process died without posting a result


@dataclass
class WorkerOutcome:
    """What happened to one portfolio worker."""

    label: str
    engine: str
    options: Dict[str, object]
    state: str
    result: Optional[VerificationResult] = None
    runtime: float = 0.0
    #: process attempts this configuration consumed (retries increment it)
    attempts: int = 1
    #: True when the outcome was produced in-process after pool degradation
    degraded: bool = False

    @property
    def status(self) -> str:
        if self.result is not None:
            return self.result.status
        return self.state


def _worker_cpu(outcome: WorkerOutcome) -> float:
    """CPU seconds one worker consumed.

    Engines measure their own ``process_time`` (see
    :class:`repro.engines.base.Engine`), which survives the trip back from
    the worker process on ``result.cpu_time``; workers that never reported
    (killed, crashed) fall back to their wall time — an over-estimate, but
    the honest bound for a CPU-bound child the parent cannot observe.
    """
    if outcome.result is not None and outcome.result.cpu_time:
        return outcome.result.cpu_time
    return outcome.runtime


@dataclass
class PortfolioResult:
    """Aggregated outcome of one portfolio run."""

    status: str
    property_name: str
    runtime: float
    winner: Optional[str] = None  # label of the deciding configuration
    winner_engine: Optional[str] = None
    counterexample: Optional[Counterexample] = None
    workers: List[WorkerOutcome] = field(default_factory=list)
    detail: Dict[str, object] = field(default_factory=dict)
    reason: str = ""
    #: the winning configuration's checkable certificate (see :mod:`repro.certs`)
    certificate: Optional[object] = None

    @property
    def is_definitive(self) -> bool:
        return self.status in Status.DEFINITIVE

    def worker(self, label: str) -> WorkerOutcome:
        for outcome in self.workers:
            if outcome.label == label:
                return outcome
        raise KeyError(f"no portfolio worker labelled {label!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PortfolioResult({self.status}, winner={self.winner!r}, "
            f"{self.runtime:.3f}s, {len(self.workers)} workers)"
        )


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------


def _portfolio_worker(
    index: int,
    config: PortfolioConfig,
    task: VerificationTask,
    property_name: Optional[str],
    timeout: Optional[float],
    events: "multiprocessing.Queue",
    attempt: int = 0,
) -> None:
    """Run one engine configuration and stream lifecycle events back.

    When the parent was recording telemetry, the forked worker swaps in a
    fresh recorder and ships its exported span subtree on
    ``result.telemetry["trace"]``; the parent stitches it under the
    worker's parent-side span.
    """
    start = time.monotonic()
    _fault_injection.set_attempt(attempt)
    _telemetry.child_begin()
    try:
        with _telemetry.span(
            "worker.config", label=config.label, attempt=attempt
        ) as worker_span:
            system = task.load()
            engine = make_engine(
                config.engine,
                system,
                ignore_unknown_options=True,
                **config.options_dict,
            )
            events.put(("started", index, {"pid": os.getpid(), "label": config.label}))
            result = engine.verify(property_name, timeout=timeout)
            worker_span.set_outcome(result.status)
    except Exception as error:  # noqa: BLE001 - crash category of the paper
        result = VerificationResult(
            Status.ERROR,
            config.engine,
            property_name or "",
            runtime=time.monotonic() - start,
            reason=f"{type(error).__name__}: {error}",
        )
    trace = _telemetry.child_export()
    if trace is not None:
        telemetry = dict(result.telemetry or {})
        telemetry["trace"] = trace
        result.telemetry = telemetry
    # Queue.put serializes in a background feeder thread, so a pickling
    # failure would be swallowed there and the result silently lost; probe
    # the pickle here and strip the engine-specific payload if needed.
    try:
        pickle.dumps(result)
    except Exception:  # pragma: no cover - unpicklable engine detail
        result = VerificationResult(
            result.status,
            result.engine,
            result.property_name,
            runtime=result.runtime,
            cpu_time=result.cpu_time,
            reason=result.reason or "detail dropped (not picklable)",
            telemetry=result.telemetry,  # JSON-safe primitives, always pickles
        )
    events.put(("result", index, result))


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


class PortfolioRunner:
    """Race engine configurations in worker processes.

    Parameters
    ----------
    configs:
        The configurations to fan out (default:
        :func:`default_portfolio_configs`).
    timeout:
        Overall wall-clock budget in seconds for the whole portfolio; each
        worker also receives it as its engine budget.
    max_workers:
        Concurrent process cap (default: one process per configuration, so
        the race is decided by the OS scheduler even when configurations
        outnumber cores).  With a smaller cap the remaining configurations
        are queued and launched as slots free up.
    cross_check:
        When True the runner does *not* cancel on the first definitive
        answer; every worker runs to completion and disagreeing definitive
        answers yield an overall ``Status.WRONG``.
    expected:
        Optional ground-truth verdict (``"safe"``/``"unsafe"``).  A
        definitive portfolio answer contradicting it is reported as
        ``Status.WRONG`` — the harness-side classification of the paper.
    on_event:
        Optional callback receiving progress dicts
        (``{"event": "started"|"result"|..., "label": ..., ...}``) as they
        stream in from the workers.
    warm_templates:
        Pre-blast the frame templates of the task in the *parent* process
        before forking (default True).  Workers inherit the warmed caches via
        copy-on-write, so N workers share one blast instead of re-blasting N
        times.  No-op under the ``spawn`` start method (workers warm their
        own caches there).
    ladder:
        Budget-ladder mode (mutually exclusive with ``configs`` and
        ``cross_check``): a sequence of :class:`LadderRung` (see
        :func:`default_budget_ladder`).  Instead of fanning every
        configuration out at once, the rungs run in order — cheap refuters
        at a small budget first, escalating to the provers only when a rung
        ends without a definitive answer — with per-rung cancellation.
        ``timeout`` still bounds the whole ladder.
    retry:
        :class:`repro.engines.supervision.RetryPolicy` for workers that die
        without reporting: the crashed configuration is relaunched with
        exponential backoff while the portfolio's remaining budget allows
        (default: one retry).
    certify:
        Accept a definitive worker answer only when its certificate passes
        independent validation (:func:`repro.certs.validate_result`); an
        uncertified claim is excluded from winning and recorded under
        ``detail["certification"]``.
    """

    #: extra wall-clock grace before force-terminating workers at the deadline
    GRACE_SECONDS = 2.0

    def __init__(
        self,
        configs: Optional[Sequence[PortfolioConfig]] = None,
        timeout: Optional[float] = None,
        max_workers: Optional[int] = None,
        cross_check: bool = False,
        expected: Optional[str] = None,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        poll_interval: float = 0.05,
        warm_templates: bool = True,
        ladder: Optional[Sequence[LadderRung]] = None,
        retry: Optional[RetryPolicy] = None,
        certify: bool = False,
    ) -> None:
        self.ladder = list(ladder) if ladder is not None else None
        if self.ladder is not None:
            if cross_check:
                raise ValueError(
                    "budget-ladder scheduling cancels rung by rung and is "
                    "incompatible with cross_check (which needs every worker "
                    "to finish)"
                )
            if configs is not None:
                raise ValueError("pass either configs or ladder, not both")
            if not self.ladder or not any(rung.configs for rung in self.ladder):
                raise ValueError("ladder needs at least one configuration")
            self.configs = [
                config for rung in self.ladder for config in rung.configs
            ]
        else:
            self.configs = (
                list(configs) if configs is not None else default_portfolio_configs()
            )
        if not self.configs:
            raise ValueError("portfolio needs at least one configuration")
        self.timeout = timeout
        self.max_workers = max(1, max_workers or len(self.configs))
        self.cross_check = cross_check
        self.expected = expected
        self.on_event = on_event
        self.poll_interval = poll_interval
        self.warm_templates = warm_templates
        self.retry = retry if retry is not None else RetryPolicy()
        self.certify = certify
        start_methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in start_methods else "spawn"
        )

    # ------------------------------------------------------------------
    def _prewarm(self, task: VerificationTask) -> None:
        """Blast the task's frame templates once, in the parent, before forking.

        Every representation the configuration fan-out uses is warmed, so the
        forked workers find their ``(system, representation)`` template
        library already built in inherited (copy-on-write) memory.
        """
        if not self.warm_templates or self._context.get_start_method() != "fork":
            return
        warm_task_templates(
            task,
            {
                str(config.options_dict.get("representation", "word"))
                for config in self.configs
            },
        )

    # ------------------------------------------------------------------
    def run(
        self,
        task: VerificationTask,
        property_name: Optional[str] = None,
    ) -> PortfolioResult:
        """Run the portfolio (all-at-once or ladder) on ``task``."""
        if self.ladder is not None:
            with _telemetry.span(
                "portfolio.ladder", task=task.name, rungs=len(self.ladder)
            ) as ladder_span:
                result = self._run_ladder(task, property_name)
                ladder_span.set_outcome(result.status)
                return result
        with _telemetry.span(
            "portfolio.run", task=task.name, configs=len(self.configs)
        ) as run_span:
            result = self._run_fanout(task, property_name)
            run_span.set_outcome(result.status)
            return result

    def _run_fanout(
        self,
        task: VerificationTask,
        property_name: Optional[str] = None,
    ) -> PortfolioResult:
        """Race every configuration at once; first definitive answer wins."""
        start = time.monotonic()
        self._prewarm(task)
        deadline = start + self.timeout if self.timeout is not None else None
        events: "multiprocessing.Queue" = self._context.Queue()

        outcomes = [
            WorkerOutcome(config.label, config.engine, config.options_dict, SKIPPED)
            for config in self.configs
        ]
        processes: Dict[int, multiprocessing.Process] = {}
        launched: Dict[int, float] = {}
        finished = 0
        winner_index: Optional[int] = None
        supervisor = WorkerSupervisor(
            self._context, retry=self.retry, grace=self.GRACE_SECONDS
        )
        launch_queue = deque(range(len(self.configs)))
        attempts: Dict[int, int] = {}
        not_before: Dict[int, float] = {}
        retry_pending: set = set()
        degraded = False

        def emit(event: str, **payload) -> None:
            if self.on_event is not None:
                self.on_event({"event": event, **payload})

        # parent-side trace assembly: one explicit-parent span per launched
        # worker attempt (workers overlap, so the thread stack cannot hold
        # them); a reporting worker's exported subtree is stitched under its
        # span, and cancels/kills — where the worker ships nothing — are
        # recorded by the parent-side span alone
        recorder = _telemetry.get_recorder()
        fanout_parent = recorder.current_span() if recorder is not None else None
        worker_spans: Dict[int, object] = {}

        def begin_worker_span(index: int, attempt: int, pid=None) -> None:
            if recorder is None:
                return
            worker_spans[index] = recorder.start_span(
                "portfolio.worker",
                parent=fanout_parent,
                label=self.configs[index].label,
                attempt=attempt,
                **({"worker_pid": pid} if pid is not None else {}),
            )

        def end_worker_span(index: int, state: str, result=None) -> None:
            _telemetry.counter(f"portfolio.worker.{state}")
            if recorder is None:
                return
            span = worker_spans.pop(index, None)
            if span is None:
                return
            trace = (result.telemetry or {}).get("trace") if result is not None else None
            if trace:
                recorder.attach(trace, span)
            span.finish(outcome=state)

        def launch_until_full() -> None:
            nonlocal degraded
            rotations = 0
            while launch_queue and len(processes) < self.max_workers and not degraded:
                now = time.monotonic()
                index = launch_queue[0]
                if not_before.get(index, 0.0) > now:
                    # retry backoff not elapsed: rotate so others can launch
                    launch_queue.rotate(-1)
                    rotations += 1
                    if rotations >= len(launch_queue):
                        break
                    continue
                launch_queue.popleft()
                remaining = None if deadline is None else max(0.0, deadline - now)
                process = supervisor.spawn(
                    _portfolio_worker,
                    args=(
                        index,
                        self.configs[index],
                        task,
                        property_name,
                        remaining,
                        events,
                        attempts.get(index, 0),
                    ),
                )
                if process is None:
                    launch_queue.appendleft(index)
                    if not supervisor.pool_healthy:
                        degraded = True
                        emit("pool-unhealthy", error=supervisor.last_spawn_error)
                    break
                processes[index] = process
                launched[index] = time.monotonic()
                retry_pending.discard(index)
                outcomes[index].state = CANCELLED  # running; refined on completion
                outcomes[index].attempts = attempts.get(index, 0) + 1
                begin_worker_span(index, attempts.get(index, 0), pid=process.pid)

        def reap_death(index: int) -> None:
            """A worker died without reporting: retry under budget or retire."""
            nonlocal finished
            outcomes[index].state = CRASHED
            outcomes[index].runtime = time.monotonic() - launched[index]
            end_worker_span(index, CRASHED)
            remaining = None if deadline is None else deadline - time.monotonic()
            if winner_index is None and self.retry.should_retry(
                CRASHED, attempts.get(index, 0), remaining
            ):
                attempts[index] = attempts.get(index, 0) + 1
                not_before[index] = time.monotonic() + self.retry.backoff(
                    attempts[index]
                )
                retry_pending.add(index)
                supervisor.retries_launched += 1
                launch_queue.append(index)
                emit(
                    "retry",
                    label=outcomes[index].label,
                    attempt=attempts[index],
                )
            else:
                finished += 1
                emit("crashed", label=outcomes[index].label)

        launch_until_full()

        while finished < len(self.configs) and (processes or launch_queue):
            if deadline is not None and time.monotonic() > deadline + self.GRACE_SECONDS:
                break
            if degraded and not processes:
                break  # the degraded in-process drain below takes over
            try:
                kind, index, payload = events.get(timeout=self.poll_interval)
            except queue_module.Empty:
                # reap workers that died without posting a result
                for index, process in list(processes.items()):
                    if not process.is_alive():
                        process.join()
                        del processes[index]
                        if outcomes[index].result is None:
                            reap_death(index)
                launch_until_full()
                continue
            if kind == "started":
                emit("started", label=payload["label"], pid=payload["pid"])
                continue
            # kind == "result"
            result: VerificationResult = payload
            # a result can land after the reap branch already marked the
            # worker CRASHED (queue feeder raced the process exit): upgrade
            # the outcome but do not count the worker as finished twice —
            # unless a retry is still pending, in which case this result
            # settles the unit and the retry is withdrawn
            first_report = outcomes[index].result is None and (
                outcomes[index].state != CRASHED or index in retry_pending
            )
            if index in retry_pending:
                retry_pending.discard(index)
                try:
                    launch_queue.remove(index)
                except ValueError:
                    pass
            outcomes[index].result = result
            outcomes[index].state = DONE
            outcomes[index].runtime = time.monotonic() - launched[index]
            end_worker_span(index, DONE, result=result)
            if first_report:
                finished += 1
            process = processes.pop(index, None)
            if process is not None:
                process.join(timeout=self.GRACE_SECONDS)
                if process.is_alive():  # pragma: no cover - defensive
                    supervisor.stop(process)
            emit(
                "result",
                label=outcomes[index].label,
                status=result.status,
                runtime=outcomes[index].runtime,
                detail=dict(result.detail),
            )
            if result.is_definitive and not self.cross_check:
                winner_index = index
                break
            launch_until_full()

        # record results that raced the cancellation before terminating losers
        while True:
            try:
                kind, index, payload = events.get_nowait()
            except queue_module.Empty:
                break
            if kind != "result" or outcomes[index].result is not None:
                continue
            outcomes[index].result = payload
            outcomes[index].state = DONE
            outcomes[index].runtime = time.monotonic() - launched[index]
            end_worker_span(index, DONE, result=payload)
            finished += 1
            process = processes.pop(index, None)
            if process is not None:
                process.join(timeout=self.GRACE_SECONDS)

        # cancel everything still in flight, escalating terminate → SIGKILL so
        # a SIGTERM-ignoring worker can never leak past the driver as a zombie
        deadline_hit = deadline is not None and time.monotonic() >= deadline
        for index, process in processes.items():
            supervisor.stop(process)
            if outcomes[index].result is None:
                outcomes[index].state = TIMED_OUT if winner_index is None and deadline_hit else CANCELLED
                outcomes[index].runtime = time.monotonic() - launched[index]
                emit("cancelled", label=outcomes[index].label, state=outcomes[index].state)
                end_worker_span(index, outcomes[index].state)
        events.close()
        events.cancel_join_thread()

        if degraded and winner_index is None:
            # spawning is broken: give every unanswered configuration its
            # shot in-process, sequentially, until one answers definitively —
            # a degraded portfolio still serves every query
            for index, outcome in enumerate(outcomes):
                if outcome.result is not None:
                    continue
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                t0 = time.monotonic()
                _fault_injection.set_attempt(attempts.get(index, 0))
                begin_worker_span(index, attempts.get(index, 0))
                degraded_span = worker_spans.get(index)
                try:
                    system = task.load()
                    engine = make_engine(
                        self.configs[index].engine,
                        system,
                        ignore_unknown_options=True,
                        **self.configs[index].options_dict,
                    )
                    if recorder is not None and degraded_span is not None:
                        with recorder.under(degraded_span):
                            result = engine.verify(property_name, timeout=remaining)
                    else:
                        result = engine.verify(property_name, timeout=remaining)
                except Exception as error:  # noqa: BLE001 - crash category
                    result = VerificationResult(
                        Status.ERROR,
                        self.configs[index].engine,
                        property_name or "",
                        runtime=time.monotonic() - t0,
                        reason=f"{type(error).__name__}: {error}",
                    )
                finally:
                    _fault_injection.set_attempt(0)
                outcome.result = result
                outcome.state = DONE
                outcome.degraded = True
                outcome.runtime = time.monotonic() - t0
                end_worker_span(index, DONE)
                emit(
                    "degraded",
                    label=outcome.label,
                    status=result.status,
                    runtime=outcome.runtime,
                )
                if result.is_definitive and not self.cross_check:
                    winner_index = index
                    break

        supervision = {
            "spawned": supervisor.spawned,
            "spawn_failures": supervisor.spawn_failures,
            "retries": supervisor.retries_launched,
            "kills": supervisor.kills,
            "degraded": degraded,
        }
        return self._aggregate(
            task, property_name, outcomes, winner_index, start, supervision
        )

    # ------------------------------------------------------------------
    def _run_ladder(
        self,
        task: VerificationTask,
        property_name: Optional[str],
    ) -> PortfolioResult:
        """Escalate through the budget ladder instead of fanning out at once.

        Each rung is raced as its own mini-portfolio (first definitive
        answer cancels the rung's losers); the ladder stops at the first
        rung that produces a definitive (or expected-contradicting WRONG)
        answer and only then escalates to the next, more expensive tier.
        The aggregated result carries every rung's workers plus a
        ``detail["ladder"]`` record with per-rung wall/CPU accounting —
        on tasks a cheap rung decides, total CPU is a fraction of the
        all-at-once fan-out's.
        """
        assert self.ladder is not None
        start = time.monotonic()
        self._prewarm(task)
        deadline = start + self.timeout if self.timeout is not None else None

        all_workers: List[WorkerOutcome] = []
        rung_rows: List[Dict[str, object]] = []
        decided_rung: Optional[int] = None
        final: Optional[PortfolioResult] = None
        for index, rung in enumerate(self.ladder):
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if remaining is not None and remaining <= 0:
                break
            budget = rung.budget
            if budget is None:
                budget = remaining
            elif remaining is not None:
                budget = min(budget, remaining)
            child = PortfolioRunner(
                configs=rung.configs,
                timeout=budget,
                max_workers=self.max_workers,
                expected=self.expected,
                on_event=self._rung_event(index, rung),
                poll_interval=self.poll_interval,
                warm_templates=False,  # warmed once above
                retry=self.retry,
                certify=self.certify,
            )
            rung_start = time.monotonic()
            with _telemetry.span(
                "ladder.rung", rung=index, tier=rung.tier
            ) as rung_span:
                result = child.run(task, property_name)
                rung_span.set_outcome(result.status)
            rung_wall = time.monotonic() - rung_start
            rung_cpu = sum(_worker_cpu(outcome) for outcome in result.workers)
            all_workers.extend(result.workers)
            rung_rows.append(
                {
                    "rung": index,
                    "tier": rung.tier,
                    "configs": list(rung.labels),
                    "budget_s": None if budget is None else round(budget, 6),
                    "wall_s": round(rung_wall, 6),
                    "cpu_s": round(rung_cpu, 6),
                    "status": result.status,
                    "winner": result.winner,
                }
            )
            if result.is_definitive or result.status == Status.WRONG:
                decided_rung = index
                final = result
                break

        runtime = time.monotonic() - start
        cpu_s = sum(_worker_cpu(outcome) for outcome in all_workers)
        ladder_detail: Dict[str, object] = {
            "rungs": rung_rows,
            "decided_rung": decided_rung,
            "schedule": [list(rung.labels) for rung in self.ladder],
        }
        if final is not None:
            detail = dict(final.detail)
            detail["ladder"] = ladder_detail
            detail["cpu_s"] = round(cpu_s, 6)
            return PortfolioResult(
                final.status,
                final.property_name,
                runtime,
                winner=final.winner,
                winner_engine=final.winner_engine,
                counterexample=final.counterexample,
                workers=all_workers,
                detail=detail,
                reason=final.reason
                or f"decided at ladder rung {decided_rung}",
                certificate=final.certificate,
            )

        # no rung reached a definitive answer: summarize like the fan-out
        finished = [outcome for outcome in all_workers if outcome.result is not None]
        statuses = [outcome.result.status for outcome in finished]
        if any(status == Status.UNKNOWN for status in statuses):
            status = Status.UNKNOWN
        elif statuses and all(status == Status.ERROR for status in statuses):
            status = Status.ERROR
        else:
            status = Status.TIMEOUT
        return PortfolioResult(
            status,
            self._property_name(property_name, finished),
            runtime,
            workers=all_workers,
            detail={
                "task": task.name,
                "configs": [outcome.label for outcome in all_workers],
                "worker_statuses": {
                    outcome.label: outcome.status for outcome in all_workers
                },
                "ladder": ladder_detail,
                "cpu_s": round(cpu_s, 6),
            },
            reason="no ladder rung reached a definitive answer",
        )

    def _rung_event(
        self, index: int, rung: LadderRung
    ) -> Optional[Callable[[Dict[str, object]], None]]:
        if self.on_event is None:
            return None

        def forward(event: Dict[str, object]) -> None:
            self.on_event({**event, "rung": index, "tier": rung.tier})

        return forward

    # ------------------------------------------------------------------
    def _aggregate(
        self,
        task: VerificationTask,
        property_name: Optional[str],
        outcomes: List[WorkerOutcome],
        winner_index: Optional[int],
        start: float,
        supervision: Optional[Dict[str, object]] = None,
    ) -> PortfolioResult:
        runtime = time.monotonic() - start
        detail: Dict[str, object] = {
            "task": task.name,
            "configs": [outcome.label for outcome in outcomes],
            "worker_statuses": {outcome.label: outcome.status for outcome in outcomes},
            "cross_check": self.cross_check,
            # CPU the fan-out spent: each worker's measured process time
            # (wall for workers that never reported), compared against
            # ladder CPU by the serve bench
            "cpu_s": round(sum(_worker_cpu(outcome) for outcome in outcomes), 6),
        }
        if supervision is not None:
            detail["supervision"] = supervision

        definitive = [
            outcome
            for outcome in outcomes
            if outcome.result is not None and outcome.result.is_definitive
        ]

        # certify mode: a definitive claim counts only with a certificate the
        # independent validator accepts — a liar is excluded from winning and
        # its rejection recorded, never silently dropped
        if self.certify and definitive:
            certification: Dict[str, Dict[str, object]] = {}
            certified: List[WorkerOutcome] = []
            try:
                system = task.load()
            except Exception as error:  # noqa: BLE001 - loader failures
                detail["certification"] = {
                    "error": f"{type(error).__name__}: {error}"
                }
                system = None
            if system is not None:
                from repro.certs import validate_result

                for outcome in definitive:
                    validation = validate_result(
                        system, outcome.result, timeout=self.timeout
                    )
                    certification[outcome.label] = {
                        "claimed": outcome.result.status,
                        "certified": validation.ok,
                        "reason": validation.reason,
                    }
                    if validation.ok:
                        certified.append(outcome)
                detail["certification"] = certification
                if winner_index is not None and outcomes[winner_index] not in certified:
                    winner_index = None
                definitive = certified

        # cross-check: disagreeing definitive answers are adjudicated by
        # validating the workers' certificates with the independent checker;
        # only an undecidable disagreement remains a wrong result
        statuses = {outcome.result.status for outcome in definitive}
        if len(statuses) > 1:
            detail["disagreement"] = {
                outcome.label: outcome.result.status for outcome in definitive
            }
            adjudicated = self._adjudicate(task, definitive, detail)
            if adjudicated is not None:
                winner_index = next(
                    index for index, outcome in enumerate(outcomes) if outcome is adjudicated
                )
                definitive = [adjudicated]
            else:
                return PortfolioResult(
                    Status.WRONG,
                    self._property_name(property_name, definitive),
                    runtime,
                    workers=outcomes,
                    detail=detail,
                    reason=(
                        "portfolio workers returned contradictory definitive "
                        "answers and certificate validation could not adjudicate"
                    ),
                )

        if winner_index is None and definitive:
            # cross-check mode: the earliest definitive finisher is the winner
            winner_index = min(
                (index for index, outcome in enumerate(outcomes) if outcome in definitive),
                key=lambda index: outcomes[index].runtime,
            )

        if winner_index is not None:
            winning = outcomes[winner_index]
            result = winning.result
            assert result is not None
            status = result.status
            reason = result.reason
            if "adjudication" in detail:
                reason = (
                    f"cross-check disagreement adjudicated by certificate "
                    f"validation in favour of {winning.label}"
                )
            if self.expected is not None and status != self.expected:
                detail["expected"] = self.expected
                detail["claimed"] = status
                status = Status.WRONG
                reason = (
                    f"{winning.label} claimed {result.status!r} but the benchmark "
                    f"is known {self.expected!r}"
                )
            return PortfolioResult(
                status,
                result.property_name,
                runtime,
                winner=winning.label,
                winner_engine=winning.engine,
                counterexample=result.counterexample,
                workers=outcomes,
                detail={**detail, **{f"winner_{k}": v for k, v in result.detail.items()}},
                reason=reason,
                certificate=result.certificate,
            )

        # no definitive answer: summarize the failure categories
        finished = [outcome for outcome in outcomes if outcome.result is not None]
        statuses = [outcome.result.status for outcome in finished]
        if any(status == Status.UNKNOWN for status in statuses):
            status = Status.UNKNOWN
        elif statuses and all(status == Status.ERROR for status in statuses):
            status = Status.ERROR
        elif not statuses and any(outcome.state == CRASHED for outcome in outcomes):
            # every worker died without reporting: a crash, not a timeout
            status = Status.ERROR
        else:
            status = Status.TIMEOUT
        return PortfolioResult(
            status,
            self._property_name(property_name, finished),
            runtime,
            workers=outcomes,
            detail=detail,
            reason="no portfolio configuration reached a definitive answer",
        )

    def _adjudicate(
        self,
        task: VerificationTask,
        definitive: List[WorkerOutcome],
        detail: Dict[str, object],
    ) -> Optional[WorkerOutcome]:
        """Decide a definitive-answer disagreement by validating certificates.

        Every disagreeing worker's certificate is checked by the independent
        validator (:func:`repro.certs.validate_result`).  If exactly one
        claimed status survives validation, the fastest worker holding a
        validated certificate of that status wins; otherwise (no certificate
        validates, or — which would indicate a validator bug — both sides
        validate) adjudication abstains and the caller reports WRONG.  The
        per-worker verdicts are recorded under ``detail["adjudication"]``.
        """
        from repro.certs import validate_result

        try:
            system = task.load()
        except Exception as error:  # noqa: BLE001 - loader failures abstain
            detail["adjudication"] = {"error": f"{type(error).__name__}: {error}"}
            return None
        verdicts: Dict[str, Dict[str, object]] = {}
        validated: List[WorkerOutcome] = []
        for outcome in definitive:
            # validation runs in the parent after the race; bound it by the
            # same per-run budget the workers had
            validation = validate_result(system, outcome.result, timeout=self.timeout)
            verdicts[outcome.label] = {
                "claimed": outcome.result.status,
                "certified": validation.ok,
                "reason": validation.reason,
            }
            if validation.ok:
                validated.append(outcome)
        detail["adjudication"] = verdicts
        validated_statuses = {outcome.result.status for outcome in validated}
        if len(validated_statuses) != 1:
            return None
        return min(validated, key=lambda outcome: outcome.runtime)

    @staticmethod
    def _property_name(
        property_name: Optional[str], outcomes: Sequence[WorkerOutcome]
    ) -> str:
        if property_name:
            return property_name
        for outcome in outcomes:
            if outcome.result is not None and outcome.result.property_name:
                return outcome.result.property_name
        return ""


def run_portfolio(
    task: VerificationTask,
    property_name: Optional[str] = None,
    **runner_options,
) -> PortfolioResult:
    """Convenience wrapper: build a :class:`PortfolioRunner` and run it once."""
    return PortfolioRunner(**runner_options).run(task, property_name)
