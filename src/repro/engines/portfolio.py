"""Process-based parallel portfolio over engine×representation configurations.

The paper's headline observation is that no single technique wins everywhere:
BMC refutes quickly, k-induction/interpolation/kIkI/PDR prove, and which
prover is fastest varies per design (Figures 3–5).  A *portfolio* exploits
exactly that: run several engine configurations concurrently on the same
verification task and take the first definitive answer.

:class:`PortfolioRunner` fans the configurations out as worker *processes*
(``multiprocessing``; the engines are CPU-bound pure Python, so threads would
serialize on the GIL), streams per-worker lifecycle events and statistics
back over a queue, cancels the losers as soon as one worker returns a
definitive SAFE/UNSAFE answer, and aggregates everything into a
:class:`PortfolioResult`.  A *cross-check* mode instead lets every worker
finish and reports :data:`repro.engines.result.Status.WRONG` when two
definitive answers disagree — the "wrong result" category of the paper's
figures, applied to our own engines.

Workers receive a picklable :class:`VerificationTask` (a suite benchmark
name, a Verilog/AIGER file path, or a transition system) and rebuild the
design in the child process, so nothing non-picklable ever crosses the
process boundary under any start method.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engines.registry import list_engines, make_engine
from repro.engines.result import Counterexample, Status, VerificationResult
from repro.netlist import TransitionSystem


# ---------------------------------------------------------------------------
# task and configuration descriptions (picklable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VerificationTask:
    """A picklable description of *what* to verify.

    ``kind`` selects the loader: a suite ``"benchmark"`` by name, a
    ``"verilog"`` or ``"aiger"`` file by path, or a ``"system"`` carried
    directly (requires the transition system itself to pickle, which holds
    under the default ``fork`` start method on POSIX).
    """

    kind: str
    spec: object
    name: str = ""

    @staticmethod
    def benchmark(name: str) -> "VerificationTask":
        return VerificationTask("benchmark", name, name)

    @staticmethod
    def verilog(path: str, top: Optional[str] = None) -> "VerificationTask":
        return VerificationTask("verilog", (path, top), os.path.basename(path))

    @staticmethod
    def aiger(path: str) -> "VerificationTask":
        return VerificationTask("aiger", path, os.path.basename(path))

    @staticmethod
    def system(system: TransitionSystem) -> "VerificationTask":
        return VerificationTask("system", system, system.name)

    def load(self) -> TransitionSystem:
        """Build the transition system described by this task.

        Suite benchmarks resolve through the memoized loader: under the
        ``fork`` start method a worker's load returns the very object the
        parent pre-warmed, so the blasted frame templates arrive via
        copy-on-write memory instead of being rebuilt per worker.
        """
        if self.kind == "benchmark":
            from repro.benchmarks import load_system_cached

            return load_system_cached(self.spec)
        if self.kind == "verilog":
            from repro.synth import synthesize_file

            path, top = self.spec
            return synthesize_file(path, top=top)
        if self.kind == "aiger":
            from repro.aig.bitblast import transition_system_from_aig
            from repro.aig.formats import read_aiger

            with open(self.spec, "r", encoding="utf-8") as handle:
                return transition_system_from_aig(read_aiger(handle.read()))
        if self.kind == "system":
            return self.spec
        raise ValueError(f"unknown task kind {self.kind!r}")


@dataclass(frozen=True)
class PortfolioConfig:
    """One engine configuration raced by the portfolio."""

    engine: str
    options: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def of(engine: str, **options) -> "PortfolioConfig":
        return PortfolioConfig(engine, tuple(sorted(options.items())))

    @property
    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    @property
    def label(self) -> str:
        representation = self.options_dict.get("representation", "word")
        return f"{self.engine}[{representation}]"


def bound_options(bound: int) -> Dict[str, object]:
    """The shared depth-cap option bag, routed per engine by the drivers.

    Each engine keeps only the key it understands (``max_bound`` for BMC,
    ``max_k`` for k-induction/kIkI, ``max_depth`` for interpolation/IMPACT,
    ``max_frames`` for PDR).
    """
    return {
        "max_bound": bound,
        "max_k": bound,
        "max_depth": bound,
        "max_frames": max(bound, 2),
    }


def default_portfolio_configs(
    representations: Sequence[str] = ("word",),
    bound: Optional[int] = None,
) -> List[PortfolioConfig]:
    """The default engine×representation fan-out.

    Takes every portfolio-flagged engine of the registry crossed with the
    requested representations (filtered by each engine's declared
    capabilities).  ``bound`` caps the search depth of the bounded/iterative
    engines through the shared option bag (routed per engine, see
    :func:`repro.engines.registry.make_engine`).
    """
    configs: List[PortfolioConfig] = []
    for representation in representations:
        for registration in list_engines(portfolio_only=True):
            if representation not in registration.capabilities.representations:
                continue
            options: Dict[str, object] = {"representation": representation}
            if bound is not None:
                options.update(bound_options(bound))
            configs.append(PortfolioConfig.of(registration.name, **options))
    return configs


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


#: worker states in a finished portfolio
DONE = "done"  # posted a result
CANCELLED = "cancelled"  # terminated after another worker won
TIMED_OUT = "timed-out"  # terminated at the portfolio deadline
SKIPPED = "skipped"  # never started (a winner emerged first)
CRASHED = "crashed"  # process died without posting a result


@dataclass
class WorkerOutcome:
    """What happened to one portfolio worker."""

    label: str
    engine: str
    options: Dict[str, object]
    state: str
    result: Optional[VerificationResult] = None
    runtime: float = 0.0

    @property
    def status(self) -> str:
        if self.result is not None:
            return self.result.status
        return self.state


@dataclass
class PortfolioResult:
    """Aggregated outcome of one portfolio run."""

    status: str
    property_name: str
    runtime: float
    winner: Optional[str] = None  # label of the deciding configuration
    winner_engine: Optional[str] = None
    counterexample: Optional[Counterexample] = None
    workers: List[WorkerOutcome] = field(default_factory=list)
    detail: Dict[str, object] = field(default_factory=dict)
    reason: str = ""
    #: the winning configuration's checkable certificate (see :mod:`repro.certs`)
    certificate: Optional[object] = None

    @property
    def is_definitive(self) -> bool:
        return self.status in Status.DEFINITIVE

    def worker(self, label: str) -> WorkerOutcome:
        for outcome in self.workers:
            if outcome.label == label:
                return outcome
        raise KeyError(f"no portfolio worker labelled {label!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PortfolioResult({self.status}, winner={self.winner!r}, "
            f"{self.runtime:.3f}s, {len(self.workers)} workers)"
        )


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------


def _portfolio_worker(
    index: int,
    config: PortfolioConfig,
    task: VerificationTask,
    property_name: Optional[str],
    timeout: Optional[float],
    events: "multiprocessing.Queue",
) -> None:
    """Run one engine configuration and stream lifecycle events back."""
    start = time.monotonic()
    try:
        system = task.load()
        engine = make_engine(
            config.engine,
            system,
            ignore_unknown_options=True,
            **config.options_dict,
        )
        events.put(("started", index, {"pid": os.getpid(), "label": config.label}))
        result = engine.verify(property_name, timeout=timeout)
    except Exception as error:  # noqa: BLE001 - crash category of the paper
        result = VerificationResult(
            Status.ERROR,
            config.engine,
            property_name or "",
            runtime=time.monotonic() - start,
            reason=f"{type(error).__name__}: {error}",
        )
    # Queue.put serializes in a background feeder thread, so a pickling
    # failure would be swallowed there and the result silently lost; probe
    # the pickle here and strip the engine-specific payload if needed.
    try:
        pickle.dumps(result)
    except Exception:  # pragma: no cover - unpicklable engine detail
        result = VerificationResult(
            result.status,
            result.engine,
            result.property_name,
            runtime=result.runtime,
            reason=result.reason or "detail dropped (not picklable)",
        )
    events.put(("result", index, result))


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


class PortfolioRunner:
    """Race engine configurations in worker processes.

    Parameters
    ----------
    configs:
        The configurations to fan out (default:
        :func:`default_portfolio_configs`).
    timeout:
        Overall wall-clock budget in seconds for the whole portfolio; each
        worker also receives it as its engine budget.
    max_workers:
        Concurrent process cap (default: one process per configuration, so
        the race is decided by the OS scheduler even when configurations
        outnumber cores).  With a smaller cap the remaining configurations
        are queued and launched as slots free up.
    cross_check:
        When True the runner does *not* cancel on the first definitive
        answer; every worker runs to completion and disagreeing definitive
        answers yield an overall ``Status.WRONG``.
    expected:
        Optional ground-truth verdict (``"safe"``/``"unsafe"``).  A
        definitive portfolio answer contradicting it is reported as
        ``Status.WRONG`` — the harness-side classification of the paper.
    on_event:
        Optional callback receiving progress dicts
        (``{"event": "started"|"result"|..., "label": ..., ...}``) as they
        stream in from the workers.
    warm_templates:
        Pre-blast the frame templates of the task in the *parent* process
        before forking (default True).  Workers inherit the warmed caches via
        copy-on-write, so N workers share one blast instead of re-blasting N
        times.  No-op under the ``spawn`` start method (workers warm their
        own caches there).
    """

    #: extra wall-clock grace before force-terminating workers at the deadline
    GRACE_SECONDS = 2.0

    def __init__(
        self,
        configs: Optional[Sequence[PortfolioConfig]] = None,
        timeout: Optional[float] = None,
        max_workers: Optional[int] = None,
        cross_check: bool = False,
        expected: Optional[str] = None,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        poll_interval: float = 0.05,
        warm_templates: bool = True,
    ) -> None:
        self.configs = list(configs) if configs is not None else default_portfolio_configs()
        if not self.configs:
            raise ValueError("portfolio needs at least one configuration")
        self.timeout = timeout
        self.max_workers = max(1, max_workers or len(self.configs))
        self.cross_check = cross_check
        self.expected = expected
        self.on_event = on_event
        self.poll_interval = poll_interval
        self.warm_templates = warm_templates
        start_methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in start_methods else "spawn"
        )

    # ------------------------------------------------------------------
    def _prewarm(self, task: VerificationTask) -> None:
        """Blast the task's frame templates once, in the parent, before forking.

        Every representation the configuration fan-out uses is warmed, so the
        forked workers find their ``(system, representation)`` template
        library already built in inherited (copy-on-write) memory.  Failures
        are ignored — a worker that cannot build templates reports its own
        error through the normal result channel.
        """
        if not self.warm_templates or self._context.get_start_method() != "fork":
            return
        if task.kind not in ("benchmark", "system"):
            # the template cache is keyed by system instance; only these task
            # kinds resolve to the same instance in parent and workers
            # (benchmarks via the memoized loader, systems by identity)
            return
        try:
            from repro.engines.encoding import template_library

            system = task.load()
            representations = {
                str(config.options_dict.get("representation", "word"))
                for config in self.configs
            }
            for representation in sorted(representations):
                library = template_library(system, representation)
                for prop in library.flat.properties:
                    library.property_template(prop.name)
        except Exception:  # noqa: BLE001 - warm-up is best effort
            pass

    # ------------------------------------------------------------------
    def run(
        self,
        task: VerificationTask,
        property_name: Optional[str] = None,
    ) -> PortfolioResult:
        """Run the portfolio on ``task`` and aggregate the outcome."""
        start = time.monotonic()
        self._prewarm(task)
        deadline = start + self.timeout if self.timeout is not None else None
        events: "multiprocessing.Queue" = self._context.Queue()

        outcomes = [
            WorkerOutcome(config.label, config.engine, config.options_dict, SKIPPED)
            for config in self.configs
        ]
        processes: Dict[int, multiprocessing.Process] = {}
        launched: Dict[int, float] = {}
        next_index = 0
        finished = 0
        winner_index: Optional[int] = None

        def emit(event: str, **payload) -> None:
            if self.on_event is not None:
                self.on_event({"event": event, **payload})

        def launch_until_full() -> None:
            nonlocal next_index
            while next_index < len(self.configs) and len(processes) < self.max_workers:
                index = next_index
                next_index += 1
                remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
                process = self._context.Process(
                    target=_portfolio_worker,
                    args=(
                        index,
                        self.configs[index],
                        task,
                        property_name,
                        remaining,
                        events,
                    ),
                    daemon=True,
                )
                process.start()
                processes[index] = process
                launched[index] = time.monotonic()
                outcomes[index].state = CANCELLED  # running; refined on completion

        launch_until_full()

        while finished < len(self.configs) and (processes or next_index < len(self.configs)):
            if deadline is not None and time.monotonic() > deadline + self.GRACE_SECONDS:
                break
            try:
                kind, index, payload = events.get(timeout=self.poll_interval)
            except queue_module.Empty:
                # reap workers that died without posting a result
                for index, process in list(processes.items()):
                    if not process.is_alive():
                        process.join()
                        del processes[index]
                        if outcomes[index].result is None:
                            outcomes[index].state = CRASHED
                            outcomes[index].runtime = time.monotonic() - launched[index]
                            finished += 1
                            emit("crashed", label=outcomes[index].label)
                launch_until_full()
                continue
            if kind == "started":
                emit("started", label=payload["label"], pid=payload["pid"])
                continue
            # kind == "result"
            result: VerificationResult = payload
            # a result can land after the reap branch already marked the
            # worker CRASHED (queue feeder raced the process exit): upgrade
            # the outcome but do not count the worker as finished twice
            first_report = (
                outcomes[index].result is None and outcomes[index].state != CRASHED
            )
            outcomes[index].result = result
            outcomes[index].state = DONE
            outcomes[index].runtime = time.monotonic() - launched[index]
            if first_report:
                finished += 1
            process = processes.pop(index, None)
            if process is not None:
                process.join(timeout=self.GRACE_SECONDS)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join()
            emit(
                "result",
                label=outcomes[index].label,
                status=result.status,
                runtime=outcomes[index].runtime,
                detail=dict(result.detail),
            )
            if result.is_definitive and not self.cross_check:
                winner_index = index
                break
            launch_until_full()

        # record results that raced the cancellation before terminating losers
        while True:
            try:
                kind, index, payload = events.get_nowait()
            except queue_module.Empty:
                break
            if kind != "result" or outcomes[index].result is not None:
                continue
            outcomes[index].result = payload
            outcomes[index].state = DONE
            outcomes[index].runtime = time.monotonic() - launched[index]
            finished += 1
            process = processes.pop(index, None)
            if process is not None:
                process.join(timeout=self.GRACE_SECONDS)

        # cancel/terminate everything still in flight
        deadline_hit = deadline is not None and time.monotonic() >= deadline
        for index, process in processes.items():
            if process.is_alive():
                process.terminate()
            process.join()
            if outcomes[index].result is None:
                outcomes[index].state = TIMED_OUT if winner_index is None and deadline_hit else CANCELLED
                outcomes[index].runtime = time.monotonic() - launched[index]
                emit("cancelled", label=outcomes[index].label, state=outcomes[index].state)
        events.close()
        events.cancel_join_thread()

        return self._aggregate(task, property_name, outcomes, winner_index, start)

    # ------------------------------------------------------------------
    def _aggregate(
        self,
        task: VerificationTask,
        property_name: Optional[str],
        outcomes: List[WorkerOutcome],
        winner_index: Optional[int],
        start: float,
    ) -> PortfolioResult:
        runtime = time.monotonic() - start
        detail: Dict[str, object] = {
            "task": task.name,
            "configs": [outcome.label for outcome in outcomes],
            "worker_statuses": {outcome.label: outcome.status for outcome in outcomes},
            "cross_check": self.cross_check,
        }

        definitive = [
            outcome
            for outcome in outcomes
            if outcome.result is not None and outcome.result.is_definitive
        ]

        # cross-check: disagreeing definitive answers are adjudicated by
        # validating the workers' certificates with the independent checker;
        # only an undecidable disagreement remains a wrong result
        statuses = {outcome.result.status for outcome in definitive}
        if len(statuses) > 1:
            detail["disagreement"] = {
                outcome.label: outcome.result.status for outcome in definitive
            }
            adjudicated = self._adjudicate(task, definitive, detail)
            if adjudicated is not None:
                winner_index = next(
                    index for index, outcome in enumerate(outcomes) if outcome is adjudicated
                )
                definitive = [adjudicated]
            else:
                return PortfolioResult(
                    Status.WRONG,
                    self._property_name(property_name, definitive),
                    runtime,
                    workers=outcomes,
                    detail=detail,
                    reason=(
                        "portfolio workers returned contradictory definitive "
                        "answers and certificate validation could not adjudicate"
                    ),
                )

        if winner_index is None and definitive:
            # cross-check mode: the earliest definitive finisher is the winner
            winner_index = min(
                (index for index, outcome in enumerate(outcomes) if outcome in definitive),
                key=lambda index: outcomes[index].runtime,
            )

        if winner_index is not None:
            winning = outcomes[winner_index]
            result = winning.result
            assert result is not None
            status = result.status
            reason = result.reason
            if "adjudication" in detail:
                reason = (
                    f"cross-check disagreement adjudicated by certificate "
                    f"validation in favour of {winning.label}"
                )
            if self.expected is not None and status != self.expected:
                detail["expected"] = self.expected
                detail["claimed"] = status
                status = Status.WRONG
                reason = (
                    f"{winning.label} claimed {result.status!r} but the benchmark "
                    f"is known {self.expected!r}"
                )
            return PortfolioResult(
                status,
                result.property_name,
                runtime,
                winner=winning.label,
                winner_engine=winning.engine,
                counterexample=result.counterexample,
                workers=outcomes,
                detail={**detail, **{f"winner_{k}": v for k, v in result.detail.items()}},
                reason=reason,
                certificate=result.certificate,
            )

        # no definitive answer: summarize the failure categories
        finished = [outcome for outcome in outcomes if outcome.result is not None]
        statuses = [outcome.result.status for outcome in finished]
        if any(status == Status.UNKNOWN for status in statuses):
            status = Status.UNKNOWN
        elif statuses and all(status == Status.ERROR for status in statuses):
            status = Status.ERROR
        elif not statuses and any(outcome.state == CRASHED for outcome in outcomes):
            # every worker died without reporting: a crash, not a timeout
            status = Status.ERROR
        else:
            status = Status.TIMEOUT
        return PortfolioResult(
            status,
            self._property_name(property_name, finished),
            runtime,
            workers=outcomes,
            detail=detail,
            reason="no portfolio configuration reached a definitive answer",
        )

    def _adjudicate(
        self,
        task: VerificationTask,
        definitive: List[WorkerOutcome],
        detail: Dict[str, object],
    ) -> Optional[WorkerOutcome]:
        """Decide a definitive-answer disagreement by validating certificates.

        Every disagreeing worker's certificate is checked by the independent
        validator (:func:`repro.certs.validate_result`).  If exactly one
        claimed status survives validation, the fastest worker holding a
        validated certificate of that status wins; otherwise (no certificate
        validates, or — which would indicate a validator bug — both sides
        validate) adjudication abstains and the caller reports WRONG.  The
        per-worker verdicts are recorded under ``detail["adjudication"]``.
        """
        from repro.certs import validate_result

        try:
            system = task.load()
        except Exception as error:  # noqa: BLE001 - loader failures abstain
            detail["adjudication"] = {"error": f"{type(error).__name__}: {error}"}
            return None
        verdicts: Dict[str, Dict[str, object]] = {}
        validated: List[WorkerOutcome] = []
        for outcome in definitive:
            # validation runs in the parent after the race; bound it by the
            # same per-run budget the workers had
            validation = validate_result(system, outcome.result, timeout=self.timeout)
            verdicts[outcome.label] = {
                "claimed": outcome.result.status,
                "certified": validation.ok,
                "reason": validation.reason,
            }
            if validation.ok:
                validated.append(outcome)
        detail["adjudication"] = verdicts
        validated_statuses = {outcome.result.status for outcome in validated}
        if len(validated_statuses) != 1:
            return None
        return min(validated, key=lambda outcome: outcome.runtime)

    @staticmethod
    def _property_name(
        property_name: Optional[str], outcomes: Sequence[WorkerOutcome]
    ) -> str:
        if property_name:
            return property_name
        for outcome in outcomes:
            if outcome.result is not None and outcome.result.property_name:
                return outcome.result.property_name
        return ""


def run_portfolio(
    task: VerificationTask,
    property_name: Optional[str] = None,
    **runner_options,
) -> PortfolioResult:
    """Convenience wrapper: build a :class:`PortfolioRunner` and run it once."""
    return PortfolioRunner(**runner_options).run(task, property_name)
