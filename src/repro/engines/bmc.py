"""Bounded model checking.

BMC is the bounded substrate underneath several unbounded techniques in the
paper (the base case of k-induction, the counterexample checks of the
interpolation and kIkI engines).  On its own it can only refute properties —
exactly the limitation the paper's unbounded techniques remove — so the
stand-alone engine returns ``UNKNOWN`` when no violation is found within the
bound.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.certs import witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import FrameEncoder
from repro.engines.result import Budget, Status, VerificationResult
from repro.netlist import TransitionSystem
from repro.smt import BVResult


class BMCEngine(Engine):
    """Incremental bounded model checker.

    Parameters
    ----------
    system:
        The design under verification.
    max_bound:
        Deepest unrolling to try.
    representation:
        ``"word"`` or ``"bit"`` (see :class:`repro.engines.encoding.FrameEncoder`).
    """

    name = "bmc"
    capabilities = EngineCapabilities(
        can_prove=False, can_refute=True, representations=("word", "bit")
    )

    def __init__(
        self,
        system: TransitionSystem,
        max_bound: int = 128,
        representation: str = "word",
        incremental_template: bool = True,
    ) -> None:
        super().__init__(system)
        self.max_bound = max_bound
        self.representation = representation
        self.incremental_template = incremental_template

    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        """Search for a violation of ``property_name`` up to ``max_bound`` cycles."""
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        encoder = FrameEncoder(
            self.system,
            representation=self.representation,
            incremental_template=self.incremental_template,
        )
        encoder.solver.set_deadline(budget.deadline)
        encoder.assert_init(0)

        start = time.monotonic()
        for bound in range(self.max_bound + 1):
            if budget.expired():
                return VerificationResult(
                    Status.TIMEOUT,
                    self.name,
                    property_name,
                    runtime=budget.elapsed(),
                    detail={"bound_reached": bound},
                )
            property_literal = encoder.property_literal(property_name, bound)
            outcome = encoder.solver.check(assumptions=[-property_literal])
            if outcome == BVResult.SAT:
                cex = encoder.extract_counterexample(property_name, bound)
                return VerificationResult(
                    Status.UNSAFE,
                    self.name,
                    property_name,
                    runtime=time.monotonic() - start,
                    counterexample=cex,
                    detail={"bound": bound},
                    certificate=witness_from_counterexample(self.system, self.name, cex),
                )
            if outcome == BVResult.UNKNOWN:
                return VerificationResult(
                    Status.TIMEOUT,
                    self.name,
                    property_name,
                    runtime=budget.elapsed(),
                    detail={"bound_reached": bound},
                )
            encoder.assert_trans(bound)

        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            detail={"bound_reached": self.max_bound},
            reason=f"no counterexample within {self.max_bound} cycles",
        )
