"""Bounded model checking.

BMC is the bounded substrate underneath several unbounded techniques in the
paper (the base case of k-induction, the counterexample checks of the
interpolation and kIkI engines).  On its own it can only refute properties —
exactly the limitation the paper's unbounded techniques remove — so the
stand-alone engine returns ``UNKNOWN`` when no violation is found within the
bound.

With ``persistent_session=True`` (the default) one solver serves the whole
deepening run: each bound extends the unrolling of the previous one, so the
learned clauses, variable activities and saved phases accumulated at bound
``k`` accelerate the check at ``k + 1``.  The legacy path
(``persistent_session=False``) rebuilds a fresh solver per bound — the
quadratic re-encode/re-solve behaviour of a non-incremental implementation —
and is kept for cross-checking and as the benchmark baseline.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.certs import witness_from_counterexample
from repro.engines.base import Engine, EngineCapabilities
from repro.engines.encoding import FrameEncoder
from repro.engines.result import Budget, Status, VerificationResult
from repro.netlist import TransitionSystem
from repro.obs import telemetry as _telemetry
from repro.sat.solver import SolverStats
from repro.smt import BVResult


class BMCEngine(Engine):
    """Incremental bounded model checker.

    Parameters
    ----------
    system:
        The design under verification.
    max_bound:
        Deepest unrolling to try.
    representation:
        ``"word"`` or ``"bit"`` (see :class:`repro.engines.encoding.FrameEncoder`).
    persistent_session:
        Reuse one solver across all bounds (default).  ``False`` rebuilds a
        fresh solver per bound (cross-check / benchmark baseline).
    """

    name = "bmc"
    capabilities = EngineCapabilities(
        can_prove=False, can_refute=True, representations=("word", "bit"), cost="cheap"
    )

    def __init__(
        self,
        system: TransitionSystem,
        max_bound: int = 128,
        representation: str = "word",
        incremental_template: bool = True,
        persistent_session: bool = True,
    ) -> None:
        super().__init__(system)
        self.max_bound = max_bound
        self.representation = representation
        self.incremental_template = incremental_template
        self.persistent_session = persistent_session

    def verify(
        self, property_name: Optional[str] = None, timeout: Optional[float] = None
    ) -> VerificationResult:
        """Search for a violation of ``property_name`` up to ``max_bound`` cycles."""
        budget = Budget(timeout)
        property_name = self.default_property(property_name)
        start = time.monotonic()
        stats = SolverStats()

        encoder: Optional[FrameEncoder] = None
        for bound in range(self.max_bound + 1):
            with _telemetry.span("engine.bmc.bound", k=bound) as bound_span:
                if budget.expired():
                    if encoder is not None:
                        stats.add(encoder.solver.stats)
                    bound_span.set_outcome("timeout")
                    return self._timeout(property_name, budget, bound, stats)
                if self.persistent_session:
                    if encoder is None:
                        encoder = self._new_encoder(budget)
                        encoder.assert_init(0)
                else:
                    # legacy: a fresh solver per bound, re-unrolled from scratch
                    if encoder is not None:
                        stats.add(encoder.solver.stats)
                    encoder = self._new_encoder(budget)
                    encoder.assert_init(0)
                    for frame in range(bound):
                        encoder.assert_trans(frame)
                property_literal = encoder.property_literal(property_name, bound)
                outcome = encoder.solver.check(assumptions=[-property_literal])
                if outcome == BVResult.SAT:
                    stats.add(encoder.solver.stats)
                    cex = encoder.extract_counterexample(property_name, bound)
                    bound_span.set_outcome("unsafe")
                    return VerificationResult(
                        Status.UNSAFE,
                        self.name,
                        property_name,
                        runtime=time.monotonic() - start,
                        counterexample=cex,
                        detail={"bound": bound, "solver_stats": stats.as_dict()},
                        certificate=witness_from_counterexample(self.system, self.name, cex),
                    )
                if outcome == BVResult.UNKNOWN:
                    stats.add(encoder.solver.stats)
                    bound_span.set_outcome("timeout")
                    return self._timeout(property_name, budget, bound, stats)
                if self.persistent_session:
                    encoder.assert_trans(bound)

        if encoder is not None:
            stats.add(encoder.solver.stats)
        return VerificationResult(
            Status.UNKNOWN,
            self.name,
            property_name,
            runtime=time.monotonic() - start,
            detail={"bound_reached": self.max_bound, "solver_stats": stats.as_dict()},
            reason=f"no counterexample within {self.max_bound} cycles",
        )

    # ------------------------------------------------------------------
    def _new_encoder(self, budget: Budget) -> FrameEncoder:
        encoder = FrameEncoder(
            self.system,
            representation=self.representation,
            incremental_template=self.incremental_template,
        )
        encoder.solver.set_deadline(budget.deadline)
        return encoder

    def _timeout(
        self, property_name: str, budget: Budget, bound: int, stats: SolverStats
    ) -> VerificationResult:
        return VerificationResult(
            Status.TIMEOUT,
            self.name,
            property_name,
            runtime=budget.elapsed(),
            detail={"bound_reached": bound, "solver_stats": stats.as_dict()},
        )
