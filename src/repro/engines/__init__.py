"""Unbounded verification engines.

Every engine analyses the same word-level transition system (the software
netlist's semantics) and returns a :class:`repro.engines.result.VerificationResult`.
The engines implement the technique families the paper compares:

==================  ============================================  ==============================
family              module                                        paper tools emulated
==================  ============================================  ==============================
bounded search      :mod:`repro.engines.bmc`                      (substrate for the others)
k-induction         :mod:`repro.engines.kinduction`               ABC-kind, EBMC-kind, CBMC-kind
interpolation       :mod:`repro.engines.interpolation`            ABC-interpolation, CPA-interp.
IMPACT              :mod:`repro.engines.impact`                   IMPARA
IC3 / PDR           :mod:`repro.engines.pdr`                      ABC-pdr, SeaHorn-pdr
predicate abstr.    :mod:`repro.engines.predabs`                  CPAChecker predicate abstraction
abstract interp.    :mod:`repro.engines.absint`                   Astrée
kIkI                :mod:`repro.engines.kiki`                     2LS
==================  ============================================  ==============================
"""

from repro.engines.result import Status, VerificationResult, Counterexample
from repro.engines.base import Engine, EngineCapabilities, EngineOptionError
from repro.engines.encoding import FrameEncoder
from repro.engines.bmc import BMCEngine
from repro.engines.kinduction import KInductionEngine
from repro.engines.interpolation import InterpolationEngine
from repro.engines.pdr import PDREngine
from repro.engines.impact import ImpactEngine
from repro.engines.predabs import PredicateAbstractionEngine
from repro.engines.absint import AbstractInterpretationEngine
from repro.engines.kiki import KikiEngine
from repro.engines.oracle import OracleEngine
from repro.engines.rsim import RandomSimulationEngine
from repro.engines.registry import (
    ENGINE_REGISTRY,
    EngineRegistration,
    get_registration,
    list_engines,
    make_engine,
)
from repro.engines.portfolio import (
    LadderRung,
    PortfolioConfig,
    PortfolioResult,
    PortfolioRunner,
    VerificationTask,
    WorkerOutcome,
    default_budget_ladder,
    default_portfolio_configs,
    learn_priors,
    run_portfolio,
)
from repro.engines.batch import BatchItem, BatchReport, BatchRunner
from repro.engines.supervision import (
    RetryPolicy,
    SupervisedOutcome,
    WorkerSupervisor,
)

__all__ = [
    "Status",
    "VerificationResult",
    "Counterexample",
    "Engine",
    "EngineCapabilities",
    "EngineOptionError",
    "FrameEncoder",
    "BMCEngine",
    "KInductionEngine",
    "InterpolationEngine",
    "PDREngine",
    "ImpactEngine",
    "PredicateAbstractionEngine",
    "AbstractInterpretationEngine",
    "KikiEngine",
    "OracleEngine",
    "RandomSimulationEngine",
    "ENGINE_REGISTRY",
    "EngineRegistration",
    "get_registration",
    "list_engines",
    "make_engine",
    "LadderRung",
    "PortfolioConfig",
    "PortfolioResult",
    "PortfolioRunner",
    "VerificationTask",
    "WorkerOutcome",
    "default_budget_ladder",
    "default_portfolio_configs",
    "learn_priors",
    "run_portfolio",
    "BatchItem",
    "BatchReport",
    "BatchRunner",
    "RetryPolicy",
    "SupervisedOutcome",
    "WorkerSupervisor",
]
