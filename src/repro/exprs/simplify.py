"""Light-weight expression simplification.

The simplifier performs constant folding and a handful of algebraic rewrites
(identity/annihilator elimination, double negation, ITE pruning).  It is used
by the synthesizer to keep transition functions compact before bit-blasting,
and by the unbounded engines when they build frames and interpolants.

The rewrites are deliberately local and purely structural: each returns an
expression that evaluates identically on every assignment, which is checked by
property-based tests in ``tests/test_exprs_properties.py``.
"""

from __future__ import annotations

from typing import Dict

from repro.exprs.evaluate import evaluate
from repro.exprs.nodes import Const, Expr, Op, Var, mask


def constant_fold(expr: Expr) -> Expr:
    """Fold an expression whose leaves are all constants into a single constant.

    Non-constant expressions are returned unchanged.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return expr
    assert isinstance(expr, Op)
    if all(isinstance(arg, Const) for arg in expr.args):
        value = evaluate(expr, {})
        return Const(value, expr.width)
    return expr


def simplify(expr: Expr) -> Expr:
    """Simplify ``expr`` bottom-up with constant folding and algebraic rules."""
    cache: Dict[int, Expr] = {}

    def rec(node: Expr) -> Expr:
        key = id(node)
        if key in cache:
            return cache[key]
        if isinstance(node, (Const, Var)):
            result: Expr = node
        else:
            assert isinstance(node, Op)
            new_args = tuple(rec(arg) for arg in node.args)
            if all(new is old for new, old in zip(new_args, node.args)):
                rebuilt = node
            else:
                rebuilt = Op(node.op, new_args, node.width, node.params)
            result = _simplify_node(rebuilt)
        cache[key] = result
        return result

    return rec(expr)


def _is_zero(node: Expr) -> bool:
    return isinstance(node, Const) and node.value == 0


def _is_ones(node: Expr) -> bool:
    return isinstance(node, Const) and node.value == mask(node.width)


def _simplify_node(node: Op) -> Expr:
    folded = constant_fold(node)
    if isinstance(folded, Const):
        return folded

    op = node.op
    args = node.args

    if op == "and":
        a, b = args
        if _is_zero(a) or _is_zero(b):
            return Const(0, node.width)
        if _is_ones(a):
            return b
        if _is_ones(b):
            return a
        if a == b:
            return a
    elif op == "or":
        a, b = args
        if _is_ones(a) or _is_ones(b):
            return Const(mask(node.width), node.width)
        if _is_zero(a):
            return b
        if _is_zero(b):
            return a
        if a == b:
            return a
    elif op == "xor":
        a, b = args
        if _is_zero(a):
            return b
        if _is_zero(b):
            return a
        if a == b:
            return Const(0, node.width)
    elif op == "add":
        a, b = args
        if _is_zero(a):
            return b
        if _is_zero(b):
            return a
    elif op == "sub":
        a, b = args
        if _is_zero(b):
            return a
        if a == b:
            return Const(0, node.width)
    elif op == "mul":
        a, b = args
        if _is_zero(a) or _is_zero(b):
            return Const(0, node.width)
        if isinstance(a, Const) and a.value == 1:
            return b
        if isinstance(b, Const) and b.value == 1:
            return a
    elif op == "not":
        (a,) = args
        if isinstance(a, Op) and a.op == "not":
            return a.args[0]
    elif op == "ite":
        cond, then_e, else_e = args
        if isinstance(cond, Const):
            return then_e if cond.value else else_e
        if then_e == else_e:
            return then_e
        # ite(c, 1, 0) on 1-bit values is just c
        if (
            node.width == 1
            and isinstance(then_e, Const)
            and isinstance(else_e, Const)
            and then_e.value == 1
            and else_e.value == 0
        ):
            return cond
    elif op == "eq":
        a, b = args
        if a == b:
            return Const(1, 1)
    elif op == "ne":
        a, b = args
        if a == b:
            return Const(0, 1)
    elif op in ("zext", "sext"):
        (a,) = args
        if isinstance(a, Const):
            return constant_fold(node)
    elif op == "extract":
        (a,) = args
        hi, lo = node.params
        # extract of a concat of two parts that lands entirely in one part
        if isinstance(a, Op) and a.op == "zext" and hi < a.args[0].width:
            inner = a.args[0]
            if lo == 0 and hi == inner.width - 1:
                return inner
            return Op("extract", (inner,), hi - lo + 1, params=(hi, lo))

    return node
