"""Structural traversals over expressions: substitution, variable collection,
size and depth metrics.
"""

from __future__ import annotations

from typing import Dict, Mapping, Set

from repro.exprs.nodes import Const, Expr, Op, Var


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace every variable whose name is in ``mapping`` by the given expression.

    Width compatibility is enforced: a replacement must have the same width as
    the variable it replaces.
    """
    cache: Dict[int, Expr] = {}

    def rec(node: Expr) -> Expr:
        key = id(node)
        if key in cache:
            return cache[key]
        result = _subst_node(node, mapping, rec)
        cache[key] = result
        return result

    return rec(expr)


def _subst_node(node: Expr, mapping: Mapping[str, Expr], rec) -> Expr:
    if isinstance(node, Const):
        return node
    if isinstance(node, Var):
        replacement = mapping.get(node.name)
        if replacement is None:
            return node
        if replacement.width != node.width:
            raise ValueError(
                f"substitution width mismatch for {node.name}: "
                f"{node.width} vs {replacement.width}"
            )
        return replacement
    assert isinstance(node, Op)
    new_args = tuple(rec(arg) for arg in node.args)
    if all(new is old for new, old in zip(new_args, node.args)):
        return node
    return Op(node.op, new_args, node.width, node.params)


def rename(expr: Expr, rename_fn) -> Expr:
    """Rename every variable through ``rename_fn(name) -> new name``."""
    cache: Dict[int, Expr] = {}

    def rec(node: Expr) -> Expr:
        key = id(node)
        if key in cache:
            return cache[key]
        if isinstance(node, Const):
            result: Expr = node
        elif isinstance(node, Var):
            result = Var(rename_fn(node.name), node.width)
        else:
            assert isinstance(node, Op)
            new_args = tuple(rec(arg) for arg in node.args)
            result = Op(node.op, new_args, node.width, node.params)
        cache[key] = result
        return result

    return rec(expr)


def collect_vars(expr: Expr) -> Set[Var]:
    """Return the set of variables occurring in ``expr``."""
    seen: Set[int] = set()
    found: Set[Var] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Var):
            found.add(node)
        elif isinstance(node, Op):
            stack.extend(node.args)
    return found


def expr_size(expr: Expr) -> int:
    """Return the number of distinct nodes in the expression DAG."""
    seen: Set[int] = set()
    stack = [expr]
    count = 0
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        count += 1
        if isinstance(node, Op):
            stack.extend(node.args)
    return count


def expr_depth(expr: Expr) -> int:
    """Return the height of the expression tree (leaves have depth 1)."""
    cache: Dict[int, int] = {}

    def rec(node: Expr) -> int:
        key = id(node)
        if key in cache:
            return cache[key]
        if isinstance(node, Op) and node.args:
            depth = 1 + max(rec(arg) for arg in node.args)
        else:
            depth = 1
        cache[key] = depth
        return depth

    return rec(expr)
