"""Expression node classes and smart constructors.

The IR is a small fixed-width bit-vector language.  Every expression has a
bit-width (``width``); the 1-bit width doubles as the Boolean sort.  Nodes are
immutable and hashable so they can be shared, cached and used as dictionary
keys throughout the tool flow.

Operator set
------------

========== ================================ =========================
kind       operators                         result width
========== ================================ =========================
bitwise    not, and, or, xor, xnor, nand,    width of operands
           nor
arithmetic neg, add, sub, mul, udiv, urem    width of operands
shifts     shl, lshr, ashr                   width of first operand
compare    eq, ne, ult, ule, ugt, uge,       1
           slt, sle, sgt, sge
reduction  redand, redor, redxor             1
structure  concat, extract, zext, sext, ite  as constructed
========== ================================ =========================

All arithmetic is modular in the operand width.  Signed comparisons interpret
operands in two's complement.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union


# ---------------------------------------------------------------------------
# helper arithmetic on Python ints
# ---------------------------------------------------------------------------


def mask(width: int) -> int:
    """Return the all-ones bit mask for ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return (1 << width) - 1


def to_unsigned(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits, interpreted as unsigned."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as a two's-complement int."""
    value = value & mask(width)
    if value >= (1 << (width - 1)) and width > 0:
        return value - (1 << width)
    return value


# ---------------------------------------------------------------------------
# node classes
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all expression nodes.

    Subclasses are :class:`Const`, :class:`Var` and :class:`Op`.  Instances
    are immutable; convenience Python operators build new nodes (``a + b`` is
    ``bv_add(a, b)``, ``a & b`` is ``bv_and(a, b)``, ...).
    """

    __slots__ = ("width", "_hash")

    width: int

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"expression width must be positive, got {width}")
        object.__setattr__(self, "width", width)

    # immutability ---------------------------------------------------------
    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Expr nodes are immutable")

    # operator sugar ---------------------------------------------------------
    def __add__(self, other: "ExprLike") -> "Expr":
        return bv_add(self, coerce(other, self.width))

    def __sub__(self, other: "ExprLike") -> "Expr":
        return bv_sub(self, coerce(other, self.width))

    def __mul__(self, other: "ExprLike") -> "Expr":
        return bv_mul(self, coerce(other, self.width))

    def __and__(self, other: "ExprLike") -> "Expr":
        return bv_and(self, coerce(other, self.width))

    def __or__(self, other: "ExprLike") -> "Expr":
        return bv_or(self, coerce(other, self.width))

    def __xor__(self, other: "ExprLike") -> "Expr":
        return bv_xor(self, coerce(other, self.width))

    def __invert__(self) -> "Expr":
        return bv_not(self)

    def __neg__(self) -> "Expr":
        return bv_neg(self)

    def __lshift__(self, other: "ExprLike") -> "Expr":
        return bv_shl(self, coerce(other, self.width))

    def __rshift__(self, other: "ExprLike") -> "Expr":
        return bv_lshr(self, coerce(other, self.width))

    def eq(self, other: "ExprLike") -> "Expr":
        """Equality comparison, returning a 1-bit expression."""
        return bv_eq(self, coerce(other, self.width))

    def ne(self, other: "ExprLike") -> "Expr":
        """Disequality comparison, returning a 1-bit expression."""
        return bv_ne(self, coerce(other, self.width))

    def ult(self, other: "ExprLike") -> "Expr":
        return bv_ult(self, coerce(other, self.width))

    def ule(self, other: "ExprLike") -> "Expr":
        return bv_ule(self, coerce(other, self.width))

    def ugt(self, other: "ExprLike") -> "Expr":
        return bv_ugt(self, coerce(other, self.width))

    def uge(self, other: "ExprLike") -> "Expr":
        return bv_uge(self, coerce(other, self.width))

    def extract(self, hi: int, lo: int) -> "Expr":
        """Extract bit slice ``[hi:lo]`` (inclusive) as in Verilog part-select."""
        return bv_extract(self, hi, lo)

    def bit(self, index: int) -> "Expr":
        """Extract a single bit as a 1-bit expression."""
        return bv_extract(self, index, index)

    def children(self) -> Tuple["Expr", ...]:
        """Return the child expressions (empty for leaves)."""
        return ()

    def is_const(self, value: int | None = None) -> bool:
        """Return True if this node is a constant (optionally of a given value)."""
        return False


class Const(Expr):
    """Bit-vector constant of a fixed width."""

    __slots__ = ("value",)

    def __init__(self, value: int, width: int):
        super().__init__(width)
        object.__setattr__(self, "value", to_unsigned(int(value), width))
        object.__setattr__(self, "_hash", hash(("const", self.value, width)))

    def __repr__(self) -> str:
        return f"{self.width}'d{self.value}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Const)
            and other.value == self.value
            and other.width == self.width
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # slots + the defensive __setattr__ break default pickling; rebuild
        # through the constructor instead (certificates cross process
        # boundaries in the portfolio)
        return (Const, (self.value, self.width))

    def is_const(self, value: int | None = None) -> bool:
        return value is None or self.value == value


class Var(Expr):
    """Named bit-vector variable (a wire, register or input signal)."""

    __slots__ = ("name",)

    def __init__(self, name: str, width: int):
        super().__init__(width)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("var", name, width)))

    def __repr__(self) -> str:
        return f"{self.name}[{self.width}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Var)
            and other.name == self.name
            and other.width == self.width
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Var, (self.name, self.width))


class Op(Expr):
    """Operator application node.

    ``op`` is one of the strings in :data:`BV_OPS`; ``args`` are the child
    expressions and ``params`` carries integer parameters (the ``hi``/``lo``
    bounds of an extract, the extension amount of zext/sext).
    """

    __slots__ = ("op", "args", "params")

    def __init__(self, op: str, args: Iterable[Expr], width: int, params: Tuple[int, ...] = ()):
        super().__init__(width)
        args = tuple(args)
        if op not in BV_OPS:
            raise ValueError(f"unknown operator {op!r}")
        for arg in args:
            if not isinstance(arg, Expr):
                raise TypeError(f"operator argument must be Expr, got {type(arg)!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "params", tuple(params))
        object.__setattr__(self, "_hash", hash((op, args, width, self.params)))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        if self.params:
            inner += ", " + ", ".join(str(p) for p in self.params)
        return f"{self.op}({inner})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Op)
            and other.op == self.op
            and other.width == self.width
            and other.params == self.params
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Op, (self.op, self.args, self.width, self.params))

    def children(self) -> Tuple[Expr, ...]:
        return self.args


ExprLike = Union[Expr, int, bool]

#: The set of all operator names accepted by :class:`Op`.
BV_OPS = frozenset(
    {
        # bitwise
        "not",
        "and",
        "or",
        "xor",
        "xnor",
        "nand",
        "nor",
        # arithmetic
        "neg",
        "add",
        "sub",
        "mul",
        "udiv",
        "urem",
        # shifts
        "shl",
        "lshr",
        "ashr",
        # comparisons (result width 1)
        "eq",
        "ne",
        "ult",
        "ule",
        "ugt",
        "uge",
        "slt",
        "sle",
        "sgt",
        "sge",
        # reductions (result width 1)
        "redand",
        "redor",
        "redxor",
        # structural
        "concat",
        "extract",
        "zext",
        "sext",
        "ite",
    }
)

#: Boolean sort width.
BOOL = 1

#: The constant true / false 1-bit expressions.
TRUE = Const(1, 1)
FALSE = Const(0, 1)


def coerce(value: ExprLike, width: int) -> Expr:
    """Coerce a Python int/bool to a constant of ``width``; pass Exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value), width)
    if isinstance(value, int):
        return Const(value, width)
    raise TypeError(f"cannot coerce {value!r} to an expression")


# ---------------------------------------------------------------------------
# smart constructors
# ---------------------------------------------------------------------------


def bv_const(value: int, width: int) -> Const:
    """Build a constant of the given value and width."""
    return Const(value, width)


def bv_var(name: str, width: int) -> Var:
    """Build a named variable of the given width."""
    return Var(name, width)


def _require_same_width(a: Expr, b: Expr, op: str) -> None:
    if a.width != b.width:
        raise ValueError(f"{op}: operand widths differ ({a.width} vs {b.width})")


def _binary(op: str, a: Expr, b: Expr, width: int | None = None) -> Expr:
    _require_same_width(a, b, op)
    return Op(op, (a, b), width if width is not None else a.width)


def bv_not(a: Expr) -> Expr:
    """Bitwise complement."""
    return Op("not", (a,), a.width)


def bv_neg(a: Expr) -> Expr:
    """Two's-complement negation."""
    return Op("neg", (a,), a.width)


def bv_and(a: Expr, b: Expr) -> Expr:
    return _binary("and", a, b)


def bv_or(a: Expr, b: Expr) -> Expr:
    return _binary("or", a, b)


def bv_xor(a: Expr, b: Expr) -> Expr:
    return _binary("xor", a, b)


def bv_xnor(a: Expr, b: Expr) -> Expr:
    return _binary("xnor", a, b)


def bv_nand(a: Expr, b: Expr) -> Expr:
    return _binary("nand", a, b)


def bv_nor(a: Expr, b: Expr) -> Expr:
    return _binary("nor", a, b)


def bv_add(a: Expr, b: Expr) -> Expr:
    return _binary("add", a, b)


def bv_sub(a: Expr, b: Expr) -> Expr:
    return _binary("sub", a, b)


def bv_mul(a: Expr, b: Expr) -> Expr:
    return _binary("mul", a, b)


def bv_udiv(a: Expr, b: Expr) -> Expr:
    """Unsigned division; division by zero yields the all-ones vector."""
    return _binary("udiv", a, b)


def bv_urem(a: Expr, b: Expr) -> Expr:
    """Unsigned remainder; remainder by zero yields the dividend."""
    return _binary("urem", a, b)


def bv_shl(a: Expr, b: Expr) -> Expr:
    """Logical shift left; shift amounts >= width yield zero."""
    return Op("shl", (a, b), a.width)


def bv_lshr(a: Expr, b: Expr) -> Expr:
    """Logical shift right."""
    return Op("lshr", (a, b), a.width)


def bv_ashr(a: Expr, b: Expr) -> Expr:
    """Arithmetic shift right (sign-preserving)."""
    return Op("ashr", (a, b), a.width)


def bv_concat(*parts: Expr) -> Expr:
    """Concatenate bit-vectors; the first argument forms the most significant bits."""
    parts = tuple(parts)
    if not parts:
        raise ValueError("concat requires at least one operand")
    if len(parts) == 1:
        return parts[0]
    width = sum(p.width for p in parts)
    return Op("concat", parts, width)


def bv_extract(a: Expr, hi: int, lo: int) -> Expr:
    """Extract bits ``hi`` down to ``lo`` (inclusive, Verilog-style part-select)."""
    if not (0 <= lo <= hi < a.width):
        raise ValueError(f"extract [{hi}:{lo}] out of range for width {a.width}")
    if lo == 0 and hi == a.width - 1:
        return a
    return Op("extract", (a,), hi - lo + 1, params=(hi, lo))


def bv_zero_extend(a: Expr, extra: int) -> Expr:
    """Zero-extend by ``extra`` bits."""
    if extra < 0:
        raise ValueError("zero_extend amount must be non-negative")
    if extra == 0:
        return a
    return Op("zext", (a,), a.width + extra, params=(extra,))


def bv_sign_extend(a: Expr, extra: int) -> Expr:
    """Sign-extend by ``extra`` bits."""
    if extra < 0:
        raise ValueError("sign_extend amount must be non-negative")
    if extra == 0:
        return a
    return Op("sext", (a,), a.width + extra, params=(extra,))


def bv_resize(a: Expr, width: int, signed: bool = False) -> Expr:
    """Resize ``a`` to ``width`` bits by truncation or (zero/sign) extension."""
    if width == a.width:
        return a
    if width < a.width:
        return bv_extract(a, width - 1, 0)
    if signed:
        return bv_sign_extend(a, width - a.width)
    return bv_zero_extend(a, width - a.width)


def bv_eq(a: Expr, b: Expr) -> Expr:
    return _binary("eq", a, b, width=1)


def bv_ne(a: Expr, b: Expr) -> Expr:
    return _binary("ne", a, b, width=1)


def bv_ult(a: Expr, b: Expr) -> Expr:
    return _binary("ult", a, b, width=1)


def bv_ule(a: Expr, b: Expr) -> Expr:
    return _binary("ule", a, b, width=1)


def bv_ugt(a: Expr, b: Expr) -> Expr:
    return _binary("ugt", a, b, width=1)


def bv_uge(a: Expr, b: Expr) -> Expr:
    return _binary("uge", a, b, width=1)


def bv_slt(a: Expr, b: Expr) -> Expr:
    return _binary("slt", a, b, width=1)


def bv_sle(a: Expr, b: Expr) -> Expr:
    return _binary("sle", a, b, width=1)


def bv_sgt(a: Expr, b: Expr) -> Expr:
    return _binary("sgt", a, b, width=1)


def bv_sge(a: Expr, b: Expr) -> Expr:
    return _binary("sge", a, b, width=1)


def bv_ite(cond: Expr, then_expr: Expr, else_expr: Expr) -> Expr:
    """If-then-else; ``cond`` must be a 1-bit expression."""
    if cond.width != 1:
        cond = bv_ne(cond, Const(0, cond.width))
    _require_same_width(then_expr, else_expr, "ite")
    return Op("ite", (cond, then_expr, else_expr), then_expr.width)


def bv_reduce_and(a: Expr) -> Expr:
    """Verilog ``&a`` reduction."""
    return Op("redand", (a,), 1)


def bv_reduce_or(a: Expr) -> Expr:
    """Verilog ``|a`` reduction."""
    return Op("redor", (a,), 1)


def bv_reduce_xor(a: Expr) -> Expr:
    """Verilog ``^a`` reduction (parity)."""
    return Op("redxor", (a,), 1)


# ---------------------------------------------------------------------------
# Boolean helpers (1-bit expressions)
# ---------------------------------------------------------------------------


def to_bool(a: Expr) -> Expr:
    """Convert a bit-vector to its Verilog truth value (non-zero test)."""
    if a.width == 1:
        return a
    return bv_ne(a, Const(0, a.width))


def bool_not(a: Expr) -> Expr:
    """Logical negation of a truth value."""
    return bv_not(to_bool(a))


def bool_and(*args: Expr) -> Expr:
    """Logical conjunction of truth values (n-ary, identity TRUE)."""
    result: Expr = TRUE
    for arg in args:
        result = bv_and(result, to_bool(arg))
    return result


def bool_or(*args: Expr) -> Expr:
    """Logical disjunction of truth values (n-ary, identity FALSE)."""
    result: Expr = FALSE
    for arg in args:
        result = bv_or(result, to_bool(arg))
    return result


def bool_xor(a: Expr, b: Expr) -> Expr:
    """Logical exclusive-or of truth values."""
    return bv_xor(to_bool(a), to_bool(b))


def bool_implies(a: Expr, b: Expr) -> Expr:
    """Logical implication ``a -> b`` of truth values."""
    return bool_or(bool_not(a), to_bool(b))
