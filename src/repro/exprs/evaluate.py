"""Concrete evaluation of expressions under a variable assignment.

Evaluation implements the same semantics that the bit-blaster and the
generated ANSI-C software-netlist use, so it serves as the reference model in
equivalence tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.exprs.nodes import Const, Expr, Op, Var, mask, to_signed, to_unsigned


class EvaluationError(Exception):
    """Raised when an expression cannot be evaluated (e.g. an unbound variable)."""


def _shift_amount(value: int) -> int:
    return value


def _eval_udiv(a: int, b: int, width: int) -> int:
    # Division by zero yields all-ones, matching SMT-LIB bvudiv and the
    # behaviour the C code generator emits (guarded division).
    if b == 0:
        return mask(width)
    return a // b


def _eval_urem(a: int, b: int, width: int) -> int:
    if b == 0:
        return a
    return a % b


_BINARY_EVAL: Dict[str, Callable[[int, int, int], int]] = {
    "and": lambda a, b, w: a & b,
    "or": lambda a, b, w: a | b,
    "xor": lambda a, b, w: a ^ b,
    "xnor": lambda a, b, w: to_unsigned(~(a ^ b), w),
    "nand": lambda a, b, w: to_unsigned(~(a & b), w),
    "nor": lambda a, b, w: to_unsigned(~(a | b), w),
    "add": lambda a, b, w: to_unsigned(a + b, w),
    "sub": lambda a, b, w: to_unsigned(a - b, w),
    "mul": lambda a, b, w: to_unsigned(a * b, w),
    "udiv": _eval_udiv,
    "urem": _eval_urem,
    "eq": lambda a, b, w: int(a == b),
    "ne": lambda a, b, w: int(a != b),
    "ult": lambda a, b, w: int(a < b),
    "ule": lambda a, b, w: int(a <= b),
    "ugt": lambda a, b, w: int(a > b),
    "uge": lambda a, b, w: int(a >= b),
}


def evaluate(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate ``expr`` under ``env`` (variable name -> unsigned value).

    The result is the unsigned value of the expression, truncated to its
    width.  Raises :class:`EvaluationError` for unbound variables.
    """
    cache: Dict[int, int] = {}

    def rec(node: Expr) -> int:
        key = id(node)
        if key in cache:
            return cache[key]
        value = _eval_node(node, env, rec)
        cache[key] = value
        return value

    return rec(expr)


def _eval_node(node: Expr, env: Mapping[str, int], rec) -> int:
    if isinstance(node, Const):
        return node.value
    if isinstance(node, Var):
        if node.name not in env:
            raise EvaluationError(f"unbound variable {node.name!r}")
        return to_unsigned(int(env[node.name]), node.width)
    assert isinstance(node, Op)
    op = node.op
    width = node.width

    if op in _BINARY_EVAL:
        a = rec(node.args[0])
        b = rec(node.args[1])
        operand_width = node.args[0].width
        if op in ("xnor", "nand", "nor", "add", "sub", "mul", "udiv", "urem"):
            return _BINARY_EVAL[op](a, b, operand_width)
        return _BINARY_EVAL[op](a, b, operand_width)

    if op == "not":
        return to_unsigned(~rec(node.args[0]), width)
    if op == "neg":
        return to_unsigned(-rec(node.args[0]), width)
    if op == "shl":
        a = rec(node.args[0])
        sh = rec(node.args[1])
        if sh >= width:
            return 0
        return to_unsigned(a << sh, width)
    if op == "lshr":
        a = rec(node.args[0])
        sh = rec(node.args[1])
        if sh >= width:
            return 0
        return a >> sh
    if op == "ashr":
        a = to_signed(rec(node.args[0]), node.args[0].width)
        sh = rec(node.args[1])
        if sh >= width:
            sh = width
        return to_unsigned(a >> sh, width)
    if op in ("slt", "sle", "sgt", "sge"):
        operand_width = node.args[0].width
        a = to_signed(rec(node.args[0]), operand_width)
        b = to_signed(rec(node.args[1]), operand_width)
        if op == "slt":
            return int(a < b)
        if op == "sle":
            return int(a <= b)
        if op == "sgt":
            return int(a > b)
        return int(a >= b)
    if op == "redand":
        a = rec(node.args[0])
        return int(a == mask(node.args[0].width))
    if op == "redor":
        a = rec(node.args[0])
        return int(a != 0)
    if op == "redxor":
        a = rec(node.args[0])
        return bin(a).count("1") & 1
    if op == "concat":
        value = 0
        for arg in node.args:
            value = (value << arg.width) | rec(arg)
        return value
    if op == "extract":
        hi, lo = node.params
        a = rec(node.args[0])
        return (a >> lo) & mask(hi - lo + 1)
    if op == "zext":
        return rec(node.args[0])
    if op == "sext":
        inner = node.args[0]
        value = to_signed(rec(inner), inner.width)
        return to_unsigned(value, width)
    if op == "ite":
        cond = rec(node.args[0])
        return rec(node.args[1]) if cond else rec(node.args[2])

    raise EvaluationError(f"unhandled operator {op!r}")  # pragma: no cover
