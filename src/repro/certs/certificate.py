"""Checkable certificates accompanying definitive engine verdicts.

Every definitive answer of the engine zoo is only as trustworthy as the
engine that produced it — the motivation behind exchangeable verification
witnesses in the software-verification world (CPAchecker-style violation and
correctness witnesses).  This module defines the certificate objects the
engines attach to their :class:`repro.engines.result.VerificationResult`:

* :class:`Witness` — an UNSAFE verdict ships the input trace that drives the
  design from reset into the violation; it is replayed *concretely* through
  :func:`repro.netlist.simulate.replay`.
* :class:`InductiveCertificate` — a SAFE verdict ships a one-step inductive
  invariant ``Inv`` (PDR frame clauses, the interpolation fixpoint ``R``,
  IMPACT's covered labels, predicate-abstraction's reachable abstract states,
  the interval box of abstract interpretation); the validator discharges
  ``Init ⊆ Inv``, ``Inv ∧ T ⊆ Inv′`` and ``Inv ⊆ P`` with fresh SAT queries.
* :class:`KInductiveCertificate` — k-induction and kIkI instead certify that
  the property (optionally strengthened with auxiliary inductive invariants)
  is ``k``-inductive; the validator discharges the base case, the step case
  and the inductiveness of the auxiliary invariants.

All three serialize to a JSON document (``format: repro-cert-v1``) and the
witness additionally exports an AIGER-style ``.cex`` stimulus file (one line
of input bits per cycle, in AIG input order) so bit-level traces can be fed
to external AIGER simulators.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.certs.exprjson import ExprJsonError, expr_from_json, expr_to_json
from repro.exprs import Expr

FORMAT = "repro-cert-v1"

#: certificate kinds
WITNESS = "witness"
INDUCTIVE = "inductive"
K_INDUCTIVE = "k-inductive"


class CertificateError(ValueError):
    """Raised when a certificate document is malformed."""


@dataclass(frozen=True)
class Witness:
    """An input-trace witness for an UNSAFE verdict.

    ``inputs[i]`` fully valuates every primary input at cycle ``i`` (the
    producer defaults unconstrained inputs to 0, so the replay is
    deterministic); the violated property is expected to fail at cycle
    ``len(inputs) - 1``, counting from reset.
    """

    property_name: str
    engine: str
    inputs: Tuple[Mapping[str, int], ...]

    kind = WITNESS

    @property
    def length(self) -> int:
        return len(self.inputs)

    @property
    def violation_cycle(self) -> int:
        return len(self.inputs) - 1

    def input_sequence(self) -> List[Dict[str, int]]:
        """The per-cycle input valuations as plain dicts (simulator food)."""
        return [dict(step) for step in self.inputs]

    def to_json(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "kind": self.kind,
            "property": self.property_name,
            "engine": self.engine,
            "inputs": [dict(step) for step in self.inputs],
        }

    def to_aiger_stimulus(self, aig) -> str:
        """Render the witness as an AIGER stimulus (one '01...' line per cycle).

        Bits follow the AIG's primary-input order; input names are expected
        in the ``name[bit]`` convention of
        :func:`repro.aig.bitblast.aig_from_transition_system`.  Missing
        inputs read as 0, matching the witness semantics.
        """
        lines = []
        for step in self.inputs:
            bits = []
            for literal in aig.inputs:
                name = aig.input_names.get(literal, "")
                base, _, index = name.rpartition("[")
                if base and index.endswith("]"):
                    value = int(step.get(base, 0))
                    bits.append("1" if (value >> int(index[:-1])) & 1 else "0")
                else:
                    bits.append("1" if int(step.get(name, 0)) & 1 else "0")
            lines.append("".join(bits))
        return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class InductiveCertificate:
    """A one-step inductive invariant certifying a SAFE verdict."""

    property_name: str
    engine: str
    invariant: Expr

    kind = INDUCTIVE

    def to_json(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "kind": self.kind,
            "property": self.property_name,
            "engine": self.engine,
            "invariant": expr_to_json(self.invariant),
        }


@dataclass(frozen=True)
class KInductiveCertificate:
    """A k-induction certificate for a SAFE verdict.

    The claim: with the auxiliary ``invariants`` (each jointly inductive,
    checked separately by the validator) assumed in every frame, the property
    holds in the first ``k`` frames from reset and ``k`` consecutive
    property-satisfying frames force the property in the next frame —
    optionally under the simple-path side condition (all states of the
    induction window pairwise distinct).
    """

    property_name: str
    engine: str
    k: int
    simple_path: bool = False
    invariants: Tuple[Expr, ...] = ()

    kind = K_INDUCTIVE

    def to_json(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "kind": self.kind,
            "property": self.property_name,
            "engine": self.engine,
            "k": self.k,
            "simple_path": self.simple_path,
            "invariants": [expr_to_json(inv) for inv in self.invariants],
        }


#: any certificate
Certificate = object  # Witness | InductiveCertificate | KInductiveCertificate


def certificate_to_json(certificate) -> Dict[str, object]:
    """Serialize any certificate kind to its JSON document."""
    return certificate.to_json()


def dumps(certificate, indent: Optional[int] = 2) -> str:
    """Serialize a certificate to a JSON string."""
    return json.dumps(certificate_to_json(certificate), indent=indent) + "\n"


def certificate_from_json(document: Mapping[str, object]):
    """Rebuild a certificate from its JSON document."""
    if not isinstance(document, Mapping):
        raise CertificateError("certificate document must be a JSON object")
    if document.get("format") != FORMAT:
        raise CertificateError(
            f"unsupported certificate format {document.get('format')!r}"
        )
    kind = document.get("kind")
    property_name = document.get("property")
    engine = document.get("engine", "")
    if not isinstance(property_name, str) or not isinstance(engine, str):
        raise CertificateError("certificate property/engine must be strings")
    try:
        if kind == WITNESS:
            inputs = document.get("inputs")
            if not isinstance(inputs, Sequence) or not all(
                isinstance(step, Mapping) for step in inputs
            ):
                raise CertificateError("witness inputs must be a list of objects")
            return Witness(
                property_name,
                engine,
                tuple({str(k): int(v) for k, v in step.items()} for step in inputs),
            )
        if kind == INDUCTIVE:
            return InductiveCertificate(
                property_name, engine, expr_from_json(document.get("invariant"))
            )
        if kind == K_INDUCTIVE:
            k = document.get("k")
            if not isinstance(k, int) or k < 1:
                raise CertificateError("k-inductive certificate needs k >= 1")
            invariants = document.get("invariants", [])
            if not isinstance(invariants, Sequence):
                raise CertificateError("invariants must be a list")
            return KInductiveCertificate(
                property_name,
                engine,
                k,
                bool(document.get("simple_path", False)),
                tuple(expr_from_json(inv) for inv in invariants),
            )
    except ExprJsonError as error:
        raise CertificateError(str(error)) from error
    raise CertificateError(f"unknown certificate kind {kind!r}")


def loads(text: str):
    """Parse a certificate from a JSON string."""
    return certificate_from_json(json.loads(text))


# ---------------------------------------------------------------------------
# construction helpers used by the engines
# ---------------------------------------------------------------------------


def witness_from_counterexample(system, engine: str, counterexample) -> Optional[Witness]:
    """Build a witness from an engine counterexample trace.

    Every declared primary input is valuated at every cycle — values the
    trace does not pin are defaulted to 0 and everything is truncated to the
    declared width, so the replay through the simulator is deterministic.
    """
    if counterexample is None:
        return None
    inputs = counterexample.input_sequence(dict(system.inputs))
    return Witness(counterexample.property_name, engine, tuple(inputs))
