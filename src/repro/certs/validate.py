"""Independent validation of witnesses and safety certificates.

The validator deliberately shares no code with the producing engines: it
never touches :class:`repro.engines.encoding.FrameEncoder`, the frame
templates or any engine module.  Witnesses are replayed *concretely* through
the reference simulator (:func:`repro.netlist.simulate.replay`); safety
certificates are discharged with fresh SAT queries over expressions the
validator stamps itself (``name#frame``), one fresh solver per obligation:

* inductive invariant ``Inv`` — ``Init ∧ C ⊆ Inv``, ``Inv ∧ C ∧ T ⊆ Inv′``
  and ``Inv ∧ C ⊆ P`` (``C`` are the design's environment constraints, which
  scope reachability),
* k-inductive claim — the auxiliary invariants are jointly inductive, the
  property holds in the first ``k`` frames from reset, and ``k`` consecutive
  property frames (under the auxiliary invariants and optionally the
  simple-path side condition) force the property in frame ``k``.

Each obligation is recorded separately so a failed validation names exactly
which proof step broke.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.certs.certificate import (
    INDUCTIVE,
    K_INDUCTIVE,
    WITNESS,
    InductiveCertificate,
    KInductiveCertificate,
    Witness,
)
from repro.exprs import (
    Expr,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    bv_eq,
    bv_ne,
    bv_var,
    collect_vars,
    evaluate,
)
from repro.exprs.substitute import rename
from repro.netlist import TransitionSystem
from repro.netlist.simulate import replay
from repro.obs import telemetry as _telemetry
from repro.smt import BVResult, BVSolver

#: validation outcome of one obligation
HOLDS = "holds"
FAILED = "failed"
UNDECIDED = "undecided"  # solver gave up (deadline)


@dataclass
class Obligation:
    """One discharged (or failed) proof obligation."""

    name: str
    outcome: str
    note: str = ""

    @property
    def holds(self) -> bool:
        return self.outcome == HOLDS


@dataclass
class ValidationResult:
    """The outcome of validating one certificate against one design."""

    ok: bool
    kind: str
    property_name: str
    engine: str = ""
    obligations: List[Obligation] = field(default_factory=list)
    reason: str = ""
    runtime: float = 0.0

    def failed_obligations(self) -> List[Obligation]:
        return [o for o in self.obligations if not o.holds]

    def to_json(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "kind": self.kind,
            "property": self.property_name,
            "engine": self.engine,
            "obligations": {o.name: o.outcome for o in self.obligations},
            "reason": self.reason,
            "runtime_s": round(self.runtime, 6),
        }


#: witness replay backends: the scalar reference interpreter, or the
#: bit-parallel packed simulator cross-checked against it
REPLAY_BACKENDS = ("scalar", "packed")

#: how many leading cycles of a packed replay are re-run scalar by default
DEFAULT_CROSSCHECK_CYCLES = 8


class CertificateValidator:
    """Discharges certificate obligations against one transition system.

    ``replay_backend`` selects how witnesses are replayed: ``"scalar"``
    (default) uses the reference interpreter; ``"packed"`` uses the
    bit-parallel simulator and adds a ``replay-crosscheck`` obligation that
    re-runs the first ``crosscheck_cycles`` cycles through the scalar
    interpreter and fails on any per-cycle divergence — the packed verdict
    is never trusted without scalar agreement on the checked prefix.
    """

    def __init__(
        self,
        system: TransitionSystem,
        timeout: Optional[float] = None,
        replay_backend: str = "scalar",
        crosscheck_cycles: int = DEFAULT_CROSSCHECK_CYCLES,
    ) -> None:
        if replay_backend not in REPLAY_BACKENDS:
            raise ValueError(
                f"unknown replay backend {replay_backend!r}; "
                f"expected one of {REPLAY_BACKENDS}"
            )
        self.system = system
        self.flat = system.flattened()
        self.flat.validate()
        self.timeout = timeout
        self.replay_backend = replay_backend
        self.crosscheck_cycles = crosscheck_cycles
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    def validate(self, certificate) -> ValidationResult:
        """Validate any certificate kind; never raises on bad certificates."""
        start = time.monotonic()
        self._deadline = None if self.timeout is None else start + self.timeout
        kind = getattr(certificate, "kind", None)
        with _telemetry.span(
            "certs.validate",
            kind=str(kind),
            property=getattr(certificate, "property_name", ""),
        ) as validate_span:
            try:
                if kind == WITNESS:
                    result = self._validate_witness(certificate)
                elif kind == INDUCTIVE:
                    result = self._validate_inductive(certificate)
                elif kind == K_INDUCTIVE:
                    result = self._validate_k_inductive(certificate)
                else:
                    result = ValidationResult(
                        False, str(kind), "", reason=f"unknown certificate kind {kind!r}"
                    )
            except Exception as error:  # noqa: BLE001 - malformed certificates
                result = ValidationResult(
                    False,
                    str(kind),
                    getattr(certificate, "property_name", ""),
                    engine=getattr(certificate, "engine", ""),
                    reason=f"{type(error).__name__}: {error}",
                )
            result.runtime = time.monotonic() - start
            validate_span.set_outcome("ok" if result.ok else "failed")
            validate_span.annotate(obligations=len(result.obligations))
            _telemetry.counter(
                "certs.validations.ok" if result.ok else "certs.validations.failed"
            )
        return result

    # ------------------------------------------------------------------
    # witness replay
    # ------------------------------------------------------------------
    def _validate_witness(self, witness: Witness) -> ValidationResult:
        result = ValidationResult(
            False, WITNESS, witness.property_name, engine=witness.engine
        )
        try:
            prop = self.system.property_by_name(witness.property_name)
        except KeyError:
            result.reason = f"design declares no property {witness.property_name!r}"
            result.obligations.append(Obligation("property-exists", FAILED))
            return result
        result.obligations.append(Obligation("property-exists", HOLDS))
        if not witness.inputs:
            result.reason = "witness has no cycles"
            result.obligations.append(Obligation("violation-reached", FAILED))
            return result

        # replay the full trace and evaluate the *claimed* property per cycle
        # (another property failing earlier must not mask the violation)
        if self.replay_backend == "packed":
            observed_cycle = self._packed_replay(result, witness, prop.name)
            if result.failed_obligations():
                return result
        else:
            trace = replay(self.system, witness.input_sequence())
            observed_cycle = None
            for step in trace.steps:
                env = {**step.state, **step.inputs, **step.wires}
                if evaluate(prop.expr, env) == 0:
                    observed_cycle = step.cycle
                    break
        if observed_cycle is None:
            result.reason = (
                f"replay never violates {witness.property_name!r} "
                f"within {witness.length} cycles"
            )
            result.obligations.append(Obligation("violation-reached", FAILED, result.reason))
            return result
        note = f"violated at cycle {observed_cycle} (claimed {witness.violation_cycle})"
        result.obligations.append(Obligation("violation-reached", HOLDS, note))
        result.ok = True
        result.reason = note
        return result

    def _packed_replay(
        self, result: ValidationResult, witness: Witness, property_name: str
    ) -> Optional[int]:
        """Replay the witness bit-parallel; cross-check a prefix scalar.

        Appends the ``replay-crosscheck`` obligation to ``result`` and
        returns the first cycle at which the claimed property evaluates to 0
        (``None`` if it never does).  The property is read off the raw truth
        plane rather than the constraint-alive mask so the packed path agrees
        exactly with the scalar path above, which also ignores constraints
        during witness replay.
        """
        from repro.netlist.bitsim import (
            PackedSimulator,
            SimulationMismatch,
            crosscheck_lane,
        )

        simulator = PackedSimulator(self.system, lanes=1)
        run = simulator.replay(witness.input_sequence())
        try:
            compared = crosscheck_lane(
                self.system, run, lane=0, cycles=self.crosscheck_cycles
            )
        except SimulationMismatch as mismatch:
            result.reason = f"packed/scalar replay divergence: {mismatch}"
            result.obligations.append(
                Obligation("replay-crosscheck", FAILED, str(mismatch))
            )
            return None
        result.obligations.append(
            Obligation(
                "replay-crosscheck",
                HOLDS,
                f"first {compared} cycles agree with the scalar interpreter",
            )
        )
        for cycle in range(run.cycles):
            if (run.prop_values[cycle][property_name] & 1) == 0:
                return cycle
        return None

    # ------------------------------------------------------------------
    # expression stamping (independent of the engines' frame encoder)
    # ------------------------------------------------------------------
    @staticmethod
    def _at(expr: Expr, frame: int) -> Expr:
        return rename(expr, lambda name: f"{name}#{frame}")

    def _init_expr(self) -> Expr:
        return bool_and(
            *[
                bv_eq(bv_var(name, width), self.flat.init[name])
                for name, width in self.flat.state_vars.items()
            ]
        )

    def _trans_exprs(self, frame: int) -> List[Expr]:
        """Transition from ``frame`` to ``frame + 1`` plus constraints at ``frame``."""
        exprs = []
        for name, next_expr in self.flat.next.items():
            target = bv_var(f"{name}#{frame + 1}", self.flat.state_vars[name])
            exprs.append(bv_eq(target, self._at(next_expr, frame)))
        exprs.extend(self._at(constraint, frame) for constraint in self.flat.constraints)
        return exprs

    def _constraints_at(self, frame: int) -> List[Expr]:
        return [self._at(constraint, frame) for constraint in self.flat.constraints]

    def _unsat(self, exprs: List[Expr]) -> str:
        """Check a conjunction with a fresh solver; HOLDS iff unsatisfiable."""
        solver = BVSolver()
        solver.set_deadline(self._deadline)
        for expr in exprs:
            solver.assert_expr(expr)
        outcome = solver.check()
        if outcome == BVResult.UNSAT:
            return HOLDS
        if outcome == BVResult.SAT:
            return FAILED
        return UNDECIDED

    def _check_state_expr(self, expr: Expr, label: str) -> Optional[str]:
        """Reject invariants mentioning signals that are not state variables."""
        for var in collect_vars(expr):
            if var.name not in self.flat.state_vars:
                return f"{label} mentions non-state signal {var.name!r}"
            if var.width != self.flat.state_vars[var.name]:
                return (
                    f"{label} uses {var.name!r} with width {var.width}, "
                    f"declared {self.flat.state_vars[var.name]}"
                )
        return None

    # ------------------------------------------------------------------
    # inductive invariants
    # ------------------------------------------------------------------
    def _validate_inductive(self, certificate: InductiveCertificate) -> ValidationResult:
        result = ValidationResult(
            False, INDUCTIVE, certificate.property_name, engine=certificate.engine
        )
        try:
            prop = self.flat.property_by_name(certificate.property_name)
        except KeyError:
            result.reason = f"design declares no property {certificate.property_name!r}"
            result.obligations.append(Obligation("property-exists", FAILED))
            return result
        invariant = certificate.invariant
        if invariant.width != 1:
            result.reason = "invariant is not a 1-bit expression"
            result.obligations.append(Obligation("well-formed", FAILED, result.reason))
            return result
        complaint = self._check_state_expr(invariant, "invariant")
        if complaint is not None:
            result.reason = complaint
            result.obligations.append(Obligation("well-formed", FAILED, complaint))
            return result
        result.obligations.append(Obligation("well-formed", HOLDS))

        checks = [
            (
                "init",  # Init ∧ C ⊆ Inv
                [self._at(self._init_expr(), 0)]
                + self._constraints_at(0)
                + [self._at(bool_not(invariant), 0)],
            ),
            (
                "consecution",  # Inv ∧ C ∧ T ⊆ Inv′
                [self._at(invariant, 0)]
                + self._trans_exprs(0)
                + [self._at(bool_not(invariant), 1)],
            ),
            (
                "property",  # Inv ∧ C ⊆ P
                [self._at(invariant, 0)]
                + self._constraints_at(0)
                + [self._at(bool_not(prop.expr), 0)],
            ),
        ]
        return self._discharge(result, checks)

    # ------------------------------------------------------------------
    # k-induction
    # ------------------------------------------------------------------
    def _validate_k_inductive(self, certificate: KInductiveCertificate) -> ValidationResult:
        result = ValidationResult(
            False, K_INDUCTIVE, certificate.property_name, engine=certificate.engine
        )
        try:
            prop = self.flat.property_by_name(certificate.property_name)
        except KeyError:
            result.reason = f"design declares no property {certificate.property_name!r}"
            result.obligations.append(Obligation("property-exists", FAILED))
            return result
        if certificate.k < 1:
            result.reason = f"k must be >= 1, got {certificate.k}"
            result.obligations.append(Obligation("well-formed", FAILED, result.reason))
            return result
        for invariant in certificate.invariants:
            complaint = (
                "auxiliary invariant is not a 1-bit expression"
                if invariant.width != 1
                else self._check_state_expr(invariant, "auxiliary invariant")
            )
            if complaint is not None:
                result.reason = complaint
                result.obligations.append(Obligation("well-formed", FAILED, complaint))
                return result
        result.obligations.append(Obligation("well-formed", HOLDS))

        k = certificate.k
        aux = bool_and(*certificate.invariants) if certificate.invariants else TRUE
        checks = []
        if certificate.invariants:
            checks.append(
                (
                    "aux-init",  # Init ∧ C ⊆ A
                    [self._at(self._init_expr(), 0)]
                    + self._constraints_at(0)
                    + [self._at(bool_not(aux), 0)],
                )
            )
            checks.append(
                (
                    "aux-consecution",  # A ∧ C ∧ T ⊆ A′
                    [self._at(aux, 0)]
                    + self._trans_exprs(0)
                    + [self._at(bool_not(aux), 1)],
                )
            )

        # base: from reset, P holds in frames 0 .. k-1
        base: List[Expr] = [self._at(self._init_expr(), 0)]
        for frame in range(k - 1):
            base.extend(self._trans_exprs(frame))
        base.extend(self._constraints_at(k - 1))
        base.append(
            bool_not(bool_and(*[self._at(prop.expr, frame) for frame in range(k)]))
        )
        checks.append(("base", base))

        # step: k consecutive (P ∧ A)-frames force P in frame k
        step: List[Expr] = []
        for frame in range(k):
            step.append(self._at(prop.expr, frame))
            step.append(self._at(aux, frame))
            step.extend(self._trans_exprs(frame))
        step.append(self._at(aux, k))
        step.extend(self._constraints_at(k))
        if certificate.simple_path:
            step.extend(self._simple_path_exprs(k))
        step.append(self._at(bool_not(prop.expr), k))
        checks.append(("step", step))
        return self._discharge(result, checks)

    def _simple_path_exprs(self, last_frame: int) -> List[Expr]:
        """Pairwise-distinct state constraints over frames 0 .. last_frame."""
        exprs = []
        for i in range(last_frame + 1):
            for j in range(i + 1, last_frame + 1):
                differences = [
                    bv_ne(
                        bv_var(f"{name}#{i}", width),
                        bv_var(f"{name}#{j}", width),
                    )
                    for name, width in self.flat.state_vars.items()
                ]
                exprs.append(bool_or(*differences))
        return exprs

    # ------------------------------------------------------------------
    def _discharge(
        self, result: ValidationResult, checks: List[Tuple[str, List[Expr]]]
    ) -> ValidationResult:
        all_hold = True
        for name, exprs in checks:
            outcome = self._unsat(exprs)
            result.obligations.append(Obligation(name, outcome))
            if outcome != HOLDS:
                all_hold = False
                if not result.reason:
                    result.reason = (
                        f"obligation {name!r} "
                        f"{'is violated' if outcome == FAILED else 'could not be decided'}"
                    )
        result.ok = all_hold
        if all_hold:
            result.reason = "all obligations discharged"
        return result


# ---------------------------------------------------------------------------
# result-level entry points
# ---------------------------------------------------------------------------

#: which certificate kinds can justify which verdict
_KINDS_FOR_STATUS = {
    "unsafe": (WITNESS,),
    "safe": (INDUCTIVE, K_INDUCTIVE),
}


def validate_certificate(
    system: TransitionSystem,
    certificate,
    timeout: Optional[float] = None,
    replay_backend: str = "scalar",
    crosscheck_cycles: int = DEFAULT_CROSSCHECK_CYCLES,
) -> ValidationResult:
    """Validate one certificate against a design."""
    validator = CertificateValidator(
        system,
        timeout=timeout,
        replay_backend=replay_backend,
        crosscheck_cycles=crosscheck_cycles,
    )
    return validator.validate(certificate)


def validate_result(
    system: TransitionSystem,
    result,
    timeout: Optional[float] = None,
    replay_backend: str = "scalar",
    crosscheck_cycles: int = DEFAULT_CROSSCHECK_CYCLES,
) -> ValidationResult:
    """Validate the certificate attached to a :class:`VerificationResult`.

    A definitive verdict without a certificate, or with a certificate kind
    that cannot justify the claimed status (a witness for SAFE, an invariant
    for UNSAFE), fails validation outright.
    """
    status = getattr(result, "status", None)
    certificate = getattr(result, "certificate", None)
    allowed = _KINDS_FOR_STATUS.get(status)
    if allowed is None:
        return ValidationResult(
            False,
            "",
            getattr(result, "property_name", ""),
            engine=getattr(result, "engine", ""),
            reason=f"status {status!r} is not a certifiable definitive verdict",
        )
    if certificate is None:
        return ValidationResult(
            False,
            "",
            getattr(result, "property_name", ""),
            engine=getattr(result, "engine", ""),
            reason=f"no certificate attached to the {status} verdict",
        )
    if getattr(certificate, "kind", None) not in allowed:
        return ValidationResult(
            False,
            str(getattr(certificate, "kind", None)),
            getattr(result, "property_name", ""),
            engine=getattr(result, "engine", ""),
            reason=(
                f"certificate kind {getattr(certificate, 'kind', None)!r} cannot "
                f"justify a {status} verdict"
            ),
        )
    return validate_certificate(
        system,
        certificate,
        timeout=timeout,
        replay_backend=replay_backend,
        crosscheck_cycles=crosscheck_cycles,
    )
