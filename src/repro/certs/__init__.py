"""Checkable certificates: witnesses, safety certificates and their validator.

UNSAFE verdicts carry an input-trace :class:`Witness` replayed concretely
through the reference simulator; SAFE verdicts carry an
:class:`InductiveCertificate` (one-step inductive invariant) or a
:class:`KInductiveCertificate` (k-induction claim with auxiliary invariants)
discharged by the independent :class:`CertificateValidator` with fresh SAT
queries that share no code with the producing engine.  Certificates
serialize to JSON (and witnesses to AIGER ``.cex`` stimuli) so verdicts can
be archived, exchanged and re-validated.
"""

from repro.certs.certificate import (
    FORMAT,
    INDUCTIVE,
    K_INDUCTIVE,
    WITNESS,
    CertificateError,
    InductiveCertificate,
    KInductiveCertificate,
    Witness,
    certificate_from_json,
    certificate_to_json,
    dumps,
    loads,
    witness_from_counterexample,
)
from repro.certs.exprjson import ExprJsonError, expr_from_json, expr_to_json
from repro.certs.validate import (
    CertificateValidator,
    Obligation,
    ValidationResult,
    validate_certificate,
    validate_result,
)

__all__ = [
    "FORMAT",
    "WITNESS",
    "INDUCTIVE",
    "K_INDUCTIVE",
    "CertificateError",
    "Witness",
    "InductiveCertificate",
    "KInductiveCertificate",
    "certificate_from_json",
    "certificate_to_json",
    "dumps",
    "loads",
    "witness_from_counterexample",
    "ExprJsonError",
    "expr_from_json",
    "expr_to_json",
    "CertificateValidator",
    "Obligation",
    "ValidationResult",
    "validate_certificate",
    "validate_result",
]
