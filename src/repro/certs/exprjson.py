"""JSON serialization of word-level expressions.

Certificates carry invariants as :class:`repro.exprs.Expr` trees; to make
them portable artefacts (written next to benchmark reports, uploaded from CI,
re-validated by a later run) they serialize to a small JSON node format:

* constant — ``["c", value, width]``
* variable — ``["v", name, width]``
* operator — ``["o", op, width, [params...], [args...]]``

Both directions are iterative so that wide invariants (PDR frame
conjunctions, interpolant disjunctions) do not hit the interpreter recursion
limit.
"""

from __future__ import annotations

from typing import List

from repro.exprs.nodes import BV_OPS, Const, Expr, Op, Var


class ExprJsonError(ValueError):
    """Raised when a JSON document does not encode a well-formed expression."""


def expr_to_json(expr: Expr) -> list:
    """Serialize an expression tree to the JSON node format."""
    # iterative post-order: build child documents before their parent
    done: dict = {}
    stack: List[Expr] = [expr]
    while stack:
        node = stack[-1]
        if id(node) in done:
            stack.pop()
            continue
        if isinstance(node, Const):
            done[id(node)] = ["c", node.value, node.width]
            stack.pop()
            continue
        if isinstance(node, Var):
            done[id(node)] = ["v", node.name, node.width]
            stack.pop()
            continue
        if not isinstance(node, Op):
            raise ExprJsonError(f"cannot serialize {type(node).__name__}")
        pending = [arg for arg in node.args if id(arg) not in done]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        done[id(node)] = [
            "o",
            node.op,
            node.width,
            list(node.params),
            [done[id(arg)] for arg in node.args],
        ]
    return done[id(expr)]


def expr_from_json(document: object) -> Expr:
    """Rebuild an expression from its JSON node format (validating as it goes)."""
    if not isinstance(document, (list, tuple)) or not document:
        raise ExprJsonError(f"malformed expression node: {document!r}")
    tag = document[0]
    if tag == "c":
        _expect(len(document) == 3, document)
        value, width = document[1], document[2]
        _expect(isinstance(value, int) and isinstance(width, int) and width > 0, document)
        return Const(value, width)
    if tag == "v":
        _expect(len(document) == 3, document)
        name, width = document[1], document[2]
        _expect(isinstance(name, str) and isinstance(width, int) and width > 0, document)
        return Var(name, width)
    if tag == "o":
        _expect(len(document) == 5, document)
        op, width, params, args = document[1], document[2], document[3], document[4]
        _expect(op in BV_OPS, document)
        _expect(isinstance(width, int) and width > 0, document)
        _expect(isinstance(params, (list, tuple)), document)
        _expect(all(isinstance(p, int) for p in params), document)
        _expect(isinstance(args, (list, tuple)) and args, document)
        # iterative rebuild to mirror expr_to_json; recursion only on the
        # first unvisited child per step, flattened via an explicit stack
        return _op_from_json(document)
    raise ExprJsonError(f"unknown expression node tag {tag!r}")


def _op_from_json(document: object) -> Expr:
    """Iteratively rebuild an operator node and its subtree."""
    built: dict = {}
    stack = [document]
    while stack:
        node = stack[-1]
        key = id(node)
        if key in built:
            stack.pop()
            continue
        if not isinstance(node, (list, tuple)) or not node or node[0] not in ("o",):
            # leaves and malformed nodes go through the validating entry point
            built[key] = expr_from_json(node)
            stack.pop()
            continue
        _expect(len(node) == 5, node)
        args = node[4]
        _expect(isinstance(args, (list, tuple)) and args, node)
        pending = [arg for arg in args if id(arg) not in built]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        op, width, params = node[1], node[2], node[3]
        _expect(op in BV_OPS, node)
        _expect(isinstance(width, int) and width > 0, node)
        _expect(isinstance(params, (list, tuple)), node)
        _expect(all(isinstance(p, int) for p in params), node)
        try:
            built[key] = Op(op, [built[id(arg)] for arg in args], width, tuple(params))
        except (TypeError, ValueError) as error:
            raise ExprJsonError(f"malformed operator node: {error}") from error
    return built[id(document)]


def _expect(condition: bool, document: object) -> None:
    if not condition:
        raise ExprJsonError(f"malformed expression node: {document!r}")
