"""Zero-dependency observability: spans, counters, traces, leveled logging.

Public surface:

* :func:`span` / :func:`counter` / :func:`gauge` — instrumentation points
  (one global read, no-op when disabled);
* :func:`enable` / :func:`disable` / :func:`recording` /
  :func:`get_recorder` — recorder lifecycle;
* :func:`child_begin` / :func:`child_export` — worker-side cross-process
  trace assembly (parent side: :meth:`Recorder.attach`);
* :mod:`repro.obs.export` — JSONL / Chrome sinks, lint, rollups;
* :mod:`repro.obs.log` — shared CLI verbosity layer.
"""

from repro.obs.telemetry import (
    DEFAULT_CAPACITY,
    NOOP_SPAN,
    TRACE_FORMAT,
    Recorder,
    Span,
    add_counters,
    child_begin,
    child_export,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    get_recorder,
    recording,
    snapshot,
    span,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "NOOP_SPAN",
    "TRACE_FORMAT",
    "Recorder",
    "Span",
    "add_counters",
    "child_begin",
    "child_export",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_recorder",
    "recording",
    "snapshot",
    "span",
]
