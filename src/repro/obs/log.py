"""Shared leveled progress logging for the CLIs (zero-dependency).

``repro-verify``, ``repro-bench`` and ``repro-cache`` historically narrated
progress through unconditional ``print()`` calls, which made ``--batch``
sweeps unreadable in CI and impossible to silence.  This module gives the
three CLIs one verbosity dial:

* **result tables and machine-readable output stay on stdout** — they are
  the tools' contract and are never filtered here;
* **progress events go through** :func:`info` / :func:`verbose` /
  :func:`debug` and print to **stderr**, gated by the process-wide level;
* :func:`add_verbosity_flags` wires the standard ``-v / -q`` flags onto an
  ``argparse`` parser (repeatable: ``-vv`` for debug), and
  :func:`configure_from_args` sets the level from the parsed namespace,
  honouring the legacy ``--quiet`` / ``--verbose`` spellings where a CLI
  keeps them.

Levels: ``QUIET`` (errors only) < ``NORMAL`` (default; info) < ``VERBOSE``
(per-unit narration) < ``DEBUG`` (everything).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

QUIET = 0
NORMAL = 1
VERBOSE = 2
DEBUG = 3

_LEVEL = NORMAL


def set_level(level: int) -> int:
    """Set the process-wide verbosity; returns the previous level."""
    global _LEVEL
    previous = _LEVEL
    _LEVEL = max(QUIET, min(DEBUG, int(level)))
    return previous


def get_level() -> int:
    return _LEVEL


def is_verbose() -> bool:
    return _LEVEL >= VERBOSE


def _emit(level: int, message: str) -> None:
    if _LEVEL >= level:
        print(message, file=sys.stderr)


def error(message: str) -> None:
    """Always printed (stderr), even under ``-q``."""
    print(message, file=sys.stderr)


def info(message: str) -> None:
    """Default-level progress event (stderr; hidden by ``-q``)."""
    _emit(NORMAL, message)


def verbose(message: str) -> None:
    """Per-unit narration (stderr; shown from ``-v``)."""
    _emit(VERBOSE, message)


def debug(message: str) -> None:
    """Chatty internals (stderr; shown from ``-vv``)."""
    _emit(DEBUG, message)


# ---------------------------------------------------------------------------
# argparse wiring
# ---------------------------------------------------------------------------


def add_verbosity_flags(parser: argparse.ArgumentParser) -> None:
    """Add the shared ``-v`` / ``-q`` flags to a CLI parser.

    ``-v`` raises the level one step per repetition (``-vv`` = debug);
    ``-q`` drops to quiet.  CLIs that predate this module may also define
    ``--quiet`` / ``--verbose`` booleans — :func:`configure_from_args`
    understands both spellings.
    """
    group = parser.add_argument_group("verbosity")
    group.add_argument(
        "-v",
        dest="verbosity",
        action="count",
        default=0,
        help="increase progress verbosity (-v per-unit, -vv debug)",
    )
    group.add_argument(
        "-q",
        dest="quietness",
        action="count",
        default=0,
        help="silence progress events (result tables stay on stdout)",
    )


def configure_from_args(args: argparse.Namespace) -> int:
    """Set the global level from parsed flags; returns the level chosen."""
    level = NORMAL
    level += int(getattr(args, "verbosity", 0) or 0)
    if getattr(args, "verbose", False):  # legacy boolean spelling
        level = max(level, VERBOSE)
    level -= int(getattr(args, "quietness", 0) or 0)
    if getattr(args, "quiet", False):  # legacy boolean spelling
        level = QUIET
    set_level(level)
    return get_level()


def temporary_level(level: int):
    """Context manager: run a block at a forced verbosity level."""

    class _Scope:
        def __enter__(self_inner) -> None:
            self_inner.previous = set_level(level)

        def __exit__(self_inner, *exc_info) -> bool:
            set_level(self_inner.previous)
            return False

    return _Scope()
