"""Structured spans, counters and gauges: the in-process telemetry core.

Design contract (mirrors :mod:`repro.faults.injection`):

* the active :class:`Recorder` is a **module global**; every instrumentation
  point starts with one global read and returns immediately when no recorder
  is installed, so the production hot path pays ~nothing when telemetry is
  off (the default);
* **spans** are hierarchical timed regions — ``with span("engine.verify",
  engine="bmc"):`` — carrying monotonic wall *and* CPU durations, free-form
  JSON attributes and an outcome tag; nesting is tracked per thread, and
  spans that must outlive a lexical scope (a supervisor attempt racing many
  workers) use the explicit :meth:`Recorder.start_span` / :meth:`Span.finish`
  API with an explicit parent;
* **counters** are monotonic sums (``counter("solver.conflicts", delta)``)
  and **gauges** last-written values; both live on the recorder, and a
  child process's counters are merged into the parent's when its trace is
  stitched (:meth:`Recorder.attach`);
* finished spans land in a bounded **ring buffer** (oldest dropped first,
  drop count kept) so a runaway instrumentation site cannot exhaust memory;
* **cross-process assembly**: a forked worker calls :func:`child_begin` to
  replace the recorder it inherited with a fresh one, ships
  :func:`child_export` back over its existing result channel, and the
  parent stitches the subtree under the spawning span with
  :meth:`Recorder.attach` — span ids are remapped into the parent's id
  space, so one run yields one coherent, cycle-free trace.

Wall durations use ``time.perf_counter``, CPU durations
``time.process_time``; the absolute timestamp of a span start is
``time.time`` so spans from different processes of one run share a time
base (forked children inherit the same clock).
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from collections import deque
from typing import Dict, Iterator, List, Optional

#: trace document format tag (JSONL header and subtree payloads)
TRACE_FORMAT = "repro-trace-v1"

#: default ring-buffer capacity (finished spans kept per process)
DEFAULT_CAPACITY = 100_000

#: outcome tag of spans still open when the recorder was exported
UNFINISHED = "unfinished"


class Span:
    """One timed region of the trace tree.

    Obtain spans through :func:`span` (scoped, stacked per thread) or
    :meth:`Recorder.start_span` (explicit parent, finished by hand).  A span
    is recorded into the ring buffer when it finishes; its ``outcome``
    defaults to ``"ok"`` and is overridden by :meth:`set_outcome` or by the
    scoped form when the body raises (``"error:<ExceptionName>"``).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "pid",
        "start",
        "attrs",
        "outcome",
        "wall_s",
        "cpu_s",
        "_recorder",
        "_t0",
        "_c0",
        "_finished",
    )

    def __init__(
        self,
        recorder: "Recorder",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, object],
    ) -> None:
        self._recorder = recorder
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.pid = recorder.pid
        self.attrs = attrs
        self.outcome = "ok"
        self.start = time.time()
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        self._finished = False

    # ------------------------------------------------------------------
    def annotate(self, **attrs) -> "Span":
        """Merge attributes into the span (last write wins)."""
        self.attrs.update(attrs)
        return self

    def set_outcome(self, outcome: str) -> "Span":
        """Tag the span's outcome (e.g. a verdict, ``"hit"``, ``"crashed"``)."""
        self.outcome = str(outcome)
        return self

    def finish(self, outcome: Optional[str] = None) -> "Span":
        """Stop the clocks and record the span; idempotent."""
        if self._finished:
            return self
        self._finished = True
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._c0
        if outcome is not None:
            self.outcome = str(outcome)
        self._recorder._record(self)
        return self

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "pid": self.pid,
            "start": round(self.start, 6),
            "wall_s": round(self.wall_s, 9),
            "cpu_s": round(self.cpu_s, 9),
            "outcome": self.outcome,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"outcome={self.outcome!r}, wall={self.wall_s:.6f}s)"
        )


class _NoopSpan:
    """The disabled-mode stand-in: every method is a no-op returning self."""

    __slots__ = ()

    def annotate(self, **attrs) -> "_NoopSpan":
        return self

    def set_outcome(self, outcome: str) -> "_NoopSpan":
        return self

    def finish(self, outcome: Optional[str] = None) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _ScopedSpan:
    """Context-manager wrapper pushing a span onto the thread's stack."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "Recorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        self._recorder.push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder.pop(self._span)
        if exc_type is not None and self._span.outcome == "ok":
            self._span.set_outcome(f"error:{exc_type.__name__}")
        self._span.finish()
        return False


class Recorder:
    """Per-process telemetry sink: span ring buffer + counters + gauges."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self.pid = os.getpid()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.dropped = 0
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        self._open: Dict[int, Span] = {}
        self._next_id = 1
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """Start a span with an explicit parent (default: the current span).

        The span is *not* pushed onto the thread stack; finish it with
        :meth:`Span.finish`.  Use :func:`span` for the scoped form.
        """
        if parent is None:
            parent = self.current_span()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        created = Span(
            self, span_id, parent.span_id if parent else None, name, dict(attrs)
        )
        with self._lock:
            self._open[span_id] = created
        return created

    def push(self, span: Span) -> None:
        self._stack().append(span)

    def pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced nesting
            stack.remove(span)

    @contextlib.contextmanager
    def under(self, span: Span) -> Iterator[Span]:
        """Run a block with ``span`` as the current parent (not finishing it)."""
        self.push(span)
        try:
            yield span
        finally:
            self.pop(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._open.pop(span.span_id, None)
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)

    # ------------------------------------------------------------------
    # counters and gauges
    # ------------------------------------------------------------------
    def counter(self, name: str, delta: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def snapshot(self) -> Dict[str, object]:
        """A point-in-time metrics view (counters copied, not live)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "spans": len(self._spans),
                "open_spans": len(self._open),
                "dropped_spans": self.dropped,
            }

    # ------------------------------------------------------------------
    # export and cross-process assembly
    # ------------------------------------------------------------------
    def export(self, close_open: bool = True) -> Dict[str, object]:
        """Serialize the recorder: every finished span + counters/gauges.

        ``close_open`` force-finishes spans still open (tagged
        ``"unfinished"``) so an export never strands finished children under
        an absent parent.
        """
        if close_open:
            with self._lock:
                still_open = list(self._open.values())
            # deepest (newest) first so children finish before parents
            for span in sorted(still_open, key=lambda s: -s.span_id):
                span.finish(outcome=UNFINISHED)
        with self._lock:
            spans = [span.to_json() for span in self._spans]
            return {
                "format": TRACE_FORMAT,
                "pid": self.pid,
                "spans": spans,
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "dropped_spans": self.dropped,
            }

    def attach(self, payload: Dict[str, object], parent: Optional[Span]) -> int:
        """Stitch an exported child-process subtree under ``parent``.

        Child span ids are remapped into this recorder's id space (tree
        structure preserved); child roots hang off ``parent``.  Child
        counters are summed into this recorder's counters so parent-side
        snapshots cover the whole execution tree.  Returns the number of
        spans attached; malformed payloads attach nothing.
        """
        if not isinstance(payload, dict):
            return 0
        spans = payload.get("spans")
        if not isinstance(spans, list):
            return 0
        remap: Dict[int, int] = {}
        attached = 0
        with self._lock:
            for row in spans:
                if not isinstance(row, dict) or "id" not in row:
                    continue
                remap[row["id"]] = self._next_id
                self._next_id += 1
        parent_id = parent.span_id if parent is not None else None
        for row in spans:
            if not isinstance(row, dict) or "id" not in row:
                continue
            copied = Span(
                self,
                remap[row["id"]],
                remap.get(row.get("parent"), parent_id),
                str(row.get("name", "?")),
                dict(row.get("attrs") or {}),
            )
            copied.pid = int(row.get("pid", self.pid))
            copied.start = float(row.get("start", copied.start))
            copied.wall_s = float(row.get("wall_s", 0.0))
            copied.cpu_s = float(row.get("cpu_s", 0.0))
            copied.outcome = str(row.get("outcome", "ok"))
            copied._finished = True
            with self._lock:
                if len(self._spans) == self._spans.maxlen:
                    self.dropped += 1
                self._spans.append(copied)
            attached += 1
        for name, value in (payload.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                self.counter(str(name), value)
        for name, value in (payload.get("gauges") or {}).items():
            if isinstance(value, (int, float)):
                self.gauge(str(name), value)
        return attached

    def __len__(self) -> int:
        return len(self._spans)


# ---------------------------------------------------------------------------
# the module-global recorder (one global read on every instrumentation point)
# ---------------------------------------------------------------------------

_RECORDER: Optional[Recorder] = None

#: optional observer of span *starts* — ``hook(name, attrs)`` — used by the
#: supervision layer to turn the span stream into streamed progress without
#: per-engine plumbing.  Fires whether or not a recorder is installed (the
#: span stream marks forward progress even when nobody keeps the spans), and
#: must never raise into the instrumented code.
_SPAN_HOOK = None


def set_span_hook(hook) -> None:
    """Install (or clear, with ``None``) the process-wide span-start hook."""
    global _SPAN_HOOK
    _SPAN_HOOK = hook


def enabled() -> bool:
    """Whether telemetry is currently recording in this process."""
    return _RECORDER is not None


def get_recorder() -> Optional[Recorder]:
    return _RECORDER


def enable(capacity: int = DEFAULT_CAPACITY) -> Recorder:
    """Install a fresh recorder process-wide and return it."""
    global _RECORDER
    _RECORDER = Recorder(capacity=capacity)
    return _RECORDER


def disable() -> Optional[Recorder]:
    """Stop recording; returns the recorder (export it afterwards if needed)."""
    global _RECORDER
    recorder = _RECORDER
    _RECORDER = None
    return recorder


@contextlib.contextmanager
def recording(capacity: int = DEFAULT_CAPACITY) -> Iterator[Recorder]:
    """Scoped recording: enable on entry, disable on exit."""
    recorder = enable(capacity=capacity)
    try:
        yield recorder
    finally:
        if _RECORDER is recorder:
            disable()


def span(name: str, **attrs):
    """Scoped span: ``with span("cache.lookup", key=key) as sp: ...``.

    One global read and an immediate no-op singleton when telemetry is
    disabled — safe in warm loops.  The span joins the current thread's
    stack, so nested ``span()`` calls build the tree automatically.
    """
    hook = _SPAN_HOOK
    if hook is not None:
        try:
            hook(name, attrs)
        except Exception:  # pragma: no cover - observer bug, not ours
            pass
    recorder = _RECORDER
    if recorder is None:
        return NOOP_SPAN
    return _ScopedSpan(recorder, recorder.start_span(name, **attrs))


def counter(name: str, delta: float = 1) -> None:
    """Bump a monotonic counter (no-op when disabled)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.counter(name, delta)


def gauge(name: str, value: float) -> None:
    """Record a last-value gauge (no-op when disabled)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.gauge(name, value)


def add_counters(values: Dict[str, float], prefix: str = "") -> None:
    """Bulk-add a dict of numeric deltas (no-op when disabled)."""
    recorder = _RECORDER
    if recorder is None:
        return
    for name, delta in values.items():
        if isinstance(delta, (int, float)) and delta:
            recorder.counter(f"{prefix}{name}", delta)


def snapshot() -> Optional[Dict[str, object]]:
    """The active recorder's metrics snapshot, or ``None`` when disabled."""
    recorder = _RECORDER
    return recorder.snapshot() if recorder is not None else None


# ---------------------------------------------------------------------------
# cross-process helpers (worker side)
# ---------------------------------------------------------------------------


def child_begin(capacity: Optional[int] = None) -> Optional[Recorder]:
    """Start a fresh recorder in a forked worker, if the parent was recording.

    A forked child inherits the parent's recorder object — including every
    span the parent already finished.  Re-exporting those would duplicate
    the parent's history under every attempt, so the worker swaps in a
    fresh recorder for its own spans; the parent stitches the export under
    the spawning span.  Returns ``None`` (and stays disabled) when the
    parent was not recording.
    """
    global _RECORDER
    inherited = _RECORDER
    if inherited is None:
        return None
    _RECORDER = Recorder(
        capacity=capacity if capacity is not None else inherited.capacity
    )
    return _RECORDER


def child_export() -> Optional[Dict[str, object]]:
    """Export the worker's recorder for shipping back to the parent."""
    recorder = _RECORDER
    if recorder is None:
        return None
    return recorder.export(close_open=True)
