"""Trace sinks and analysis: JSONL export, Chrome trace_event, lint, rollups.

The on-disk trace format is **JSON Lines** (``repro-trace-v1``): a header
object, one object per span, and a trailing metrics object::

    {"type": "header", "format": "repro-trace-v1", "created": ..., ...}
    {"type": "span", "id": 1, "parent": null, "name": "cli.verify", ...}
    {"type": "span", "id": 2, "parent": 1, "name": "engine.verify", ...}
    {"type": "metrics", "counters": {...}, "gauges": {...}}

Writes go through :func:`repro.jsonio.write_text_atomic` so a killed run
never leaves a torn half-trace behind.  :func:`chrome_trace` converts a
loaded trace into the Chrome ``trace_event`` array (open in
``chrome://tracing`` / Perfetto for a flamegraph); :func:`lint_trace`
validates schema and tree shape (unique ids, resolvable parents, no
cycles, sane durations); :func:`summarize_trace` aggregates per-name
wall/CPU/self-time rollups for the CLI and benchmark reports.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.jsonio import write_text_atomic
from repro.obs.telemetry import TRACE_FORMAT, Recorder

#: span fields every trace line must carry, with the accepted types
_SPAN_SCHEMA = {
    "id": (int,),
    "parent": (int, type(None)),
    "name": (str,),
    "pid": (int,),
    "start": (int, float),
    "wall_s": (int, float),
    "cpu_s": (int, float),
    "outcome": (str,),
    "attrs": (dict,),
}


@dataclass
class Trace:
    """A loaded trace document."""

    header: Dict[str, object] = field(default_factory=dict)
    spans: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    def roots(self) -> List[Dict[str, object]]:
        return [span for span in self.spans if span.get("parent") is None]

    def children_of(self, span_id: int) -> List[Dict[str, object]]:
        return [span for span in self.spans if span.get("parent") == span_id]


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def trace_lines(recorder: Recorder, meta: Optional[Dict[str, object]] = None) -> str:
    """Serialize a recorder into the JSONL trace document."""
    payload = recorder.export(close_open=True)
    header = {
        "type": "header",
        "format": TRACE_FORMAT,
        "created": round(time.time(), 3),
        "pid": payload["pid"],
        "dropped_spans": payload["dropped_spans"],
        **(meta or {}),
    }
    lines = [json.dumps(header, default=str)]
    for span in payload["spans"]:
        lines.append(json.dumps({"type": "span", **span}, default=str))
    lines.append(
        json.dumps(
            {
                "type": "metrics",
                "counters": payload["counters"],
                "gauges": payload["gauges"],
            },
            default=str,
        )
    )
    return "\n".join(lines) + "\n"


def write_trace(
    recorder: Recorder, path: str, meta: Optional[Dict[str, object]] = None
) -> str:
    """Atomically write the recorder's trace to ``path`` (JSONL)."""
    return write_text_atomic(path, trace_lines(recorder, meta))


def trace_document_lines(trace: Trace) -> str:
    """Serialize an in-memory :class:`Trace` back to the JSONL document."""
    header = dict(trace.header) or {
        "type": "header",
        "format": TRACE_FORMAT,
        "created": round(time.time(), 3),
        "pid": 0,
        "dropped_spans": 0,
    }
    header["type"] = "header"
    lines = [json.dumps(header, default=str)]
    for span in trace.spans:
        row = {"type": "span", **span}
        lines.append(json.dumps(row, default=str))
    lines.append(
        json.dumps(
            {"type": "metrics", "counters": trace.counters, "gauges": trace.gauges},
            default=str,
        )
    )
    return "\n".join(lines) + "\n"


def write_trace_document(trace: Trace, path: str) -> str:
    """Atomically write an in-memory :class:`Trace` to ``path`` (JSONL)."""
    return write_text_atomic(path, trace_document_lines(trace))


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def load_trace(path: str) -> Trace:
    """Parse a ``repro-trace-v1`` JSONL file (raises ``ValueError`` if torn)."""
    trace = Trace()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError as error:
                raise ValueError(f"{path}:{line_no}: not JSON: {error}") from None
            kind = row.get("type") if isinstance(row, dict) else None
            if kind == "header":
                trace.header = row
            elif kind == "span":
                trace.spans.append(row)
            elif kind == "metrics":
                trace.counters = dict(row.get("counters") or {})
                trace.gauges = dict(row.get("gauges") or {})
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown line type {kind!r}"
                )
    return trace


# ---------------------------------------------------------------------------
# cross-box stitching
# ---------------------------------------------------------------------------


def stitch_traces(traces: List[Trace], request_attr: str = "request") -> Trace:
    """Merge per-box traces into one fleet trace, stitched by request id.

    Every box in a fleet (router, each member) writes its own trace.  The
    spans that touched one logical request all carry the same id in
    ``attrs[request_attr]`` — the router's ``router.request`` span and the
    member's ``serve.request`` span share the forward id.  The stitch:

    - remaps span ids so the union is collision-free (parents follow);
    - for each request id seen in **more than one** source trace, creates
      one synthetic ``fleet.request`` root spanning the earliest start to
      the latest end, and re-parents each box's *local root* of that
      request's subtree (the request-tagged span whose parent is untagged
      or absent) under it — so ``repro-trace tree`` shows the request's
      full cross-box story;
    - sums counters (gauges: last write wins).

    The result passes :func:`lint_trace` if the inputs did.
    """
    stitched = Trace(
        header={
            "type": "header",
            "format": TRACE_FORMAT,
            "created": round(time.time(), 3),
            "pid": 0,
            "dropped_spans": sum(
                int(trace.header.get("dropped_spans", 0) or 0)
                for trace in traces
            ),
            "stitched_from": len(traces),
        }
    )
    next_id = 1
    #: request id -> list of (trace_index, new-id span dict)
    tagged: Dict[str, List[tuple]] = {}
    for trace_index, trace in enumerate(traces):
        id_map: Dict[int, int] = {}
        for span in trace.spans:
            old_id = span.get("id")
            if isinstance(old_id, int):
                id_map[old_id] = next_id
                next_id += 1
        for span in trace.spans:
            row = dict(span)
            row["id"] = id_map.get(row.get("id"), row.get("id"))
            parent = row.get("parent")
            row["parent"] = id_map.get(parent) if parent is not None else None
            stitched.spans.append(row)
            request_id = (row.get("attrs") or {}).get(request_attr)
            if isinstance(request_id, str) and request_id:
                tagged.setdefault(request_id, []).append((trace_index, row))
        for name, value in trace.counters.items():
            stitched.counters[name] = stitched.counters.get(name, 0) + value
        stitched.gauges.update(trace.gauges)

    by_id = {span["id"]: span for span in stitched.spans}
    for request_id, members in sorted(tagged.items()):
        if len({trace_index for trace_index, _ in members}) < 2:
            continue  # a purely local request needs no synthetic root
        spans = [span for _, span in members]
        # the local root of the request on each box: its parent either does
        # not exist here or is a span not tagged with this request id
        local_roots = []
        for span in spans:
            parent = by_id.get(span.get("parent"))
            if parent is None or (parent.get("attrs") or {}).get(
                request_attr
            ) != request_id:
                local_roots.append(span)
        if not local_roots:
            continue
        starts = [float(span.get("start", 0.0) or 0.0) for span in local_roots]
        ends = [
            float(span.get("start", 0.0) or 0.0)
            + float(span.get("wall_s", 0.0) or 0.0)
            for span in local_roots
        ]
        root = {
            "id": next_id,
            "parent": None,
            "name": "fleet.request",
            "pid": 0,
            "start": min(starts),
            "wall_s": max(0.0, max(ends) - min(starts)),
            "cpu_s": 0.0,
            "outcome": "stitched",
            "attrs": {
                request_attr: request_id,
                "boxes": sorted(
                    {int(span.get("pid", 0) or 0) for span in local_roots}
                ),
                "spans": len(spans),
            },
        }
        next_id += 1
        stitched.spans.append(root)
        by_id[root["id"]] = root
        for span in local_roots:
            span["parent"] = root["id"]
    return stitched


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------


def lint_trace(trace: Trace, allow_unfinished: bool = True) -> List[str]:
    """Validate a trace; returns a list of problems (empty = clean).

    Checks: header format tag, span schema (fields and types), unique span
    ids, **orphan spans** (a parent reference that resolves to no span in
    the trace), parent cycles, non-negative durations, numeric metrics.
    ``allow_unfinished=False`` additionally flags spans force-closed at
    export time.
    """
    problems: List[str] = []
    if trace.header.get("format") != TRACE_FORMAT:
        problems.append(
            f"header: format {trace.header.get('format')!r} is not {TRACE_FORMAT!r}"
        )
    if not trace.spans:
        problems.append("trace contains no spans")

    by_id: Dict[int, Dict[str, object]] = {}
    for index, span in enumerate(trace.spans):
        label = f"span[{index}] ({span.get('name', '?')!r})"
        for field_name, types in _SPAN_SCHEMA.items():
            if field_name not in span:
                problems.append(f"{label}: missing field {field_name!r}")
                continue
            if not isinstance(span[field_name], types):
                problems.append(
                    f"{label}: field {field_name!r} has type "
                    f"{type(span[field_name]).__name__}"
                )
        span_id = span.get("id")
        if isinstance(span_id, int):
            if span_id in by_id:
                problems.append(f"{label}: duplicate span id {span_id}")
            else:
                by_id[span_id] = span
        for duration in ("wall_s", "cpu_s"):
            value = span.get(duration)
            if isinstance(value, (int, float)) and value < 0:
                problems.append(f"{label}: negative {duration} ({value})")
        if not allow_unfinished and span.get("outcome") == "unfinished":
            problems.append(f"{label}: span was never finished")

    for span in trace.spans:
        parent = span.get("parent")
        if parent is not None and parent not in by_id:
            problems.append(
                f"orphan span {span.get('id')} ({span.get('name', '?')!r}): "
                f"parent {parent} is not in the trace"
            )

    # cycle check: walk each span to a root, bounded by the trace size
    for span in trace.spans:
        seen = set()
        cursor = span
        while cursor is not None:
            cursor_id = cursor.get("id")
            if cursor_id in seen:
                problems.append(
                    f"span {span.get('id')}: parent chain contains a cycle"
                )
                break
            seen.add(cursor_id)
            parent = cursor.get("parent")
            cursor = by_id.get(parent) if parent is not None else None

    for name, value in list(trace.counters.items()) + list(trace.gauges.items()):
        if not isinstance(value, (int, float)):
            problems.append(f"metric {name!r}: non-numeric value {value!r}")
    return problems


# ---------------------------------------------------------------------------
# rollups
# ---------------------------------------------------------------------------


def summarize_trace(trace: Trace, top: int = 0) -> Dict[str, object]:
    """Per-name rollups: count, total/self wall, total CPU, outcome mix.

    ``self`` wall is a span's wall minus its direct children's wall (floored
    at zero), so the summary answers "where did the time actually go" even
    though parents subsume children.
    """
    child_wall: Dict[int, float] = {}
    for span in trace.spans:
        parent = span.get("parent")
        if parent is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + float(
                span.get("wall_s", 0.0) or 0.0
            )

    phases: Dict[str, Dict[str, object]] = {}
    for span in trace.spans:
        name = str(span.get("name", "?"))
        row = phases.setdefault(
            name,
            {"count": 0, "wall_s": 0.0, "self_wall_s": 0.0, "cpu_s": 0.0, "outcomes": {}},
        )
        wall = float(span.get("wall_s", 0.0) or 0.0)
        row["count"] += 1
        row["wall_s"] += wall
        row["self_wall_s"] += max(0.0, wall - child_wall.get(span.get("id"), 0.0))
        row["cpu_s"] += float(span.get("cpu_s", 0.0) or 0.0)
        outcome = str(span.get("outcome", "ok"))
        row["outcomes"][outcome] = row["outcomes"].get(outcome, 0) + 1

    for row in phases.values():
        for key in ("wall_s", "self_wall_s", "cpu_s"):
            row[key] = round(row[key], 6)

    ordered = dict(
        sorted(phases.items(), key=lambda item: -item[1]["self_wall_s"])
    )
    if top:
        ordered = dict(list(ordered.items())[:top])
    roots = trace.roots()
    # CPU totals must not double-count nesting: sum each process's outermost
    # spans only (a span whose parent is absent or lives in another process)
    by_id = {span.get("id"): span for span in trace.spans}
    pid_roots = [
        span
        for span in trace.spans
        if span.get("parent") not in by_id
        or by_id[span.get("parent")].get("pid") != span.get("pid")
    ]
    return {
        "spans": len(trace.spans),
        "roots": len(roots),
        "processes": len({span.get("pid") for span in trace.spans}),
        "total_wall_s": round(
            sum(float(span.get("wall_s", 0.0) or 0.0) for span in roots), 6
        ),
        "total_cpu_s": round(
            sum(float(span.get("cpu_s", 0.0) or 0.0) for span in pid_roots), 6
        ),
        "phases": ordered,
        "counters": trace.counters,
    }


# ---------------------------------------------------------------------------
# Chrome trace_event export
# ---------------------------------------------------------------------------


def chrome_trace(trace: Trace) -> List[Dict[str, object]]:
    """Convert to Chrome ``trace_event`` complete events (``"ph": "X"``).

    Timestamps are microseconds relative to the earliest span start, so the
    flamegraph opens at t=0 regardless of wall-clock epoch.  Span pids map
    onto trace-viewer processes, which lines worker attempts up under their
    own rows next to the driver.
    """
    if not trace.spans:
        return []
    t0 = min(float(span.get("start", 0.0) or 0.0) for span in trace.spans)
    events: List[Dict[str, object]] = []
    for span in trace.spans:
        events.append(
            {
                "name": str(span.get("name", "?")),
                "cat": str(span.get("name", "?")).split(".", 1)[0],
                "ph": "X",
                "ts": round((float(span.get("start", 0.0) or 0.0) - t0) * 1e6, 3),
                "dur": max(0.0, round(float(span.get("wall_s", 0.0) or 0.0) * 1e6, 3)),
                "pid": int(span.get("pid", 0) or 0),
                "tid": 0,
                "args": {
                    "outcome": span.get("outcome", "ok"),
                    "cpu_s": span.get("cpu_s", 0.0),
                    **(span.get("attrs") or {}),
                },
            }
        )
    return events


def write_chrome_trace(trace: Trace, path: str) -> str:
    """Write the Chrome trace_event JSON for ``trace`` to ``path``."""
    return write_text_atomic(
        path, json.dumps({"traceEvents": chrome_trace(trace)}, indent=1) + "\n"
    )
