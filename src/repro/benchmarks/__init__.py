"""The benchmark suite of the paper.

Twelve Verilog RTL designs with SVA safety properties, modelled on the
circuits the paper draws from the VIS Verilog models, the Texas-97 suite and
opencores.org: data-path intensive designs (Huffman encoder/decoder, DAIO
digital audio chip) and control-intensive designs (non-pipelined 3-stage
processor, RCU mutual-exclusion protocol, FIFO controller, buffer allocation
model, instruction-queue controller, and others).

Every benchmark records its expected verdict and — for the unsafe designs —
the cycle at which the bug manifests (DAIO at cycle 64 and the traffic-light
controller at cycle 65, as stated in Section IV), so the harness can classify
tool answers as correct, wrong, or inconclusive exactly like the paper does.
"""

from repro.benchmarks.suite import (
    Benchmark,
    BENCHMARKS,
    benchmark_names,
    get_benchmark,
    load_system,
    load_system_cached,
)

__all__ = [
    "Benchmark",
    "BENCHMARKS",
    "benchmark_names",
    "get_benchmark",
    "load_system",
    "load_system_cached",
]
