"""Benchmark designs and their expected verdicts.

Each benchmark is a word-level :class:`repro.netlist.TransitionSystem` built
programmatically in the spirit of the circuits the paper draws from the VIS
Verilog models, the Texas-97 suite and opencores.org.  The designs are scaled
so that the pure-Python engines finish in seconds while still exercising the
behaviours the paper compares: data-path intensive circuits (Huffman
encoder/decoder, the DAIO audio chip, a multiply-accumulate datapath), and
control-intensive circuits (a non-pipelined 3-stage processor, the RCU mutual
exclusion protocol, FIFO/instruction-queue controllers, a buffer allocation
model, a bus arbiter).

Every benchmark records its expected verdict and — for the unsafe designs —
the cycle at which the bug manifests (DAIO at cycle 64 and the traffic-light
controller at cycle 65, as in Section IV of the paper), so a harness can
classify engine answers as correct, wrong or inconclusive.

Expected verdicts refer to the word-level semantics (the default
``representation="word"``).  Note one representation caveat inherited from
the AIG lowering: environment constraints are folded into the *bad* output,
i.e. enforced only at the property frame in the bit-level flow, so benchmarks
relying on constraints (``fifo``) are only meaningful at the word level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exprs import (
    Expr,
    bv_and,
    bv_const,
    bv_eq,
    bv_ite,
    bv_lshr,
    bv_mul,
    bv_ne,
    bv_not,
    bv_or,
    bv_reduce_or,
    bv_shl,
    bv_uge,
    bv_ule,
    bv_ult,
    bv_zero_extend,
    bool_and,
    bool_implies,
    bool_not,
)
from repro.netlist import TransitionSystem


@dataclass(frozen=True)
class Benchmark:
    """One design of the suite with its ground truth.

    ``expected`` is ``"safe"`` or ``"unsafe"``; for unsafe designs
    ``bug_cycle`` is the first cycle at which the (first) property is
    violated.  ``category`` is ``"control"`` or ``"datapath"``, mirroring the
    two design families of the paper's evaluation.
    """

    name: str
    description: str
    expected: str
    build: Callable[[], TransitionSystem]
    bug_cycle: Optional[int] = None
    category: str = "control"

    def load(self) -> TransitionSystem:
        """Build a fresh instance of the design."""
        system = self.build()
        system.validate()
        return system


# ---------------------------------------------------------------------------
# data-path intensive designs
# ---------------------------------------------------------------------------


def _build_huffman_enc() -> TransitionSystem:
    """Huffman encoder: variable-length code lengths accumulated into a buffer."""
    ts = TransitionSystem("huffman_enc")
    sym = ts.add_input("sym", 3)
    sr = ts.add_state_var("sr", 8, init=0)
    length = ts.add_state_var("len", 4, init=0)
    code_len = bv_ite(
        bv_eq(sym, bv_const(0, 3)),
        bv_const(1, 4),
        bv_ite(
            bv_ule(sym, bv_const(2, 3)),
            bv_const(2, 4),
            bv_ite(bv_ule(sym, bv_const(5, 3)), bv_const(3, 4), bv_const(4, 4)),
        ),
    )
    flush = bv_uge(length, bv_const(8, 4))
    ts.set_next("len", bv_ite(flush, length - bv_const(8, 4), length + code_len))
    shifted = bv_shl(sr, bv_zero_extend(code_len, 4))
    ts.set_next("sr", bv_ite(flush, sr, bv_or(shifted, bv_zero_extend(sym, 5))))
    # lengths grow by at most 4 below 8 and shrink by 8 above: bounded by 11
    ts.add_property("len_bounded", bv_ule(length, bv_const(11, 4)))
    ts.source = "modelled on the VIS Huffman encoder"
    return ts


def _build_huffman_dec() -> TransitionSystem:
    """Huffman decoder: walks a small code tree, leaves return to the root."""
    ts = TransitionSystem("huffman_dec")
    bit = ts.add_input("bit", 1)
    node = ts.add_state_var("node", 3, init=0)

    def c(value: int) -> Expr:
        return bv_const(value, 3)

    ts.set_next(
        "node",
        bv_ite(
            bv_eq(node, c(0)),
            bv_ite(bit, c(1), c(2)),
            bv_ite(
                bv_eq(node, c(1)),
                bv_ite(bit, c(3), c(4)),
                bv_ite(bv_eq(node, c(2)), bv_ite(bit, c(5), c(6)), c(0)),
            ),
        ),
    )
    ts.add_property("valid_node", bv_ne(node, c(7)))
    ts.source = "modelled on the VIS Huffman decoder"
    return ts


def _build_daio() -> TransitionSystem:
    """DAIO digital audio chip model; the sample counter bug fires at cycle 64."""
    ts = TransitionSystem("daio")
    sample = ts.add_input("sample", 8)
    t = ts.add_state_var("t", 7, init=0)
    acc = ts.add_state_var("acc", 8, init=0)
    err = ts.add_state_var("err", 1, init=0)
    ts.set_next("t", t + bv_const(1, 7))
    ts.set_next("acc", acc + sample)
    # receiver overrun: the frame counter silently wraps a 6-bit window
    ts.set_next("err", bv_or(err, bv_eq(t, bv_const(63, 7))))
    ts.add_property("no_overrun", bv_eq(err, bv_const(0, 1)))
    ts.source = "modelled on the VIS DAIO example (unsafe at cycle 64)"
    return ts


def _build_barrel16() -> TransitionSystem:
    """16-bit rotator (Texas-97 style datapath): a set bit can never vanish."""
    ts = TransitionSystem("barrel16")
    r = ts.add_state_var("r", 16, init=1)
    ts.set_next(
        "r", bv_or(bv_shl(r, bv_const(1, 16)), bv_lshr(r, bv_const(15, 16)))
    )
    ts.add_property("nonzero", bv_reduce_or(r))
    ts.source = "barrel rotator, Texas-97 flavour"
    return ts


def _build_mac16() -> TransitionSystem:
    """Multiply-accumulate datapath with a mod-10 sequence counter."""
    ts = TransitionSystem("mac16")
    x = ts.add_input("x", 8)
    y = ts.add_input("y", 8)
    acc = ts.add_state_var("acc", 16, init=0)
    cnt = ts.add_state_var("cnt", 4, init=0)
    ts.set_next("acc", acc + bv_mul(bv_zero_extend(x, 8), bv_zero_extend(y, 8)))
    ts.set_next(
        "cnt", bv_ite(bv_eq(cnt, bv_const(9, 4)), bv_const(0, 4), cnt + bv_const(1, 4))
    )
    ts.add_property("cnt_in_range", bv_ne(cnt, bv_const(10, 4)))
    # second property (multi-property design): the batch runner shards one
    # worker per property, so both verify concurrently over the shared blast
    ts.add_property("cnt_le_9", bv_ule(cnt, bv_const(9, 4)))
    ts.source = "opencores-style MAC datapath"
    return ts


# ---------------------------------------------------------------------------
# control intensive designs
# ---------------------------------------------------------------------------


def _build_tlc() -> TransitionSystem:
    """Traffic light controller with a stuck timer; both roads go green at cycle 65."""
    ts = TransitionSystem("tlc")
    phase = ts.add_state_var("phase", 2, init=0)
    timer = ts.add_state_var("timer", 7, init=0)
    ts.set_next("phase", phase + bv_const(1, 2))
    ts.set_next(
        "timer",
        bv_ite(bv_eq(timer, bv_const(127, 7)), timer, timer + bv_const(1, 7)),
    )
    overrun = bv_uge(timer, bv_const(65, 7))
    green_ns = bv_or(bv_eq(phase, bv_const(0, 2)), overrun)
    green_ew = bv_or(bv_eq(phase, bv_const(2, 2)), overrun)
    ts.add_property("exclusive_green", bv_not(bv_and(green_ns, green_ew)))
    ts.source = "modelled on the Texas-97 traffic light controller (unsafe at cycle 65)"
    return ts


def _build_proc3() -> TransitionSystem:
    """Non-pipelined 3-stage (fetch/decode/execute) accumulator processor."""
    ts = TransitionSystem("proc3")
    imm = ts.add_input("imm", 8)
    stage = ts.add_state_var("stage", 2, init=0)
    pc = ts.add_state_var("pc", 4, init=0)
    acc = ts.add_state_var("acc", 8, init=0)
    execute = bv_eq(stage, bv_const(2, 2))
    ts.set_next("stage", bv_ite(execute, bv_const(0, 2), stage + bv_const(1, 2)))
    ts.set_next("pc", bv_ite(execute, pc + bv_const(1, 4), pc))
    ts.set_next("acc", bv_ite(execute, acc + imm, acc))
    ts.add_property("valid_stage", bv_ne(stage, bv_const(3, 2)))
    # second property (multi-property design, see mac16): same invariant
    # stated as a bound, sharded to its own batch worker
    ts.add_property("stage_le_2", bv_ule(stage, bv_const(2, 2)))
    ts.source = "modelled on the VIS non-pipelined processor"
    return ts


def _build_rcu() -> TransitionSystem:
    """RCU-style turn-based mutual exclusion between two requesters."""
    ts = TransitionSystem("rcu")
    req0 = ts.add_input("req0", 1)
    req1 = ts.add_input("req1", 1)
    s0 = ts.add_state_var("s0", 2, init=0)
    s1 = ts.add_state_var("s1", 2, init=0)
    turn = ts.add_state_var("turn", 1, init=0)

    def side(state: Expr, req: Expr, my_turn: Expr) -> Expr:
        idle = bv_eq(state, bv_const(0, 2))
        trying = bv_eq(state, bv_const(1, 2))
        return bv_ite(
            idle,
            bv_ite(req, bv_const(1, 2), bv_const(0, 2)),
            bv_ite(
                trying,
                bv_ite(my_turn, bv_const(2, 2), bv_const(1, 2)),
                bv_const(0, 2),  # critical section lasts one cycle
            ),
        )

    ts.set_next("s0", side(s0, req0, bv_eq(turn, bv_const(0, 1))))
    ts.set_next("s1", side(s1, req1, bv_eq(turn, bv_const(1, 1))))
    in_crit0 = bv_eq(s0, bv_const(2, 2))
    in_crit1 = bv_eq(s1, bv_const(2, 2))
    ts.set_next(
        "turn", bv_ite(in_crit0, bv_const(1, 1), bv_ite(in_crit1, bv_const(0, 1), turn))
    )
    ts.add_property("mutex", bv_not(bv_and(in_crit0, in_crit1)))
    ts.source = "modelled on the VIS RCU mutual exclusion protocol"
    return ts


def _build_fifo() -> TransitionSystem:
    """FIFO controller; the environment never pushes when full nor pops when empty."""
    ts = TransitionSystem("fifo")
    put = ts.add_input("put", 1)
    get = ts.add_input("get", 1)
    count = ts.add_state_var("count", 4, init=0)
    one = bv_const(1, 4)
    zero = bv_const(0, 4)
    push_only = bv_and(put, bv_not(get))
    pop_only = bv_and(get, bv_not(put))
    ts.set_next(
        "count",
        count + bv_ite(push_only, one, zero) - bv_ite(pop_only, one, zero),
    )
    ts.add_constraint(bool_implies(put, bv_ult(count, bv_const(8, 4))))
    ts.add_constraint(bool_implies(get, bv_ne(count, zero)))
    ts.add_property("no_overflow", bv_ule(count, bv_const(8, 4)))
    ts.source = "modelled on the VIS FIFO controller (word-level constraints)"
    return ts


def _build_buffalloc() -> TransitionSystem:
    """Buffer allocation model: free + used buffers always total eight."""
    ts = TransitionSystem("buffalloc")
    alloc = ts.add_input("alloc", 1)
    release = ts.add_input("release", 1)
    free = ts.add_state_var("free", 4, init=8)
    used = ts.add_state_var("used", 4, init=0)
    one = bv_const(1, 4)
    zero = bv_const(0, 4)
    do_alloc = bool_and(alloc, bool_not(release), bv_ne(free, zero))
    do_release = bool_and(release, bool_not(alloc), bv_ne(used, zero))
    delta = bv_ite(do_alloc, one, zero) - bv_ite(do_release, one, zero)
    ts.set_next("free", free - delta)
    ts.set_next("used", used + delta)
    ts.add_property("conservation", bv_eq(free + used, bv_const(8, 4)))
    ts.source = "modelled on the VIS buffer allocation model"
    return ts


def _build_iqueue() -> TransitionSystem:
    """Instruction queue controller with wrap-around pointers and a fill count."""
    ts = TransitionSystem("iqueue")
    enq = ts.add_input("enq", 1)
    deq = ts.add_input("deq", 1)
    head = ts.add_state_var("head", 3, init=0)
    tail = ts.add_state_var("tail", 3, init=0)
    count = ts.add_state_var("count", 4, init=0)
    do_enq = bool_and(enq, bv_ult(count, bv_const(8, 4)))
    do_deq = bool_and(deq, bv_ne(count, bv_const(0, 4)))
    one3 = bv_const(1, 3)
    one4 = bv_const(1, 4)
    zero3 = bv_const(0, 3)
    zero4 = bv_const(0, 4)
    ts.set_next("tail", tail + bv_ite(do_enq, one3, zero3))
    ts.set_next("head", head + bv_ite(do_deq, one3, zero3))
    ts.set_next(
        "count", count + bv_ite(do_enq, one4, zero4) - bv_ite(do_deq, one4, zero4)
    )
    ts.add_property("no_overfill", bv_ule(count, bv_const(8, 4)))
    ts.source = "modelled on the Texas-97 instruction queue controller"
    return ts


def _build_arbiter() -> TransitionSystem:
    """Two-client bus arbiter granting at most one client per cycle."""
    ts = TransitionSystem("arbiter")
    req0 = ts.add_input("req0", 1)
    req1 = ts.add_input("req1", 1)
    grant = ts.add_state_var("grant", 2, init=0)

    def g(value: int) -> Expr:
        return bv_const(value, 2)

    ts.set_next(
        "grant",
        bv_ite(
            bv_eq(grant, g(1)),
            bv_ite(req0, g(1), bv_ite(req1, g(2), g(0))),
            bv_ite(
                bv_eq(grant, g(2)),
                bv_ite(req1, g(2), bv_ite(req0, g(1), g(0))),
                bv_ite(req0, g(1), bv_ite(req1, g(2), g(0))),
            ),
        ),
    )
    ts.add_property("one_hot_grant", bv_ne(grant, g(3)))
    ts.source = "round-robin-ish bus arbiter"
    return ts


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------

BENCHMARKS: Dict[str, Benchmark] = {
    benchmark.name: benchmark
    for benchmark in [
        Benchmark(
            "huffman_enc",
            "Huffman encoder with variable-length code buffer",
            "safe",
            _build_huffman_enc,
            category="datapath",
        ),
        Benchmark(
            "huffman_dec",
            "Huffman decoder walking a small code tree",
            "safe",
            _build_huffman_dec,
            category="datapath",
        ),
        Benchmark(
            "daio",
            "DAIO digital audio chip with a frame-counter overrun bug",
            "unsafe",
            _build_daio,
            bug_cycle=64,
            category="datapath",
        ),
        Benchmark(
            "barrel16",
            "16-bit barrel rotator; a set bit never vanishes",
            "safe",
            _build_barrel16,
            category="datapath",
        ),
        Benchmark(
            "mac16",
            "Multiply-accumulate datapath with a mod-10 sequencer",
            "safe",
            _build_mac16,
            category="datapath",
        ),
        Benchmark(
            "tlc",
            "Traffic light controller with a stuck timer",
            "unsafe",
            _build_tlc,
            bug_cycle=65,
            category="control",
        ),
        Benchmark(
            "proc3",
            "Non-pipelined 3-stage accumulator processor",
            "safe",
            _build_proc3,
            category="control",
        ),
        Benchmark(
            "rcu",
            "Turn-based mutual exclusion (RCU protocol model)",
            "safe",
            _build_rcu,
            category="control",
        ),
        Benchmark(
            "fifo",
            "FIFO controller under put/get environment constraints",
            "safe",
            _build_fifo,
            category="control",
        ),
        Benchmark(
            "buffalloc",
            "Buffer allocation model conserving eight buffers",
            "safe",
            _build_buffalloc,
            category="control",
        ),
        Benchmark(
            "iqueue",
            "Instruction queue controller with wrap-around pointers",
            "safe",
            _build_iqueue,
            category="control",
        ),
        Benchmark(
            "arbiter",
            "Two-client bus arbiter with one-cycle grants",
            "safe",
            _build_arbiter,
            category="control",
        ),
    ]
}


def benchmark_names() -> List[str]:
    """Return the benchmark names in suite order."""
    return list(BENCHMARKS)


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        ) from None


def load_system(name: str) -> TransitionSystem:
    """Build a fresh :class:`TransitionSystem` for the named benchmark."""
    return get_benchmark(name).load()


#: memoized builds for the portfolio path: the parent process warms the
#: template caches on these instances before forking, and the workers' loads
#: resolve to the *same objects*, so the blasted templates are inherited
#: copy-on-write instead of being re-blasted once per worker
_SHARED_SYSTEMS: Dict[str, TransitionSystem] = {}


def load_system_cached(name: str) -> TransitionSystem:
    """Return the shared (memoized) build of the named benchmark.

    Unlike :func:`load_system` this returns the same instance on every call.
    Engines never mutate the designs they verify, and the template cache
    (:func:`repro.engines.encoding.template_library`) fingerprints the design
    content anyway, so sharing is safe; use :func:`load_system` when a run
    must not share blasting artifacts (e.g. timing a cold encode).
    """
    system = _SHARED_SYSTEMS.get(name)
    if system is None:
        system = load_system(name)
        _SHARED_SYSTEMS[name] = system
    return system
