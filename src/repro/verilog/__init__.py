"""Verilog-2005 RTL frontend.

The frontend accepts the synthesizable subset of Verilog used by the
benchmark designs of the paper: module hierarchy with parameters, wire/reg
declarations (including small memories), continuous assignments, clocked and
combinational ``always`` blocks with blocking and non-blocking assignments,
``if``/``case`` statements, ``for`` loops with constant bounds, the full
operator set (including part-select, bit-select, concatenation, replication
and reduction operators, which v2c translates to semantically equivalent C
expressions), and SVA-style ``assert property`` safety properties.

Pipeline::

    source text --lex--> tokens --parse--> AST --elaborate--> elaborated design
"""

from repro.verilog.lexer import Lexer, Token, VerilogSyntaxError
from repro.verilog.parser import parse_source, parse_expression_text
from repro.verilog.elaborate import elaborate, ElaboratedDesign, ElaborationError
from repro.verilog import ast

__all__ = [
    "Lexer",
    "Token",
    "VerilogSyntaxError",
    "parse_source",
    "parse_expression_text",
    "elaborate",
    "ElaboratedDesign",
    "ElaborationError",
    "ast",
]
