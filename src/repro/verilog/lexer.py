"""Tokenizer for the supported Verilog-2005 subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional


class VerilogSyntaxError(Exception):
    """Raised on lexical or syntactic errors, with line information."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


#: Verilog keywords recognised by the parser (a superset is reserved).
KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "integer",
        "parameter",
        "localparam",
        "assign",
        "always",
        "initial",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "for",
        "while",
        "posedge",
        "negedge",
        "or",
        "and",
        "not",
        "nand",
        "nor",
        "xor",
        "xnor",
        "buf",
        "assert",
        "assume",
        "property",
        "endproperty",
        "genvar",
        "generate",
        "endgenerate",
        "function",
        "endfunction",
        "signed",
        "unsigned",
    }
)


@dataclass
class Token:
    """A single lexical token."""

    kind: str  # 'id', 'keyword', 'number', 'string', 'op', 'system', 'eof'
    value: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, line {self.line})"


# multi-character operators, longest first so the scanner is greedy
_OPERATORS = [
    "<<<",
    ">>>",
    "===",
    "!==",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "~&",
    "~|",
    "~^",
    "^~",
    "**",
    "+:",
    "-:",
    "::",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ":",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "?",
    "@",
    "#",
    ".",
]

_NUMBER_RE = re.compile(
    r"(?:(\d+)\s*)?'\s*[sS]?([bBdDhHoO])\s*([0-9a-fA-FxXzZ_?]+)|(\d[\d_]*)"
)
_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_SYSTEM_RE = re.compile(r"\$[A-Za-z_][A-Za-z0-9_]*")
_STRING_RE = re.compile(r'"([^"\\]|\\.)*"')
_DIRECTIVE_RE = re.compile(r"`[A-Za-z_][A-Za-z0-9_]*")


class Lexer:
    """Converts Verilog source text into a list of tokens.

    Comments, compiler directives (```timescale``, ```define`` without uses)
    and whitespace are skipped.  Simple text macros defined with ```define``
    are expanded.
    """

    def __init__(self, text: str) -> None:
        self._text = self._strip_comments(text)
        self._defines: dict[str, str] = {}

    @staticmethod
    def _strip_comments(text: str) -> str:
        # block comments (keep newlines so line numbers stay correct)
        def _keep_lines(match: re.Match) -> str:
            return "\n" * match.group(0).count("\n")

        text = re.sub(r"/\*.*?\*/", _keep_lines, text, flags=re.S)
        text = re.sub(r"//[^\n]*", "", text)
        return text

    def tokenize(self) -> List[Token]:
        """Return the token list ending with an EOF token."""
        tokens: List[Token] = []
        line = 1
        pos = 0
        text = self._text
        length = len(text)
        while pos < length:
            ch = text[pos]
            if ch == "\n":
                line += 1
                pos += 1
                continue
            if ch in " \t\r":
                pos += 1
                continue
            if ch == "`":
                pos, line = self._directive(text, pos, line)
                continue
            if ch == '"':
                match = _STRING_RE.match(text, pos)
                if not match:
                    raise VerilogSyntaxError("unterminated string", line)
                tokens.append(Token("string", match.group(0), line))
                pos = match.end()
                continue
            if ch == "$":
                match = _SYSTEM_RE.match(text, pos)
                if match:
                    tokens.append(Token("system", match.group(0), line))
                    pos = match.end()
                    continue
            number = _NUMBER_RE.match(text, pos)
            if number and (ch.isdigit() or ch == "'"):
                tokens.append(Token("number", number.group(0), line))
                pos = number.end()
                continue
            ident = _ID_RE.match(text, pos)
            if ident:
                word = ident.group(0)
                if word in self._defines:
                    expansion = self._defines[word]
                    text = text[: ident.start()] + expansion + text[ident.end() :]
                    length = len(text)
                    continue
                kind = "keyword" if word in KEYWORDS else "id"
                tokens.append(Token(kind, word, line))
                pos = ident.end()
                continue
            for op in _OPERATORS:
                if text.startswith(op, pos):
                    tokens.append(Token("op", op, line))
                    pos += len(op)
                    break
            else:
                raise VerilogSyntaxError(f"unexpected character {ch!r}", line)
        tokens.append(Token("eof", "", line))
        return tokens

    def _directive(self, text: str, pos: int, line: int) -> tuple[int, int]:
        """Handle compiler directives; only ```define NAME value`` is interpreted."""
        match = _DIRECTIVE_RE.match(text, pos)
        if not match:
            raise VerilogSyntaxError("stray backquote", line)
        name = match.group(0)[1:]
        end_of_line = text.find("\n", pos)
        if end_of_line == -1:
            end_of_line = len(text)
        rest = text[match.end() : end_of_line].strip()
        if name == "define" and rest:
            parts = rest.split(None, 1)
            macro = parts[0]
            value = parts[1] if len(parts) > 1 else ""
            self._defines[macro] = value
            return end_of_line, line
        if name in ("timescale", "include", "default_nettype", "ifdef", "ifndef", "endif", "else", "undef", "celldefine", "endcelldefine"):
            return end_of_line, line
        # a macro *use*: expand inline
        if name in self._defines:
            expansion = self._defines[name]
            new_text = text[:pos] + expansion + text[match.end() :]
            self._text = new_text
            return pos, line
        return end_of_line, line


def parse_number(token_text: str, line: int = 0) -> tuple[int, Optional[int]]:
    """Parse a Verilog number literal; returns ``(value, width or None)``.

    ``x``/``z``/``?`` digits are treated as 0 (the synthesizer does not model
    unknowns, matching v2c's two-valued software-netlist semantics).
    """
    text = token_text.replace("_", "").strip()
    match = _NUMBER_RE.fullmatch(text)
    if not match:
        raise VerilogSyntaxError(f"malformed number {token_text!r}", line)
    if match.group(4) is not None:
        return int(match.group(4)), None
    width = int(match.group(1)) if match.group(1) else None
    base_char = match.group(2).lower()
    digits = match.group(3).replace("?", "0")
    digits = re.sub(r"[xXzZ]", "0", digits)
    base = {"b": 2, "d": 10, "h": 16, "o": 8}[base_char]
    value = int(digits, base) if digits else 0
    return value, width
