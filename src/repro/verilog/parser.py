"""Recursive-descent parser for the supported Verilog-2005 subset."""

from __future__ import annotations

from typing import List, Optional

from repro.verilog import ast
from repro.verilog.lexer import Lexer, Token, VerilogSyntaxError, parse_number


def parse_source(text: str) -> ast.SourceUnit:
    """Parse Verilog source text into a :class:`repro.verilog.ast.SourceUnit`."""
    tokens = Lexer(text).tokenize()
    return Parser(tokens).parse_source_unit()


def parse_expression_text(text: str) -> ast.VExpr:
    """Parse a standalone expression (used by the SVA property parser)."""
    tokens = Lexer(text).tokenize()
    parser = Parser(tokens)
    expr = parser.parse_expression()
    parser.expect_kind("eof")
    return expr


class Parser:
    """Token-stream parser producing the AST of :mod:`repro.verilog.ast`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def check(self, value: str, kind: Optional[str] = None) -> bool:
        token = self.peek()
        if kind is not None and token.kind != kind:
            return False
        return token.value == value

    def accept(self, value: str) -> bool:
        if self.peek().value == value:
            self.advance()
            return True
        return False

    def expect(self, value: str) -> Token:
        token = self.peek()
        if token.value != value:
            raise VerilogSyntaxError(
                f"expected {value!r}, found {token.value!r}", token.line
            )
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise VerilogSyntaxError(
                f"expected {kind}, found {token.value!r}", token.line
            )
        return self.advance()

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse_source_unit(self) -> ast.SourceUnit:
        unit = ast.SourceUnit()
        while self.peek().kind != "eof":
            unit.add(self.parse_module())
        return unit

    def parse_module(self) -> ast.Module:
        self.expect("module")
        name = self.expect_kind("id").value
        module = ast.Module(name=name)
        if self.accept("#"):
            self._parse_module_parameter_list(module)
        if self.accept("("):
            self._parse_port_list(module)
            self.expect(")")
        self.expect(";")
        while not self.check("endmodule"):
            if self.peek().kind == "eof":
                raise VerilogSyntaxError("unexpected end of file in module", self.peek().line)
            items = self.parse_module_item()
            module.items.extend(items)
        self.expect("endmodule")
        return module

    def _parse_module_parameter_list(self, module: ast.Module) -> None:
        """Parse ``#(parameter N = 4, parameter W = 8)`` header parameters."""
        self.expect("(")
        while not self.check(")"):
            self.accept("parameter")
            name = self.expect_kind("id").value
            self.expect("=")
            value = self.parse_expression()
            module.items.append(ast.ParamDecl(name=name, value=value, local=False))
            if not self.accept(","):
                break
        self.expect(")")

    def _parse_port_list(self, module: ast.Module) -> None:
        """Parse the port list: either plain identifiers or ANSI declarations."""
        if self.check(")"):
            return
        direction: Optional[str] = None
        while True:
            token = self.peek()
            if token.value in ("input", "output", "inout"):
                direction = self.advance().value
                is_reg = self.accept("reg")
                signed = self.accept("signed")
                rng = self._parse_optional_range()
                name = self.expect_kind("id").value
                module.port_order.append(name)
                module.items.append(
                    ast.PortDecl(direction=direction, name=name, range=rng, is_reg=is_reg, signed=signed)
                )
            elif token.kind == "id":
                name = self.advance().value
                module.port_order.append(name)
                if direction is not None:
                    # continuation of an ANSI declaration list: input a, b, c
                    last = module.items[-1]
                    assert isinstance(last, ast.PortDecl)
                    module.items.append(
                        ast.PortDecl(
                            direction=last.direction,
                            name=name,
                            range=last.range,
                            is_reg=last.is_reg,
                            signed=last.signed,
                        )
                    )
            else:
                raise VerilogSyntaxError(
                    f"unexpected token {token.value!r} in port list", token.line
                )
            if not self.accept(","):
                break

    # ------------------------------------------------------------------
    # module items
    # ------------------------------------------------------------------
    def parse_module_item(self) -> List[ast.VItem]:
        token = self.peek()
        value = token.value
        if value in ("input", "output", "inout"):
            return self._parse_port_declaration()
        if value in ("wire", "reg", "integer"):
            return self._parse_net_declaration()
        if value in ("parameter", "localparam"):
            return self._parse_parameter_declaration()
        if value == "assign":
            return self._parse_continuous_assign()
        if value == "always":
            return [self._parse_always()]
        if value == "initial":
            self.advance()
            return [ast.InitialBlock(body=self.parse_statement())]
        if value == "genvar":
            # genvar declarations are only used by generate loops we unroll
            self.advance()
            while not self.accept(";"):
                self.advance()
            return []
        if value == "assert":
            return [self._parse_assertion(label=f"assert_{token.line}")]
        if token.kind == "id" and self.peek(1).value == ":" and self.peek(2).value == "assert":
            label = self.advance().value
            self.expect(":")
            return [self._parse_assertion(label=label)]
        if token.kind == "id":
            return [self._parse_instance()]
        if token.kind == "system":
            # stray system task at module level; skip statement
            self.advance()
            self._skip_to_semicolon()
            return []
        raise VerilogSyntaxError(f"unexpected token {value!r} in module body", token.line)

    def _skip_to_semicolon(self) -> None:
        while not self.accept(";"):
            if self.peek().kind == "eof":
                return
            self.advance()

    def _parse_optional_range(self) -> Optional[ast.Range]:
        if not self.check("["):
            return None
        self.expect("[")
        msb = self.parse_expression()
        self.expect(":")
        lsb = self.parse_expression()
        self.expect("]")
        return ast.Range(msb=msb, lsb=lsb)

    def _parse_port_declaration(self) -> List[ast.VItem]:
        direction = self.advance().value
        is_reg = self.accept("reg")
        signed = self.accept("signed")
        rng = self._parse_optional_range()
        items: List[ast.VItem] = []
        while True:
            name = self.expect_kind("id").value
            items.append(
                ast.PortDecl(direction=direction, name=name, range=rng, is_reg=is_reg, signed=signed)
            )
            if not self.accept(","):
                break
        self.expect(";")
        return items

    def _parse_net_declaration(self) -> List[ast.VItem]:
        kind = self.advance().value
        signed = self.accept("signed")
        rng = self._parse_optional_range()
        items: List[ast.VItem] = []
        while True:
            name = self.expect_kind("id").value
            array = self._parse_optional_range()
            init = None
            if self.accept("="):
                init = self.parse_expression()
            items.append(
                ast.NetDecl(kind=kind, name=name, range=rng, array=array, signed=signed, init=init)
            )
            if not self.accept(","):
                break
        self.expect(";")
        return items

    def _parse_parameter_declaration(self) -> List[ast.VItem]:
        local = self.advance().value == "localparam"
        # optional range on parameters is ignored
        self._parse_optional_range()
        items: List[ast.VItem] = []
        while True:
            name = self.expect_kind("id").value
            self.expect("=")
            value = self.parse_expression()
            items.append(ast.ParamDecl(name=name, value=value, local=local))
            if not self.accept(","):
                break
        self.expect(";")
        return items

    def _parse_continuous_assign(self) -> List[ast.VItem]:
        self.expect("assign")
        items: List[ast.VItem] = []
        while True:
            target = self.parse_expression()
            self.expect("=")
            value = self.parse_expression()
            items.append(ast.ContAssign(target=target, value=value))
            if not self.accept(","):
                break
        self.expect(";")
        return items

    def _parse_always(self) -> ast.AlwaysBlock:
        self.expect("always")
        sensitivity: Optional[List[ast.SensitivityItem]] = None
        if self.accept("@"):
            if self.accept("*"):
                sensitivity = None
            else:
                self.expect("(")
                if self.accept("*"):
                    sensitivity = None
                else:
                    sensitivity = []
                    while True:
                        edge = None
                        if self.peek().value in ("posedge", "negedge"):
                            edge = self.advance().value
                        signal = self.expect_kind("id").value
                        sensitivity.append(ast.SensitivityItem(edge=edge, signal=signal))
                        if self.accept(",") or self.accept("or"):
                            continue
                        break
                self.expect(")")
        body = self.parse_statement()
        return ast.AlwaysBlock(sensitivity=sensitivity, body=body)

    def _parse_assertion(self, label: str) -> ast.AssertProperty:
        self.expect("assert")
        self.expect("property")
        self.expect("(")
        clock = None
        if self.accept("@"):
            self.expect("(")
            if self.peek().value in ("posedge", "negedge"):
                self.advance()
            clock = self.expect_kind("id").value
            self.expect(")")
        expr = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return ast.AssertProperty(name=label, expr=expr, clock=clock)

    def _parse_instance(self) -> ast.Instance:
        module_name = self.expect_kind("id").value
        parameters: List[ast.PortConnection] = []
        if self.accept("#"):
            self.expect("(")
            parameters = self._parse_connection_list()
            self.expect(")")
        instance_name = self.expect_kind("id").value
        self.expect("(")
        connections = self._parse_connection_list()
        self.expect(")")
        self.expect(";")
        return ast.Instance(
            module_name=module_name,
            instance_name=instance_name,
            parameters=parameters,
            connections=connections,
        )

    def _parse_connection_list(self) -> List[ast.PortConnection]:
        connections: List[ast.PortConnection] = []
        if self.check(")"):
            return connections
        while True:
            if self.accept("."):
                name = self.expect_kind("id").value
                self.expect("(")
                expr = None if self.check(")") else self.parse_expression()
                self.expect(")")
                connections.append(ast.PortConnection(name=name, expr=expr))
            else:
                connections.append(ast.PortConnection(name=None, expr=self.parse_expression()))
            if not self.accept(","):
                break
        return connections

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.VStmt:
        token = self.peek()
        value = token.value
        if value == ";":
            self.advance()
            return ast.SNull()
        if value == "begin":
            self.advance()
            # optional block label
            if self.accept(":"):
                self.expect_kind("id")
            block = ast.SBlock()
            while not self.check("end"):
                if self.peek().kind == "eof":
                    raise VerilogSyntaxError("unexpected end of file in block", token.line)
                block.statements.append(self.parse_statement())
            self.expect("end")
            return block
        if value == "if":
            self.advance()
            self.expect("(")
            condition = self.parse_expression()
            self.expect(")")
            then_branch = self.parse_statement()
            else_branch = None
            if self.accept("else"):
                else_branch = self.parse_statement()
            return ast.SIf(condition=condition, then_branch=then_branch, else_branch=else_branch)
        if value in ("case", "casez", "casex"):
            return self._parse_case()
        if value == "for":
            return self._parse_for()
        if token.kind == "system":
            name = self.advance().value
            args: List[ast.VExpr] = []
            if self.accept("("):
                while not self.check(")"):
                    if self.peek().kind == "string":
                        self.advance()
                    else:
                        args.append(self.parse_expression())
                    if not self.accept(","):
                        break
                self.expect(")")
            self.expect(";")
            return ast.SSystemCall(name=name, args=args)
        # assignment statement; the target is an lvalue, not a full expression
        # (otherwise ``count <= 0`` would parse as a less-equal comparison)
        target = self.parse_lvalue()
        if self.accept("="):
            blocking = True
        elif self.accept("<="):
            blocking = False
        else:
            raise VerilogSyntaxError(
                f"expected assignment operator, found {self.peek().value!r}",
                self.peek().line,
            )
        value_expr = self.parse_expression()
        self.expect(";")
        return ast.SAssign(target=target, value=value_expr, blocking=blocking)

    def parse_lvalue(self) -> ast.VExpr:
        """Parse an assignment target: identifier with selects, or a concatenation."""
        if self.check("{"):
            self.expect("{")
            parts = [self.parse_lvalue()]
            while self.accept(","):
                parts.append(self.parse_lvalue())
            self.expect("}")
            if len(parts) == 1:
                return parts[0]
            return ast.EConcat(parts=parts)
        name = self.expect_kind("id").value
        expr: ast.VExpr = ast.EIdent(name=name)
        while self.check("["):
            self.expect("[")
            first = self.parse_expression()
            if self.accept(":"):
                second = self.parse_expression()
                self.expect("]")
                expr = ast.ERange(base=expr, msb=first, lsb=second)
            else:
                self.expect("]")
                expr = ast.EIndex(base=expr, index=first)
        return expr

    def _parse_case(self) -> ast.SCase:
        kind = self.advance().value
        self.expect("(")
        subject = self.parse_expression()
        self.expect(")")
        items: List[ast.CaseItem] = []
        while not self.check("endcase"):
            if self.accept("default"):
                self.accept(":")
                items.append(ast.CaseItem(labels=None, body=self.parse_statement()))
                continue
            labels = [self.parse_expression()]
            while self.accept(","):
                labels.append(self.parse_expression())
            self.expect(":")
            items.append(ast.CaseItem(labels=labels, body=self.parse_statement()))
        self.expect("endcase")
        return ast.SCase(subject=subject, items=items, kind=kind)

    def _parse_for(self) -> ast.SFor:
        self.expect("for")
        self.expect("(")
        init_target = self.parse_expression()
        self.expect("=")
        init_value = self.parse_expression()
        init = ast.SAssign(target=init_target, value=init_value, blocking=True)
        self.expect(";")
        condition = self.parse_expression()
        self.expect(";")
        update_target = self.parse_expression()
        self.expect("=")
        update_value = self.parse_expression()
        update = ast.SAssign(target=update_target, value=update_value, blocking=True)
        self.expect(")")
        body = self.parse_statement()
        return ast.SFor(init=init, condition=condition, update=update, body=body)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.VExpr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.VExpr:
        condition = self._parse_binary(0)
        if self.accept("?"):
            then_value = self.parse_expression()
            self.expect(":")
            else_value = self.parse_expression()
            return ast.ETernary(cond=condition, then_value=then_value, else_value=else_value)
        return condition

    #: binary operator precedence levels, weakest binding first
    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^", "^~", "~^"],
        ["&"],
        ["==", "!=", "===", "!=="],
        ["<", "<=", ">", ">="],
        ["<<", ">>", "<<<", ">>>"],
        ["+", "-"],
        ["*", "/", "%"],
        ["**"],
    ]

    def _parse_binary(self, level: int) -> ast.VExpr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        operators = self._BINARY_LEVELS[level]
        while self.peek().kind == "op" and self.peek().value in operators:
            op = self.advance().value
            right = self._parse_binary(level + 1)
            left = ast.EBinary(op=op, left=left, right=right)
        return left

    _UNARY_OPS = {"!", "~", "-", "+", "&", "|", "^", "~&", "~|", "~^", "^~"}

    def _parse_unary(self) -> ast.VExpr:
        token = self.peek()
        if token.kind == "op" and token.value in self._UNARY_OPS:
            op = self.advance().value
            operand = self._parse_unary()
            if op == "+":
                return operand
            return ast.EUnary(op=op, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.VExpr:
        expr = self._parse_primary()
        while self.check("["):
            self.expect("[")
            first = self.parse_expression()
            if self.accept(":"):
                second = self.parse_expression()
                self.expect("]")
                expr = ast.ERange(base=expr, msb=first, lsb=second)
            else:
                self.expect("]")
                expr = ast.EIndex(base=expr, index=first)
        return expr

    def _parse_primary(self) -> ast.VExpr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value, width = parse_number(token.value, token.line)
            return ast.ENumber(value=value, width=width)
        if token.kind == "string":
            self.advance()
            return ast.ENumber(value=0, width=None)
        if token.kind == "system":
            name = self.advance().value
            args: List[ast.VExpr] = []
            if self.accept("("):
                while not self.check(")"):
                    args.append(self.parse_expression())
                    if not self.accept(","):
                        break
                self.expect(")")
            return ast.EFunctionCall(name=name, args=args)
        if token.kind == "id":
            name = self.advance().value
            if self.check("(") and not self.check("=", "op"):
                # user function call
                self.expect("(")
                args = []
                while not self.check(")"):
                    args.append(self.parse_expression())
                    if not self.accept(","):
                        break
                self.expect(")")
                return ast.EFunctionCall(name=name, args=args)
            return ast.EIdent(name=name)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if self.check("{"):
            return self._parse_concat()
        raise VerilogSyntaxError(f"unexpected token {token.value!r} in expression", token.line)

    def _parse_concat(self) -> ast.VExpr:
        self.expect("{")
        first = self.parse_expression()
        if self.check("{"):
            # replication {N{expr}}
            self.expect("{")
            value = self.parse_expression()
            # allow inner concatenation lists in the replication body
            parts = [value]
            while self.accept(","):
                parts.append(self.parse_expression())
            self.expect("}")
            self.expect("}")
            body = parts[0] if len(parts) == 1 else ast.EConcat(parts=parts)
            return ast.EReplicate(count=first, value=body)
        parts = [first]
        while self.accept(","):
            parts.append(self.parse_expression())
        self.expect("}")
        if len(parts) == 1:
            return parts[0]
        return ast.EConcat(parts=parts)
