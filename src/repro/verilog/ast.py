"""Abstract syntax tree for the supported Verilog subset.

The AST mirrors the source closely; widths, parameters and hierarchy are
resolved later by :mod:`repro.verilog.elaborate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class VExpr:
    """Base class of Verilog expression nodes."""


@dataclass
class ENumber(VExpr):
    """Integer literal, optionally with an explicit width (``8'hFF``)."""

    value: int
    width: Optional[int] = None


@dataclass
class EIdent(VExpr):
    """Reference to a named signal, parameter or genvar."""

    name: str


@dataclass
class EUnary(VExpr):
    """Unary operator application (``~a``, ``!a``, ``-a``, ``&a``, ...)."""

    op: str
    operand: VExpr


@dataclass
class EBinary(VExpr):
    """Binary operator application."""

    op: str
    left: VExpr
    right: VExpr


@dataclass
class ETernary(VExpr):
    """Conditional operator ``cond ? a : b``."""

    cond: VExpr
    then_value: VExpr
    else_value: VExpr


@dataclass
class EConcat(VExpr):
    """Concatenation ``{a, b, c}`` (first part is most significant)."""

    parts: List[VExpr]


@dataclass
class EReplicate(VExpr):
    """Replication ``{N{expr}}``."""

    count: VExpr
    value: VExpr


@dataclass
class EIndex(VExpr):
    """Bit-select or memory word select ``name[index]``."""

    base: VExpr
    index: VExpr


@dataclass
class ERange(VExpr):
    """Constant part-select ``name[msb:lsb]``."""

    base: VExpr
    msb: VExpr
    lsb: VExpr


@dataclass
class EFunctionCall(VExpr):
    """Call of a user function or of the supported system functions."""

    name: str
    args: List[VExpr]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class VStmt:
    """Base class of procedural statements."""


@dataclass
class SNull(VStmt):
    """Empty statement (a stray semicolon)."""


@dataclass
class SBlock(VStmt):
    """``begin ... end`` sequential block."""

    statements: List[VStmt] = field(default_factory=list)


@dataclass
class SAssign(VStmt):
    """Procedural assignment; ``blocking`` selects ``=`` vs ``<=``."""

    target: VExpr
    value: VExpr
    blocking: bool


@dataclass
class SIf(VStmt):
    """``if``/``else`` statement."""

    condition: VExpr
    then_branch: VStmt
    else_branch: Optional[VStmt] = None


@dataclass
class CaseItem:
    """One arm of a case statement; ``labels`` is None for ``default``."""

    labels: Optional[List[VExpr]]
    body: VStmt


@dataclass
class SCase(VStmt):
    """``case`` / ``casez`` statement."""

    subject: VExpr
    items: List[CaseItem]
    kind: str = "case"


@dataclass
class SFor(VStmt):
    """``for`` loop with constant bounds (unrolled during elaboration)."""

    init: SAssign
    condition: VExpr
    update: SAssign
    body: VStmt


@dataclass
class SSystemCall(VStmt):
    """A system task call such as ``$display`` (ignored by synthesis)."""

    name: str
    args: List[VExpr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# module items
# ---------------------------------------------------------------------------


class VItem:
    """Base class of module items."""


@dataclass
class Range:
    """A ``[msb:lsb]`` range declaration (expressions, resolved at elaboration)."""

    msb: VExpr
    lsb: VExpr


@dataclass
class PortDecl(VItem):
    """Port declaration (direction, optional range, optional ``reg``)."""

    direction: str  # 'input' | 'output' | 'inout'
    name: str
    range: Optional[Range] = None
    is_reg: bool = False
    signed: bool = False


@dataclass
class NetDecl(VItem):
    """``wire``/``reg``/``integer`` declaration (possibly a 1-D memory)."""

    kind: str  # 'wire' | 'reg' | 'integer'
    name: str
    range: Optional[Range] = None
    array: Optional[Range] = None
    signed: bool = False
    init: Optional[VExpr] = None


@dataclass
class ParamDecl(VItem):
    """``parameter`` or ``localparam`` declaration."""

    name: str
    value: VExpr
    local: bool = False


@dataclass
class ContAssign(VItem):
    """Continuous assignment ``assign lhs = rhs;``."""

    target: VExpr
    value: VExpr


@dataclass
class SensitivityItem:
    """One entry of a sensitivity list: ``posedge sig``, ``negedge sig`` or ``sig``."""

    edge: Optional[str]  # 'posedge' | 'negedge' | None
    signal: str


@dataclass
class AlwaysBlock(VItem):
    """``always @(...) stmt``; ``sensitivity`` is None for ``always @*``."""

    sensitivity: Optional[List[SensitivityItem]]
    body: VStmt


@dataclass
class InitialBlock(VItem):
    """``initial stmt`` — used for register initialisation."""

    body: VStmt


@dataclass
class PortConnection:
    """Port connection of an instance; ``name`` is None for positional style."""

    name: Optional[str]
    expr: Optional[VExpr]


@dataclass
class Instance(VItem):
    """Module instantiation."""

    module_name: str
    instance_name: str
    parameters: List[PortConnection] = field(default_factory=list)
    connections: List[PortConnection] = field(default_factory=list)


@dataclass
class AssertProperty(VItem):
    """SVA-style safety assertion ``label: assert property (@(posedge clk) expr);``."""

    name: str
    expr: VExpr
    clock: Optional[str] = None


@dataclass
class Module:
    """A Verilog module definition."""

    name: str
    port_order: List[str] = field(default_factory=list)
    items: List[VItem] = field(default_factory=list)

    def items_of_type(self, item_type) -> List[VItem]:
        """Return all items of a given AST class."""
        return [item for item in self.items if isinstance(item, item_type)]


@dataclass
class SourceUnit:
    """A parsed source file: an ordered collection of modules."""

    modules: Dict[str, Module] = field(default_factory=dict)

    def add(self, module: Module) -> None:
        self.modules[module.name] = module

    def module(self, name: str) -> Module:
        return self.modules[name]
