"""Elaboration: parameter resolution, signal tables and hierarchy expansion.

Elaboration turns the parsed AST into a tree of :class:`ElaboratedInstance`
objects, one per module instance, with

* all parameters resolved to integer values (including ``#(...)`` overrides),
* a signal table giving the width, kind and direction of every declared
  signal (including 1-D memories),
* the procedural blocks, continuous assignments and assertions of the module
  carried over for the synthesizer.

The synthesizer (:mod:`repro.synth`) consumes this tree to build the flat
word-level transition system; the v2c backend uses the same tree to lay out
the hierarchical state structure of the software-netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.verilog import ast
from repro.verilog.lexer import VerilogSyntaxError


class ElaborationError(Exception):
    """Raised when a design cannot be elaborated."""


@dataclass
class Signal:
    """A declared signal with resolved geometry."""

    name: str
    width: int
    msb: int
    lsb: int
    kind: str  # 'wire' | 'reg' | 'integer'
    direction: Optional[str] = None  # 'input' | 'output' | 'inout' | None
    signed: bool = False
    array_size: Optional[int] = None  # number of words when the signal is a memory
    array_lo: int = 0
    init: Optional[int] = None

    @property
    def is_memory(self) -> bool:
        return self.array_size is not None

    def word_names(self) -> List[str]:
        """Scalarized word names for a memory signal."""
        if not self.is_memory:
            return [self.name]
        return [f"{self.name}__{index}" for index in range(self.array_size)]


@dataclass
class ChildInstance:
    """An instantiated sub-module with its resolved port map."""

    instance_name: str
    design: "ElaboratedInstance"
    port_map: Dict[str, Optional[ast.VExpr]] = field(default_factory=dict)


@dataclass
class ElaboratedInstance:
    """One elaborated module instance."""

    module_name: str
    instance_name: str
    path: str  # hierarchical path of this instance ('' for the top module)
    params: Dict[str, int] = field(default_factory=dict)
    signals: Dict[str, Signal] = field(default_factory=dict)
    assigns: List[ast.ContAssign] = field(default_factory=list)
    always_blocks: List[ast.AlwaysBlock] = field(default_factory=list)
    initial_blocks: List[ast.InitialBlock] = field(default_factory=list)
    assertions: List[ast.AssertProperty] = field(default_factory=list)
    children: List[ChildInstance] = field(default_factory=list)

    def signal(self, name: str) -> Signal:
        try:
            return self.signals[name]
        except KeyError:
            raise ElaborationError(
                f"unknown signal {name!r} in module {self.module_name!r}"
            ) from None

    def inputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.direction == "input"]

    def outputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.direction == "output"]

    def prefixed(self, name: str) -> str:
        """Return the flat hierarchical name of a local signal."""
        return f"{self.path}.{name}" if self.path else name


@dataclass
class ElaboratedDesign:
    """The full elaborated design: the instance tree rooted at the top module."""

    top: ElaboratedInstance
    source: ast.SourceUnit

    def all_instances(self) -> List[ElaboratedInstance]:
        """Return all instances in depth-first pre-order."""
        result: List[ElaboratedInstance] = []

        def walk(instance: ElaboratedInstance) -> None:
            result.append(instance)
            for child in instance.children:
                walk(child.design)

        walk(self.top)
        return result


# ---------------------------------------------------------------------------
# constant expression evaluation (parameters, ranges, replication counts)
# ---------------------------------------------------------------------------


def eval_const(expr: ast.VExpr, env: Dict[str, int]) -> int:
    """Evaluate a constant AST expression under a parameter environment."""
    if isinstance(expr, ast.ENumber):
        return expr.value
    if isinstance(expr, ast.EIdent):
        if expr.name in env:
            return env[expr.name]
        raise ElaborationError(f"non-constant identifier {expr.name!r} in constant expression")
    if isinstance(expr, ast.EUnary):
        value = eval_const(expr.operand, env)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(value == 0)
        raise ElaborationError(f"unsupported unary operator {expr.op!r} in constant expression")
    if isinstance(expr, ast.EBinary):
        left = eval_const(expr.left, env)
        right = eval_const(expr.right, env)
        operations = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left // right if right else 0,
            "%": lambda: left % right if right else 0,
            "<<": lambda: left << right,
            ">>": lambda: left >> right,
            "**": lambda: left**right,
            "==": lambda: int(left == right),
            "!=": lambda: int(left != right),
            "<": lambda: int(left < right),
            "<=": lambda: int(left <= right),
            ">": lambda: int(left > right),
            ">=": lambda: int(left >= right),
            "&&": lambda: int(bool(left) and bool(right)),
            "||": lambda: int(bool(left) or bool(right)),
            "&": lambda: left & right,
            "|": lambda: left | right,
            "^": lambda: left ^ right,
        }
        if expr.op not in operations:
            raise ElaborationError(f"unsupported operator {expr.op!r} in constant expression")
        return operations[expr.op]()
    if isinstance(expr, ast.ETernary):
        return (
            eval_const(expr.then_value, env)
            if eval_const(expr.cond, env)
            else eval_const(expr.else_value, env)
        )
    if isinstance(expr, ast.EFunctionCall) and expr.name == "$clog2":
        value = eval_const(expr.args[0], env)
        bits = 0
        value -= 1
        while value > 0:
            bits += 1
            value >>= 1
        return bits
    raise ElaborationError(f"unsupported constant expression {expr!r}")


# ---------------------------------------------------------------------------
# elaboration
# ---------------------------------------------------------------------------


MAX_HIERARCHY_DEPTH = 64


def elaborate(
    source: ast.SourceUnit,
    top: Optional[str] = None,
    parameter_overrides: Optional[Dict[str, int]] = None,
) -> ElaboratedDesign:
    """Elaborate a parsed source unit.

    ``top`` defaults to the last module in the file (the usual convention for
    single-file benchmark designs).  ``parameter_overrides`` apply to the top
    module only.
    """
    if not source.modules:
        raise ElaborationError("no modules in source")
    if top is None:
        top = list(source.modules)[-1]
    if top not in source.modules:
        raise ElaborationError(f"top module {top!r} not found")
    instance = _elaborate_module(
        source,
        source.modules[top],
        instance_name=top,
        path="",
        overrides=parameter_overrides or {},
        depth=0,
    )
    return ElaboratedDesign(top=instance, source=source)


def _elaborate_module(
    source: ast.SourceUnit,
    module: ast.Module,
    instance_name: str,
    path: str,
    overrides: Dict[str, int],
    depth: int,
) -> ElaboratedInstance:
    if depth > MAX_HIERARCHY_DEPTH:
        raise ElaborationError("module hierarchy too deep (recursive instantiation?)")

    instance = ElaboratedInstance(
        module_name=module.name, instance_name=instance_name, path=path
    )

    # 1. resolve parameters in declaration order, applying overrides
    params: Dict[str, int] = {}
    for item in module.items_of_type(ast.ParamDecl):
        if not item.local and item.name in overrides:
            params[item.name] = overrides[item.name]
        else:
            params[item.name] = eval_const(item.value, params)
    instance.params = params

    # 2. build the signal table
    port_directions: Dict[str, str] = {}
    for item in module.items_of_type(ast.PortDecl):
        port_directions[item.name] = item.direction
        width, msb, lsb = _range_geometry(item.range, params)
        instance.signals[item.name] = Signal(
            name=item.name,
            width=width,
            msb=msb,
            lsb=lsb,
            kind="reg" if item.is_reg else "wire",
            direction=item.direction,
            signed=item.signed,
        )
    for item in module.items_of_type(ast.NetDecl):
        width, msb, lsb = _range_geometry(item.range, params)
        if item.kind == "integer":
            width, msb, lsb = 32, 31, 0
        array_size = None
        array_lo = 0
        if item.array is not None:
            bound_a = eval_const(item.array.msb, params)
            bound_b = eval_const(item.array.lsb, params)
            array_lo = min(bound_a, bound_b)
            array_size = abs(bound_a - bound_b) + 1
        init_value = eval_const(item.init, params) if item.init is not None else None
        existing = instance.signals.get(item.name)
        if existing is not None:
            # e.g. "output q;" followed by "reg q;" — merge the two declarations
            existing.kind = item.kind if item.kind != "wire" else existing.kind
            if item.range is not None:
                existing.width, existing.msb, existing.lsb = width, msb, lsb
            if init_value is not None:
                existing.init = init_value
            continue
        instance.signals[item.name] = Signal(
            name=item.name,
            width=width,
            msb=msb,
            lsb=lsb,
            kind=item.kind,
            direction=port_directions.get(item.name),
            signed=item.signed,
            array_size=array_size,
            array_lo=array_lo,
            init=init_value,
        )

    # ports named in the header but never declared default to 1-bit wires
    for port_name in module.port_order:
        if port_name not in instance.signals:
            instance.signals[port_name] = Signal(
                name=port_name, width=1, msb=0, lsb=0, kind="wire", direction="input"
            )

    # 3. carry over behavioural items
    instance.assigns = list(module.items_of_type(ast.ContAssign))
    instance.always_blocks = list(module.items_of_type(ast.AlwaysBlock))
    instance.initial_blocks = list(module.items_of_type(ast.InitialBlock))
    instance.assertions = list(module.items_of_type(ast.AssertProperty))

    # 4. elaborate child instances
    for item in module.items_of_type(ast.Instance):
        if item.module_name not in source.modules:
            raise ElaborationError(
                f"module {item.module_name!r} instantiated in {module.name!r} is not defined"
            )
        child_module = source.modules[item.module_name]
        child_overrides = _resolve_parameter_overrides(item, child_module, params)
        child_path = f"{path}.{item.instance_name}" if path else item.instance_name
        child = _elaborate_module(
            source,
            child_module,
            instance_name=item.instance_name,
            path=child_path,
            overrides=child_overrides,
            depth=depth + 1,
        )
        port_map = _resolve_port_map(item, child_module)
        instance.children.append(
            ChildInstance(instance_name=item.instance_name, design=child, port_map=port_map)
        )
    return instance


def _range_geometry(rng: Optional[ast.Range], params: Dict[str, int]):
    if rng is None:
        return 1, 0, 0
    msb = eval_const(rng.msb, params)
    lsb = eval_const(rng.lsb, params)
    width = abs(msb - lsb) + 1
    return width, msb, lsb


def _resolve_parameter_overrides(
    item: ast.Instance, child_module: ast.Module, parent_params: Dict[str, int]
) -> Dict[str, int]:
    """Turn ``#(...)`` overrides into a name -> value map for the child."""
    declared = [p.name for p in child_module.items_of_type(ast.ParamDecl) if not p.local]
    overrides: Dict[str, int] = {}
    positional_index = 0
    for connection in item.parameters:
        value = eval_const(connection.expr, parent_params) if connection.expr else 0
        if connection.name is not None:
            overrides[connection.name] = value
        else:
            if positional_index >= len(declared):
                raise ElaborationError(
                    f"too many positional parameters for {child_module.name!r}"
                )
            overrides[declared[positional_index]] = value
            positional_index += 1
    return overrides


def _resolve_port_map(
    item: ast.Instance, child_module: ast.Module
) -> Dict[str, Optional[ast.VExpr]]:
    """Return a map from child port name to the parent-side expression."""
    ports = child_module.port_order
    port_map: Dict[str, Optional[ast.VExpr]] = {}
    positional_index = 0
    for connection in item.connections:
        if connection.name is not None:
            if connection.name not in ports:
                raise ElaborationError(
                    f"module {child_module.name!r} has no port {connection.name!r}"
                )
            port_map[connection.name] = connection.expr
        else:
            if positional_index >= len(ports):
                raise ElaborationError(
                    f"too many positional connections for {child_module.name!r}"
                )
            port_map[ports[positional_index]] = connection.expr
            positional_index += 1
    return port_map
