"""Propositional SAT substrate.

All verification engines in the reproduction bottom out in propositional
satisfiability, just as the tools compared in the paper do (ABC, EBMC, CBMC,
2LS all use SAT back-ends).  The package provides:

* :mod:`repro.sat.cnf` — clause databases and literal helpers,
* :mod:`repro.sat.solver` — a CDCL solver (two-watched literals, VSIDS-style
  activities, first-UIP learning, Luby restarts, incremental assumptions)
  with optional resolution-proof logging,
* :mod:`repro.sat.tseitin` — Tseitin encoding of propositional circuits,
* :mod:`repro.sat.interpolate` — Craig interpolation from logged resolution
  proofs using McMillan's labelling rules.
"""

from repro.sat.cnf import CNF, neg, var_of, sign_of
from repro.sat.solver import Solver, SolverInterrupted, SolverResult
from repro.sat.tseitin import TseitinEncoder
from repro.sat.interpolate import (
    Interpolator,
    ItpNode,
    itp_and,
    itp_or,
    itp_lit,
    itp_const,
    itp_evaluate,
    itp_variables,
    itp_size,
)

__all__ = [
    "CNF",
    "neg",
    "var_of",
    "sign_of",
    "Solver",
    "SolverInterrupted",
    "SolverResult",
    "TseitinEncoder",
    "Interpolator",
    "ItpNode",
    "itp_and",
    "itp_or",
    "itp_lit",
    "itp_const",
    "itp_evaluate",
    "itp_variables",
    "itp_size",
]
