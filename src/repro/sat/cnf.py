"""Clause database and literal conventions.

Literals follow the DIMACS convention: variables are positive integers
``1, 2, 3, ...``; literal ``v`` is the positive phase of variable ``v`` and
``-v`` its negation.  A clause is a list/tuple of literals interpreted as a
disjunction.  The empty clause is unsatisfiable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def neg(lit: int) -> int:
    """Return the negation of a literal."""
    return -lit


def var_of(lit: int) -> int:
    """Return the variable of a literal."""
    return abs(lit)


def sign_of(lit: int) -> bool:
    """Return True for a positive literal, False for a negative one."""
    return lit > 0


class CNF:
    """A growable clause database.

    The class is used both as the target of the Tseitin encoder and as a
    portable container that can be handed to the solver or written out in
    DIMACS format.
    """

    def __init__(self) -> None:
        self.num_vars: int = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables and return them in order."""
        return [self.new_var() for _ in range(count)]

    def ensure_var(self, var: int) -> None:
        """Grow the variable count so that ``var`` is a valid variable."""
        if var > self.num_vars:
            self.num_vars = var

    def add_clause(self, literals: Iterable[int]) -> Tuple[int, ...]:
        """Add a clause (a disjunction of literals) and return it as a tuple."""
        clause = tuple(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is not allowed in a clause")
            self.ensure_var(var_of(lit))
        self.clauses.append(clause)
        return clause

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def add_clauses_mapped(
        self, clauses: Iterable[Sequence[int]], table: Sequence[int]
    ) -> None:
        """Bulk-append clauses remapped through a variable table.

        ``table[v]`` gives the target (positive) variable for source variable
        ``v``; a literal ``l`` maps to ``table[l]`` when positive and
        ``-table[-l]`` when negative.  The clauses are assumed pre-validated
        (no zero literals), so the per-literal checks of :meth:`add_clause`
        are skipped.  Portable-container mirror of
        :meth:`repro.sat.solver.Solver.add_clauses_mapped` (which is the path
        the frame templates actually stamp through); useful when an unrolled
        frame must land in a standalone CNF, e.g. for DIMACS export.
        """
        top = 0
        for var in table:
            if var > top:
                top = var
        self.ensure_var(top)
        append = self.clauses.append
        for clause in clauses:
            append(tuple(table[l] if l > 0 else -table[-l] for l in clause))

    def extend_from(self, other: "CNF") -> None:
        """Append all clauses of ``other`` (variable numbering must be shared)."""
        self.num_vars = max(self.num_vars, other.num_vars)
        self.clauses.extend(other.clauses)

    def copy(self) -> "CNF":
        """Return a shallow copy (clauses are immutable tuples)."""
        clone = CNF()
        clone.num_vars = self.num_vars
        clone.clauses = list(self.clauses)
        return clone

    def to_dimacs(self) -> str:
        """Render the clause database in DIMACS CNF format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS CNF string."""
        cnf = cls()
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) >= 3:
                    cnf.num_vars = max(cnf.num_vars, int(parts[2]))
                continue
            literals = [int(tok) for tok in line.split()]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            cnf.add_clause(literals)
        return cnf

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"


def clause_is_tautology(clause: Sequence[int]) -> bool:
    """Return True if the clause contains a literal and its negation."""
    literals = set(clause)
    return any(-lit in literals for lit in literals)


def normalize_clause(clause: Sequence[int]) -> Tuple[int, ...]:
    """Remove duplicate literals and sort the clause for canonical comparison."""
    return tuple(sorted(set(clause), key=lambda lit: (var_of(lit), lit < 0)))
